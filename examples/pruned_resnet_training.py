#!/usr/bin/env python3
"""Estimate SAVE's benefit on pruned ResNet-50 training, epoch by epoch.

Reproduces the Fig. 14c methodology for one network: at sampled epochs,
per layer and phase, map the profiled sparsity (activation profile +
Zhu-Gupta pruning schedule) onto the simulated kernel surfaces, apply
the 28-core roofline, and report how the speedup evolves as pruning
ramps from 0% (epoch 32) to 80% (epoch 60).

Run:  python examples/pruned_resnet_training.py
"""

from repro.kernels.tiling import Precision
from repro.model.estimator import BASELINE, DYNAMIC, NetworkEstimator
from repro.model.networks import RESNET50_PRUNED
from repro.model.surface import SurfaceStore


def main() -> None:
    estimator = NetworkEstimator(
        RESNET50_PRUNED, precision=Precision.MIXED, store=SurfaceStore(), k_steps=16
    )
    network = RESNET50_PRUNED
    print(f"{network.name}: {network.n_layers} conv layers, "
          f"pruning epochs {network.pruning.start_step}-{network.pruning.end_step} "
          f"to {network.pruning.target_sparsity:.0%}")
    print(f"{'epoch':>6} {'weight sparsity':>16} {'epoch speedup':>14}")

    for epoch in (0, 32, 40, 48, 60, 80, 102):
        estimates = estimator.step_estimates(epoch, training=True)
        baseline = sum(est.times_ns[BASELINE] for est in estimates)
        dynamic = sum(est.dynamic_time() for est in estimates)
        sparsity = network.weight_sparsity_at(epoch)
        print(f"{epoch:>6} {sparsity:>15.0%} {baseline / dynamic:>13.2f}x")

    # Which phase benefits most at the end of training?
    estimates = estimator.step_estimates(102, training=True)
    by_phase = {}
    for est in estimates:
        base, dyn = by_phase.get(est.category, (0.0, 0.0))
        by_phase[est.category] = (
            base + est.times_ns[BASELINE],
            dyn + est.dynamic_time(),
        )
    print("\nper-phase speedup at the final epoch:")
    for category, (base, dyn) in sorted(by_phase.items()):
        print(f"  {category:16s} {base / dyn:.2f}x")


if __name__ == "__main__":
    main()
