#!/usr/bin/env python3
"""Diagnose what limits a kernel as sparsity grows.

The paper observes that "at high sparsity, the speedup reaches a
ceiling because the execution becomes memory, frontend, or latency
bound, depending on the kernel" (Sec. VII-B).  This example runs one
kernel across sparsity levels and uses the diagnostics module to show
the bottleneck migrating from the VPUs to the front-end as SAVE strips
the ineffectual work away.

Run:  python examples/bottleneck_analysis.py
"""

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.core.diagnostics import analyze, explain
from repro.kernels.gemm import generate_gemm_trace
from repro.kernels.library import get_kernel
from repro.kernels.tiling import Precision


def main() -> None:
    spec = get_kernel("resnet2_2_fwd")
    print(f"kernel: {spec.description}\n")

    print(f"{'BS/NBS':>8} {'speedup':>8} {'VPU':>6} {'front':>6} {'L1':>6}  binding")
    base_trace = generate_gemm_trace(
        spec.config(precision=Precision.FP32, k_steps=48)
    )
    base = simulate(base_trace, BASELINE_2VPU, keep_state=False)

    for sparsity in (0.0, 0.2, 0.4, 0.6, 0.8):
        trace = generate_gemm_trace(
            spec.config(
                broadcast_sparsity=sparsity,
                nonbroadcast_sparsity=sparsity,
                precision=Precision.FP32,
                k_steps=48,
            )
        )
        result = simulate(trace, SAVE_2VPU, keep_state=False)
        report = analyze(result, SAVE_2VPU)
        print(
            f"{sparsity:>7.0%} {base.time_ns / result.time_ns:>7.2f}x "
            f"{report.vpu_utilisation:>5.0%} {report.frontend_utilisation:>6.0%} "
            f"{report.l1_port_utilisation:>5.0%}  {report.binding}"
        )

    print("\nfull diagnosis at 60% sparsity:\n")
    trace = generate_gemm_trace(
        spec.config(
            broadcast_sparsity=0.6,
            nonbroadcast_sparsity=0.6,
            precision=Precision.FP32,
            k_steps=48,
        )
    )
    result = simulate(trace, SAVE_2VPU, keep_state=False)
    print(explain(result, SAVE_2VPU))


if __name__ == "__main__":
    main()
