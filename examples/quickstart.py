#!/usr/bin/env python3
"""Quickstart: simulate one sparse GEMM kernel on SAVE vs the baseline.

This walks the core flow of the library:

1. generate a register-tiled GEMM µop trace with unstructured sparsity,
2. run it on the baseline machine and on SAVE (2 VPUs, and 1 boosted VPU),
3. verify SAVE's *software transparency* — the architectural results are
   identical to an in-order reference execution,
4. report the speedups.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile


def main() -> None:
    # A DNNL-style inner kernel: a 4x6 tile of accumulators (24 vector
    # registers of C), explicit-broadcast pattern, 64 reduction steps.
    # 40% of the broadcasted activations and 50% of the weights are zero
    # - the unstructured sparsity a ReLU network plus pruning produces.
    config = GemmKernelConfig(
        name="quickstart",
        tile=RegisterTile(rows=4, col_vectors=6, pattern=BroadcastPattern.EXPLICIT),
        k_steps=64,
        broadcast_sparsity=0.40,
        nonbroadcast_sparsity=0.50,
        seed=42,
    )
    trace = generate_gemm_trace(config)
    print(f"kernel: {trace.stats.fmas} VFMAs, {len(trace)} µops total")

    # The golden model: in-order functional execution.
    reference = trace.reference_result()

    results = {}
    for label, machine in [
        ("baseline (2 VPUs @1.7GHz)", BASELINE_2VPU),
        ("SAVE (2 VPUs @1.7GHz)", SAVE_2VPU),
        ("SAVE (1 VPU @2.1GHz)", SAVE_1VPU),
    ]:
        result = simulate(trace, machine)
        results[label] = result

        # Software transparency: bit-for-bit identical registers.
        for reg in range(32):
            assert np.array_equal(
                reference.read_vreg(reg), result.final_state.read_vreg(reg)
            ), f"{label}: register zmm{reg} diverged!"

        print(
            f"{label:28s} {result.cycles:6d} cycles  "
            f"{result.time_ns:8.1f} ns  "
            f"VPU ops: {result.vpu_ops:5d}  "
            f"skipped VFMAs: {result.skipped_fmas}"
        )

    base = results["baseline (2 VPUs @1.7GHz)"]
    for label, result in results.items():
        if result is not base:
            print(f"speedup of {label}: {result.speedup_over(base):.2f}x")
    print("transparency verified: SAVE results match the reference exactly")


if __name__ == "__main__":
    main()
