#!/usr/bin/env python3
"""Why SAVE compresses mixed-precision MLs *horizontally*: determinism.

Sec. V of the paper argues that combining BF16 multiplicand lanes from
different VFMAs is only safe if the accumulation *order* is preserved —
horizontal compression preserves it, vertical coalescing of MLs would
not, and floating-point addition is not associative.

This example demonstrates the underlying hazard with plain numbers and
then shows SAVE's mixed-precision pipeline producing results that are
value-for-value identical with the in-order reference, across sparsity
levels and machine configurations.

Run:  python examples/mixed_precision_determinism.py
"""

import numpy as np

from repro.core import SAVE_1VPU, SAVE_2VPU, simulate
from repro.isa.semantics import mac
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def show_nonassociativity() -> None:
    # Three BF16-exact values whose FP32 sum depends on the order.
    a = np.float32(2.0 ** 25)
    b = np.float32(1.0)
    c = np.float32(-(2.0 ** 25))
    in_order = mac(mac(mac(np.float32(0), a, 1), b, 1), c, 1)
    reordered = mac(mac(mac(np.float32(0), a, 1), c, 1), b, 1)
    print("FP32 accumulation is order-sensitive:")
    print(f"  (a + b) + c = {in_order!r}")
    print(f"  (a + c) + b = {reordered!r}")
    assert in_order != reordered


def verify_save_determinism() -> None:
    print("\nSAVE mixed-precision results vs in-order reference:")
    for nbs in (0.0, 0.3, 0.6, 0.9):
        config = GemmKernelConfig(
            name="mp-determinism",
            tile=RegisterTile(4, 4, BroadcastPattern.EXPLICIT),
            k_steps=32,
            precision=Precision.MIXED,
            broadcast_sparsity=0.2,
            nonbroadcast_sparsity=nbs,
            seed=7,
        )
        trace = generate_gemm_trace(config)
        reference = trace.reference_result()
        for label, machine in (("2 VPUs", SAVE_2VPU), ("1 VPU", SAVE_1VPU)):
            result = simulate(trace, machine)
            identical = all(
                np.array_equal(
                    reference.read_vreg(reg), result.final_state.read_vreg(reg)
                )
                for reg in range(32)
            )
            status = "identical" if identical else "DIVERGED"
            print(
                f"  NBS={nbs:.0%}  {label:7s}  VPU ops {result.vpu_ops:5d}  "
                f"-> {status}"
            )
            assert identical


if __name__ == "__main__":
    show_nonassociativity()
    verify_save_determinism()
    print("\nhorizontal ML compression preserved the accumulation order.")
