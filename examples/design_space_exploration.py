#!/usr/bin/env python3
"""Explore SAVE's design space on a difficult kernel.

The paper's Fig. 18 kernel — ResNet3_2's backward-input GEMM, whose 28
accumulators all reuse one non-broadcasted register (effective
combination window ~1) — is where SAVE's design choices matter most.
This example sweeps:

* the coalescing scheme (VC, RVC, HC) and lane-wise dependences,
* the broadcast-cache design (none / masks / data),
* the number of VPUs with frequency boosting,

and prints a ranked table, so you can see which features carry the
speedup on this kernel.

Run:  python examples/design_space_exploration.py
"""

from repro.core import BASELINE_2VPU, simulate
from repro.core.config import CoalescingScheme, CoreConfig, MachineConfig, SaveConfig
from repro.kernels.gemm import generate_gemm_trace
from repro.kernels.library import get_kernel
from repro.memory.broadcast_cache import BroadcastCacheKind


def machine(vpus, freq, scheme, lwd, b_cache) -> MachineConfig:
    return MachineConfig(
        core=CoreConfig(num_vpus=vpus, freq_ghz=freq),
        save=SaveConfig(
            enabled=True,
            coalescing=scheme,
            lane_wise_dependence=lwd,
            broadcast_cache=b_cache,
        ),
    )


def main() -> None:
    spec = get_kernel("resnet3_2_bwd_input")
    trace = generate_gemm_trace(
        spec.config(broadcast_sparsity=0.0, nonbroadcast_sparsity=0.6, k_steps=48)
    )
    print(f"kernel: {spec.description}")
    print(f"sparsity: NBS=60%, BS=0% — {trace.stats.fmas} VFMAs\n")

    base = simulate(trace, BASELINE_2VPU, keep_state=False)

    candidates = {}
    for vpus, freq in ((2, 1.7), (1, 2.1)):
        for scheme in CoalescingScheme:
            for lwd in (False, True):
                label = (
                    f"{vpus}VPU@{freq} {scheme.value.upper()}"
                    f"{'+LWD' if lwd else ''}"
                )
                config = machine(vpus, freq, scheme, lwd, BroadcastCacheKind.DATA)
                candidates[label] = simulate(trace, config, keep_state=False)
    # B$ ablation on the best vertical scheme.
    for kind in BroadcastCacheKind:
        label = f"2VPU@1.7 RVC+LWD B${kind.name.lower()}"
        config = machine(2, 1.7, CoalescingScheme.ROTATE_VERTICAL, True, kind)
        candidates[label] = simulate(trace, config, keep_state=False)

    print(f"{'configuration':38s} {'cycles':>8} {'VPU ops':>8} {'speedup':>8}")
    ranked = sorted(candidates.items(), key=lambda item: item[1].time_ns)
    for label, result in ranked:
        print(
            f"{label:38s} {result.cycles:>8} {result.vpu_ops:>8} "
            f"{result.speedup_over(base):>7.2f}x"
        )


if __name__ == "__main__":
    main()
