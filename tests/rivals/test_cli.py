"""Tests for ``repro compare`` and the kernel-library error path."""

import json

import pytest

from repro.cli import main
from repro.kernels.library import UnknownKernelError, get_kernel
from repro.rivals.cli import _levels, compare_main


class TestKernelLookup:
    def test_unknown_kernel_lists_registered_names(self):
        with pytest.raises(UnknownKernelError) as excinfo:
            get_kernel("resnet99_fwd")
        message = str(excinfo.value)
        assert "resnet99_fwd" in message
        # The message must name real alternatives, including N:M ones.
        assert "nm24_fwd" in message
        assert "resnet2_2_fwd" in message

    def test_unknown_kernel_is_still_a_key_error(self):
        # Callers that caught KeyError keep working.
        with pytest.raises(KeyError):
            get_kernel("nope")


class TestLevels:
    def test_evenly_spaced_over_09(self):
        assert _levels(4) == [0.0, 0.3, 0.6, 0.9]
        assert _levels(2) == [0.0, 0.9]

    def test_too_small_grid(self):
        with pytest.raises(ValueError, match="grid"):
            _levels(1)


class TestCompareCli:
    def test_smoke_writes_artifact_and_store(self, tmp_path, capsys):
        out = tmp_path / "artifact"
        store = tmp_path / "store"
        code = compare_main(
            [
                "--grid", "2", "--k-steps", "4",
                "--out", str(out), "--store", str(store),
                "--tag", "smoke", "--no-chart",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Skip-mechanism comparison on nm24_fwd" in stdout
        payload = json.loads((out / "smoke.json").read_text())
        assert payload["mechanisms"] == ["save", "sparce", "indexmac"]
        for grid in payload["speedups"].values():
            assert len(grid) == 4
        markdown = (out / "smoke.md").read_text()
        assert "indexmac speedup" in markdown
        from repro.store import SweepStore

        assert SweepStore(store).count() == 3 * 4

    def test_unknown_kernel_is_a_clean_error(self, tmp_path, capsys):
        assert compare_main(["--kernel", "bogus", "--grid", "2"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "nm24_fwd" in err

    def test_bad_mechanism_pairing_is_a_clean_error(self, capsys):
        code = compare_main(
            [
                "--kernel", "resnet2_2_fwd",
                "--mechanisms", "indexmac",
                "--grid", "2", "--k-steps", "4",
            ]
        )
        assert code == 2
        assert "structured" in capsys.readouterr().err

    def test_mechanism_subset(self, tmp_path, capsys):
        code = compare_main(
            ["--grid", "2", "--k-steps", "4", "--mechanisms", "save,sparce",
             "--no-chart"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sparce" in out and "indexmac" not in out

    def test_main_dispatches_compare(self, capsys):
        code = main(
            ["compare", "--grid", "2", "--k-steps", "4",
             "--mechanisms", "save", "--no-chart"]
        )
        assert code == 0
        assert "Skip-mechanism comparison" in capsys.readouterr().out


class TestExperimentMechanismFlag:
    def test_fig15_accepts_mechanism_sparce(self, capsys):
        code = main(
            ["fig15", "--k-steps", "2", "--mechanism", "sparce"]
        )
        assert code == 0
        assert "fig15 completed" in capsys.readouterr().out

    def test_rival_mechanism_with_fast_engine_fails(self, capsys):
        with pytest.raises(Exception, match="exact"):
            main(
                ["fig15", "--k-steps", "2", "--mechanism", "sparce",
                 "--engine", "fast"]
            )
