"""Tests for the mechanism axis: resolution, variants, IndexMAC stream."""

import numpy as np
import pytest

from repro.core.config import (
    BASELINE_2VPU,
    SAVE_2VPU,
    CoalescingScheme,
)
from repro.kernels.gemm import GemmKernelConfig
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.memory.broadcast_cache import BroadcastCacheKind
from repro.rivals.indexmac import IndexMACConfig, generate_indexmac_stream
from repro.rivals.mechanisms import (
    MECHANISMS,
    MechanismError,
    resolve_mechanism,
    sparce_save_config,
    validate_mechanism,
)
from repro.rivals.nm import NMKernelConfig, generate_nm_stream


def nm_config(pattern="2:4", precision=Precision.FP32, bs=0.6, nbs=0.4, k_steps=12):
    return NMKernelConfig(
        name="mech-test",
        tile=RegisterTile(3, 2, BroadcastPattern.EXPLICIT),
        k_steps=k_steps,
        pattern=pattern,
        precision=precision,
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        seed=0,
    )


def gemm_config():
    return GemmKernelConfig(
        name="dense-test",
        tile=RegisterTile(2, 2, BroadcastPattern.EXPLICIT),
        k_steps=8,
    )


class TestValidation:
    def test_known_mechanisms(self):
        assert MECHANISMS == ("save", "sparce", "indexmac")
        for mechanism in MECHANISMS:
            assert validate_mechanism(mechanism) == mechanism

    def test_unknown_mechanism(self):
        with pytest.raises(MechanismError, match="available"):
            validate_mechanism("sparta")

    @pytest.mark.parametrize("mechanism", ["sparce", "indexmac"])
    @pytest.mark.parametrize("engine", ["fast", "analytic"])
    def test_rivals_are_exact_only(self, mechanism, engine):
        with pytest.raises(MechanismError, match="exact"):
            resolve_mechanism(mechanism, nm_config(), SAVE_2VPU, engine)

    def test_save_passes_any_engine(self):
        config = nm_config()
        for engine in ("exact", "fast", "analytic"):
            out_config, out_machine = resolve_mechanism(
                "save", config, SAVE_2VPU, engine
            )
            assert out_config is config
            assert out_machine is SAVE_2VPU


class TestSparce:
    def test_machine_is_naive_whole_instruction_skip(self):
        save = sparce_save_config()
        assert save.enabled
        assert save.coalescing == CoalescingScheme.NAIVE
        assert not save.lane_wise_dependence
        assert save.rotation_states == 1
        assert not save.mixed_precision_technique
        assert save.broadcast_cache == BroadcastCacheKind.NONE
        assert save.mgu_count == 1

    def test_resolution_keeps_config_swaps_machine(self):
        config = nm_config()
        out_config, out_machine = resolve_mechanism(
            "sparce", config, SAVE_2VPU, "exact"
        )
        assert out_config is config
        assert out_machine.save == sparce_save_config()
        assert out_machine.core == SAVE_2VPU.core

    def test_applies_to_unstructured_kernels_too(self):
        config = gemm_config()
        out_config, _ = resolve_mechanism("sparce", config, SAVE_2VPU, "exact")
        assert out_config is config


class TestIndexMAC:
    def test_resolution_wraps_nm_config_disables_save(self):
        out_config, out_machine = resolve_mechanism(
            "indexmac", nm_config(), SAVE_2VPU, "exact"
        )
        assert isinstance(out_config, IndexMACConfig)
        assert not out_machine.save.enabled

    def test_existing_wrapper_passes_through(self):
        wrapped = IndexMACConfig(nm=nm_config())
        out_config, _ = resolve_mechanism(
            "indexmac", wrapped, SAVE_2VPU, "exact"
        )
        assert out_config is wrapped

    def test_rejects_unstructured_kernels(self):
        with pytest.raises(MechanismError, match="structured"):
            resolve_mechanism("indexmac", gemm_config(), SAVE_2VPU, "exact")

    def test_wrapper_rejects_non_nm_config(self):
        with pytest.raises(TypeError, match="NMKernelConfig"):
            IndexMACConfig(nm=gemm_config())

    def test_functional_result_matches_nm_stream(self):
        config = nm_config(bs=0.75, nbs=0.5, k_steps=16)
        nm_stream = generate_nm_stream(config)
        ix_stream = generate_indexmac_stream(IndexMACConfig(nm=config))
        np.testing.assert_allclose(
            ix_stream.result_matrix(ix_stream.reference_result()),
            nm_stream.result_matrix(nm_stream.reference_result()),
            rtol=1e-5,
            atol=1e-5,
        )

    def test_fully_masked_steps_elided(self):
        config = nm_config(pattern="2:4", bs=0.9, k_steps=16)
        stream = generate_indexmac_stream(IndexMACConfig(nm=config))
        mask = stream.meta["level_mask"]
        kept = stream.meta["kept_steps"]
        assert kept == int(np.sum([mask[k] for k in range(config.k_steps)]))
        assert kept < config.k_steps
        # Elided steps drop their loop overhead too: the compressed
        # stream is strictly shorter than the dense N:M schedule.
        dense = generate_nm_stream(config)
        assert len(stream.materialize()) < len(dense.materialize())

    def test_mixed_precision_step_elided_only_when_both_levels_masked(self):
        config = nm_config(
            pattern="4:8", precision=Precision.MIXED, bs=0.75, k_steps=8
        )
        stream = generate_indexmac_stream(IndexMACConfig(nm=config))
        mask = stream.meta["level_mask"]
        expected = sum(
            1
            for k in range(config.k_steps)
            if mask[2 * k : 2 * k + 2].any()
        )
        assert stream.meta["kept_steps"] == expected

    def test_index_overhead_charged_per_group(self):
        config = nm_config(bs=0.9, k_steps=16)
        stream = generate_indexmac_stream(
            IndexMACConfig(nm=config, index_overhead_uops=2)
        )
        tags = [
            uop.tag
            for uop in stream.materialize()
            if (getattr(uop, "tag", None) or "").startswith("index-g")
        ]
        groups = config.k_depth // 4
        assert len(tags) == 2 * groups

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IndexMACConfig(nm=nm_config(), index_overhead_uops=-1)


class TestTimingOrdering:
    """Sanity: the variants' timing relationships hold at high sparsity."""

    def test_indexmac_beats_dense_issue_and_sparce_trails_save(self):
        from repro.experiments.executor import PointJob, SimExecutor

        config = nm_config(bs=0.75, nbs=0.3, k_steps=16)
        jobs = [PointJob(config=config, machine=BASELINE_2VPU, engine="exact")]
        jobs += [
            PointJob(
                config=config, machine=SAVE_2VPU, engine="exact",
                mechanism=mechanism,
            )
            for mechanism in MECHANISMS
        ]
        dense, save, sparce, indexmac = SimExecutor(jobs=1).map(jobs)
        assert indexmac < dense
        assert save < dense
        assert save < sparce
