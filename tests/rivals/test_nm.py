"""Tests for the N:M structured-sparse kernel generator."""

import numpy as np
import pytest

from repro.kernels.library import get_kernel
from repro.kernels.stream import GeneratorTraceStream
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.rivals.nm import (
    NM_PATTERNS,
    NMKernelConfig,
    generate_nm_stream,
    nm_level_mask,
    parse_pattern,
)


def make_config(
    rows=3,
    cols=2,
    pattern="2:4",
    broadcast=BroadcastPattern.EXPLICIT,
    k_steps=8,
    precision=Precision.FP32,
    bs=0.0,
    nbs=0.0,
    seed=0,
):
    return NMKernelConfig(
        name="nm-test",
        tile=RegisterTile(rows, cols, broadcast),
        k_steps=k_steps,
        pattern=pattern,
        precision=precision,
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        seed=seed,
    )


class TestPattern:
    def test_parse_known_patterns(self):
        assert parse_pattern("2:4") == (2, 4)
        assert parse_pattern("4:8") == (4, 8)

    def test_parse_unknown_pattern(self):
        with pytest.raises(ValueError, match="2:4"):
            parse_pattern("1:16")

    def test_config_rejects_unknown_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            make_config(pattern="3:9")

    @pytest.mark.parametrize("pattern", sorted(NM_PATTERNS))
    def test_effective_floor(self, pattern):
        n, m = NM_PATTERNS[pattern]
        config = make_config(pattern=pattern, bs=0.0)
        assert config.effective_broadcast_sparsity == pytest.approx(1 - n / m)

    def test_effective_sparsity_quantised_to_lattice(self):
        config = make_config(pattern="2:4", bs=0.6)
        # round(0.6 * 4) / 4 = 0.5: 0.6 is not representable on 2:4.
        assert config.effective_broadcast_sparsity == pytest.approx(0.5)
        high = make_config(pattern="2:4", bs=0.8)
        assert high.effective_broadcast_sparsity == pytest.approx(0.75)
        full = make_config(pattern="2:4", bs=0.9)
        assert full.effective_broadcast_sparsity == pytest.approx(1.0)


class TestLevelMask:
    @pytest.mark.parametrize("pattern", sorted(NM_PATTERNS))
    @pytest.mark.parametrize("sparsity", [0.0, 0.3, 0.5, 0.75, 1.0])
    def test_mask_is_nm_legal(self, pattern, sparsity):
        n, m = NM_PATTERNS[pattern]
        rng = np.random.default_rng(0)
        keep = nm_level_mask(4 * m, n, m, sparsity, rng)
        for start in range(0, keep.size, m):
            assert keep[start : start + m].sum() <= n

    def test_requested_sparsity_honoured_above_floor(self):
        rng = np.random.default_rng(0)
        keep = nm_level_mask(40, 2, 4, 0.75, rng)
        assert keep.sum() == 10  # 3 zeros per group of 4

    def test_partial_tail_group(self):
        rng = np.random.default_rng(0)
        keep = nm_level_mask(6, 2, 4, 0.0, rng)
        # Full group keeps 2 of 4; the 2-level tail scales to 1 of 2.
        assert keep[:4].sum() == 2
        assert keep[4:].sum() == 1

    def test_out_of_range_sparsity(self):
        with pytest.raises(ValueError, match="sparsity"):
            nm_level_mask(8, 2, 4, 1.5, np.random.default_rng(0))

    def test_same_seed_same_mask(self):
        first = nm_level_mask(32, 2, 4, 0.5, np.random.default_rng(7))
        second = nm_level_mask(32, 2, 4, 0.5, np.random.default_rng(7))
        np.testing.assert_array_equal(first, second)


class TestStream:
    def test_a_matrix_is_nm_legal(self):
        config = make_config(k_steps=16, bs=0.6, nbs=0.4)
        stream = generate_nm_stream(config)
        a = stream.meta["a_matrix"]
        n, m = config.nm
        for start in range(0, a.shape[1], m):
            group = a[:, start : start + m]
            assert (np.any(group != 0, axis=0)).sum() <= n

    def test_meta_carries_pattern_and_realised_level(self):
        config = make_config(k_steps=16, bs=0.6)
        stream = generate_nm_stream(config)
        assert stream.meta["pattern"] == "2:4"
        assert stream.meta["nm"] == (2, 4)
        assert stream.meta["effective_broadcast_sparsity"] == pytest.approx(
            0.5
        )
        assert stream.meta["level_mask"].size == config.k_depth

    def test_functional_result_matches_linear_algebra(self):
        config = make_config(rows=3, cols=2, k_steps=16, bs=0.6, nbs=0.4)
        stream = generate_nm_stream(config)
        result = stream.result_matrix(stream.reference_result())
        a = stream.meta["a_matrix"]
        b = stream.meta["b_matrix"]
        np.testing.assert_allclose(result, a @ b, rtol=1e-5, atol=1e-5)

    def test_mixed_precision_doubles_depth(self):
        config = make_config(precision=Precision.MIXED, k_steps=8)
        assert config.k_depth == 16
        stream = generate_nm_stream(config)
        assert stream.meta["a_matrix"].shape[1] == 16

    def test_same_seed_bit_identical_stream(self):
        config = make_config(k_steps=12, bs=0.5, nbs=0.5, seed=3)
        first = generate_nm_stream(config).materialize()
        second = generate_nm_stream(config).materialize()
        assert first == second

    def test_stream_restartable(self):
        stream = generate_nm_stream(make_config(k_steps=12, bs=0.5))
        assert isinstance(stream, GeneratorTraceStream)
        assert stream.materialize() == stream.materialize()

    def test_library_kernels_are_structured(self):
        for name in ("nm24_fwd", "nm48_bwd_input"):
            spec = get_kernel(name)
            config = spec.config(
                broadcast_sparsity=0.5, nonbroadcast_sparsity=0.5, k_steps=8
            )
            assert isinstance(config, NMKernelConfig)
            generate_nm_stream(config)
