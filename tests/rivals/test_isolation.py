"""Mechanism isolation: no cache/store identity is shared across
mechanisms, anywhere results are keyed by content address."""

import pytest

from repro.serve.schema import RequestError, parse_request
from repro.store.schema import sweep_fingerprint, validate_meta


def serve_body(**overrides):
    body = {
        "kind": "point",
        "kernel": {"rows": 2, "cols": 2, "k_steps": 4},
        "machine": {"preset": "save"},
        "point": [0.3, 0.6],
    }
    body.update(overrides)
    return body


def store_meta(**overrides):
    meta = {
        "kernel": "nm24_fwd",
        "machine": "save-2vpu@1.7",
        "engine": "exact",
        "mechanism": "save",
        "metric": "time_ns",
        "precision": "fp32",
        "k_steps": 8,
        "seed": 0,
    }
    meta.update(overrides)
    return meta


class TestServeFingerprints:
    def test_mechanisms_never_share_a_fingerprint(self):
        save = parse_request(serve_body())
        explicit_save = parse_request(serve_body(mechanism="save"))
        sparce = parse_request(serve_body(mechanism="sparce"))
        # Omitting the field defaults to save — the same dedup key —
        # while sparce gets a disjoint one.
        assert save.fingerprint() == explicit_save.fingerprint()
        assert sparce.fingerprint() != save.fingerprint()

    def test_batch_keys_disjoint_too(self):
        save = parse_request(serve_body())
        sparce = parse_request(serve_body(mechanism="sparce"))
        assert save.batch_key() != sparce.batch_key()

    def test_jobs_carry_the_mechanism(self):
        request = parse_request(serve_body(mechanism="sparce"))
        assert all(job.mechanism == "sparce" for job in request.jobs())

    def test_indexmac_rejected_by_serve(self):
        with pytest.raises(RequestError, match="mechanism"):
            parse_request(serve_body(mechanism="indexmac"))

    def test_rival_with_fast_engine_rejected(self):
        with pytest.raises(RequestError, match="exact"):
            parse_request(serve_body(mechanism="sparce", engine="fast"))


class TestStoreFingerprints:
    def test_mechanisms_never_share_a_sweep_key(self):
        prints = {
            mechanism: sweep_fingerprint(store_meta(mechanism=mechanism))
            for mechanism in ("save", "sparce", "indexmac")
        }
        assert len(set(prints.values())) == 3

    def test_legacy_meta_maps_to_save(self):
        legacy = store_meta()
        del legacy["mechanism"]
        assert sweep_fingerprint(legacy) == sweep_fingerprint(store_meta())
        assert sweep_fingerprint(legacy) != sweep_fingerprint(
            store_meta(mechanism="sparce")
        )

    def test_validate_meta_defaults_mechanism(self):
        legacy = store_meta()
        del legacy["mechanism"]
        assert validate_meta(legacy)["mechanism"] == "save"
