"""Tests for the comparison harness: experiment, charts, determinism."""

import pytest

from repro.core.config import SAVE_2VPU
from repro.experiments.charts import compare_charts
from repro.experiments.context import RunContext
from repro.experiments.executor import PointJob, SimExecutor
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.rivals import compare_mechanisms
from repro.kernels.library import get_kernel
from repro.rivals.mechanisms import MECHANISMS, MechanismError
from repro.store import SweepStore

LEVELS = (0.0, 0.9)


@pytest.fixture(scope="module")
def result():
    return compare_mechanisms(levels=LEVELS, k_steps=6)


class TestCompareMechanisms:
    def test_covers_every_mechanism_and_point(self, result):
        assert result["mechanisms"] == list(MECHANISMS)
        for mechanism in MECHANISMS:
            grid = result["speedups"][mechanism]
            assert set(grid) == {
                (bs, nbs) for bs in LEVELS for nbs in LEVELS
            }
            assert all(value > 0 for value in grid.values())

    def test_shared_dense_baseline(self, result):
        assert result["base_time_ns"] > 0
        for mechanism in MECHANISMS:
            times = result["times"][mechanism]
            assert len(times) == len(LEVELS) ** 2

    def test_pattern_metadata(self, result):
        assert result["kernel"] == "nm24_fwd"
        assert result["pattern"] == "2:4"
        assert result["effective_bs_floor"] == pytest.approx(0.5)

    def test_empty_mechanisms_rejected(self):
        with pytest.raises(ValueError, match="mechanisms"):
            compare_mechanisms(mechanisms=(), levels=LEVELS, k_steps=6)

    def test_bad_pairing_fails_before_simulating(self):
        # An unstructured kernel cannot run indexmac; the harness must
        # reject it up front rather than after the grid has simulated.
        with pytest.raises(MechanismError, match="structured"):
            compare_mechanisms(
                kernel="resnet2_2_fwd",
                mechanisms=("indexmac",),
                levels=LEVELS,
                k_steps=6,
            )

    def test_unstructured_kernel_fine_for_save_and_sparce(self):
        result = compare_mechanisms(
            kernel="resnet2_2_fwd",
            mechanisms=("save", "sparce"),
            levels=(0.0,),
            k_steps=4,
        )
        assert result["pattern"] is None
        assert set(result["speedups"]) == {"save", "sparce"}


class TestDeterminism:
    @pytest.mark.parametrize("kernel", ["nm24_fwd", "nm48_bwd_input"])
    def test_parallel_equals_serial_per_mechanism(self, kernel):
        """Bit-for-bit parallel == serial for every mechanism/kernel."""
        spec = get_kernel(kernel)
        jobs = [
            PointJob(
                config=spec.config(
                    broadcast_sparsity=0.6,
                    nonbroadcast_sparsity=0.4,
                    k_steps=6,
                    seed=1,
                ),
                machine=SAVE_2VPU,
                engine="exact",
                mechanism=mechanism,
            )
            for mechanism in MECHANISMS
        ]
        serial = SimExecutor(jobs=1).map(jobs)
        parallel = SimExecutor(jobs=2).map(jobs)
        assert serial == parallel

    def test_same_seed_same_result(self):
        first = compare_mechanisms(levels=LEVELS, k_steps=6, seed=3)
        second = compare_mechanisms(levels=LEVELS, k_steps=6, seed=3)
        assert first == second

    def test_parallel_harness_matches_serial(self, result):
        parallel = compare_mechanisms(
            levels=LEVELS, k_steps=6, executor=SimExecutor(jobs=2)
        )
        assert parallel == result


class TestStoreRecording:
    def test_one_sweep_per_mechanism(self, tmp_path, result):
        compare_mechanisms(
            levels=LEVELS, k_steps=6, store_root=tmp_path / "store"
        )
        store = SweepStore(tmp_path / "store")
        sweeps = store.describe()
        assert len(sweeps) == len(MECHANISMS)
        by_mechanism = {meta["mechanism"] for meta in sweeps}
        assert by_mechanism == set(MECHANISMS)
        rows = list(store.query(kernel="nm24_fwd"))
        assert len(rows) == len(MECHANISMS) * len(LEVELS) ** 2


class TestExperimentAndCharts:
    def test_registered(self):
        assert "rivals" in EXPERIMENTS

    def test_report_renders(self):
        report = run_experiment(
            "rivals", RunContext(levels=LEVELS, k_steps=6)
        )
        text = report.render()
        assert "Skip-mechanism comparison" in text
        for mechanism in MECHANISMS:
            assert mechanism in text
        assert len(report.rows) == len(MECHANISMS) * len(LEVELS) ** 2

    def test_charts_render_every_mechanism(self, result):
        figure = compare_charts(result)
        for mechanism in MECHANISMS:
            assert f"{mechanism} speedup" in figure
        assert "BS=90%" in figure
