"""Structural tests for the Chrome trace-event export."""

import json

from repro.core import SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile
from repro.obs import Instrumentation, ListSink, MetricsRegistry, SpanRecorder
from repro.obs.chrometrace import (
    HOST_PID,
    SIM_PID,
    chrome_trace,
    sim_trace_events,
    span_trace_events,
    write_chrome_trace,
)


def _recorded_spans():
    rec = SpanRecorder()
    with rec.span("simulate", points=2):
        with rec.span("surface.build"):
            pass
        with rec.span("merge"):
            pass
    with rec.span("report"):
        pass
    return rec.records


def _sim_events():
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="ct-test",
            tile=RegisterTile(4, 4, BroadcastPattern.EMBEDDED),
            k_steps=6,
            broadcast_sparsity=0.3,
            nonbroadcast_sparsity=0.6,
            seed=3,
        )
    )
    sink = ListSink()
    obs = Instrumentation(metrics=MetricsRegistry(), sink=sink)
    simulate(trace, SAVE_2VPU, keep_state=False, obs=obs)
    return sink.events


class TestSpanEvents:
    def test_complete_events_shape(self):
        events = span_trace_events(_recorded_spans())
        assert len(events) == 4
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == HOST_PID
            assert event["ts"] >= 0 and event["dur"] >= 0

    def test_slices_nested_not_overlapping_per_track(self):
        # The viewer requires "X" slices on one track to be either
        # disjoint or fully nested.  Spans come off a stack, so that
        # must hold for every pair.
        events = span_trace_events(_recorded_spans())
        by_track = {}
        for event in events:
            by_track.setdefault((event["pid"], event["tid"]), []).append(event)
        for slices in by_track.values():
            for i, a in enumerate(slices):
                for b in slices[i + 1 :]:
                    a0, a1 = a["ts"], a["ts"] + a["dur"]
                    b0, b1 = b["ts"], b["ts"] + b["dur"]
                    disjoint = a1 <= b0 or b1 <= a0
                    nested = (a0 <= b0 and b1 <= a1) or (b0 <= a0 and a1 <= b1)
                    assert disjoint or nested, (a["name"], b["name"])

    def test_attrs_become_args(self):
        events = span_trace_events(_recorded_spans())
        assert events[0]["args"] == {"points": 2}


class TestSimEvents:
    def test_instants_and_counters(self):
        events = sim_trace_events(_sim_events())
        phases = {event["ph"] for event in events}
        assert phases == {"i", "C"}
        for event in events:
            assert event["pid"] == SIM_PID
            assert event["ts"] >= 0

    def test_timestamps_nondecreasing(self):
        events = sim_trace_events(_sim_events())
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)

    def test_multi_run_offset(self):
        raw = [
            {"cycle": 5, "event": "retire", "kernel": "k", "seq": 0},
            {"cycle": 0, "event": "dispatch", "kernel": "k", "seq": 0, "kind": "v"},
        ]
        events = [e for e in sim_trace_events(raw) if e["ph"] == "i"]
        assert events[0]["ts"] == 5.0
        assert events[1]["ts"] == 6.0  # run 2 starts after run 1's last cycle

    def test_inflight_counter_returns_to_zero(self):
        counters = [
            event
            for event in sim_trace_events(_sim_events())
            if event["ph"] == "C" and event["name"] == "inflight_uops"
        ]
        assert counters
        assert counters[-1]["args"]["uops"] == 0


class TestDocument:
    def test_document_is_json_serialisable(self):
        document = chrome_trace(spans=_recorded_spans(), events=_sim_events())
        text = json.dumps(document)
        round_tripped = json.loads(text)
        assert round_tripped["traceEvents"]

    def test_metadata_tracks_present(self):
        document = chrome_trace(spans=_recorded_spans(), events=_sim_events())
        meta = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "host (repro pipeline)" in names
        assert "simulator (1 cycle = 1us)" in names

    def test_empty_inputs(self):
        document = chrome_trace()
        assert document["traceEvents"] == []

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(
            str(path), spans=_recorded_spans(), events=_sim_events()
        )
        assert written == str(path)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        assert any(e["ph"] == "i" for e in document["traceEvents"])
