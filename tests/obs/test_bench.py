"""Tests for the performance ledger and ``repro bench``."""

import json

import pytest

from repro.obs import bench
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    bench_main,
    compare_entries,
    ledger_paths,
    next_seq,
    validate_entry,
    write_entry,
)


def _entry(wall=0.5, cycles=1000, quick=True, **overrides):
    entry = {
        "schema": BENCH_SCHEMA_VERSION,
        "created_unix": 1700000000.0,
        "quick": quick,
        "repeats": 2,
        "python": "3.12.0",
        "platform": "test",
        "version": "0.0",
        "workloads": {
            "single_save_point": {
                "wall_s": wall,
                "jobs": 1,
                "points": 1,
                "sim_cycles": cycles,
                "cycles_per_sec": cycles / wall,
                "counters": {"sim_cycles": cycles},
            }
        },
    }
    entry.update(overrides)
    return entry


class TestValidate:
    def test_valid_entry_passes(self):
        validate_entry(dict(_entry(), seq=1))

    def test_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_entry(dict(_entry(), seq=1, schema=99))

    def test_missing_seq(self):
        with pytest.raises(ValueError, match="seq"):
            validate_entry(_entry())

    def test_empty_workloads(self):
        with pytest.raises(ValueError, match="workloads"):
            validate_entry(dict(_entry(), seq=1, workloads={}))

    def test_nonpositive_wall(self):
        bad = _entry(wall=0.5)
        bad["workloads"]["single_save_point"]["wall_s"] = 0
        with pytest.raises(ValueError, match="wall_s"):
            validate_entry(dict(bad, seq=1))

    def test_missing_workload_field(self):
        bad = _entry()
        del bad["workloads"]["single_save_point"]["counters"]
        with pytest.raises(ValueError, match="counters"):
            validate_entry(dict(bad, seq=1))


class TestLedgerFiles:
    def test_empty_directory(self, tmp_path):
        assert ledger_paths(tmp_path) == []
        assert ledger_paths(tmp_path / "absent") == []
        assert next_seq(tmp_path) == 1

    def test_write_assigns_sequence(self, tmp_path):
        first = write_entry(tmp_path, _entry())
        second = write_entry(tmp_path, _entry())
        assert first.name == "BENCH_0001.json"
        assert second.name == "BENCH_0002.json"
        assert json.loads(second.read_text())["seq"] == 2
        assert [seq for seq, _ in ledger_paths(tmp_path)] == [1, 2]

    def test_write_with_pinned_seq(self, tmp_path):
        path = write_entry(tmp_path, _entry(), seq=6)
        assert path.name == "BENCH_0006.json"
        assert json.loads(path.read_text())["seq"] == 6
        # The next unpinned write continues after the pinned entry.
        assert write_entry(tmp_path, _entry()).name == "BENCH_0007.json"

    def test_pinned_seq_refuses_overwrite(self, tmp_path):
        write_entry(tmp_path, _entry(), seq=3)
        with pytest.raises(ValueError, match="already exists"):
            write_entry(tmp_path, _entry(), seq=3)

    def test_non_entry_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("x")
        (tmp_path / "BENCH_12.json").write_text("{}")  # too few digits
        write_entry(tmp_path, _entry())
        assert len(ledger_paths(tmp_path)) == 1

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(ValueError):
            write_entry(tmp_path, dict(_entry(), workloads={}))
        assert ledger_paths(tmp_path) == []


class TestCompare:
    def test_ok_within_threshold(self):
        deltas = compare_entries(_entry(wall=1.0), _entry(wall=1.2), threshold=0.25)
        assert deltas[0]["status"] == "ok"
        assert not deltas[0]["regressed"]
        assert deltas[0]["change"] == pytest.approx(0.2)

    def test_regression_beyond_threshold(self):
        deltas = compare_entries(_entry(wall=1.0), _entry(wall=1.4), threshold=0.25)
        assert deltas[0]["status"] == "regressed"
        assert deltas[0]["regressed"]

    def test_speedup_is_ok(self):
        deltas = compare_entries(_entry(wall=1.0), _entry(wall=0.5))
        assert deltas[0]["status"] == "ok"

    def test_new_workload(self):
        previous = _entry()
        current = _entry()
        current["workloads"]["brand_new"] = dict(
            current["workloads"]["single_save_point"]
        )
        deltas = compare_entries(previous, current)
        by_name = {delta["workload"]: delta for delta in deltas}
        assert by_name["brand_new"]["status"] == "new"
        assert not by_name["brand_new"]["regressed"]

    def test_sim_cycle_drift_flagged_not_regressed(self):
        deltas = compare_entries(
            _entry(wall=1.0, cycles=1000), _entry(wall=1.0, cycles=1100)
        )
        assert deltas[0]["sim_drift"]
        assert not deltas[0]["regressed"]


def _serve_entry(p95_by_mix, wall=1.0):
    entry = _entry(wall=wall)
    workload = entry["workloads"].pop("single_save_point")
    workload["mixes"] = {
        mix: {
            "requests": 16,
            "throughput_rps": 100.0,
            "p50_ms": p95 / 2,
            "p95_ms": p95,
            "p99_ms": p95 * 1.5,
        }
        for mix, p95 in p95_by_mix.items()
    }
    entry["workloads"]["serve_roundtrip"] = workload
    return entry


class TestCompareMixes:
    """Per-mix p95 thresholds for serve_roundtrip."""

    def test_mix_p95_within_threshold_is_ok(self):
        deltas = compare_entries(
            _serve_entry({"hot": 10.0, "scan": 20.0, "cold": 30.0}),
            _serve_entry({"hot": 11.0, "scan": 22.0, "cold": 33.0}),
        )
        assert deltas[0]["status"] == "ok"
        assert all(not mix["regressed"] for mix in deltas[0]["mixes"])

    def test_single_mix_p95_regression_fails_workload(self):
        # Wall time is flat — only the cold mix's tail blew up.
        deltas = compare_entries(
            _serve_entry({"hot": 10.0, "scan": 20.0, "cold": 30.0}),
            _serve_entry({"hot": 10.0, "scan": 20.0, "cold": 40.0}),
        )
        assert deltas[0]["status"] == "regressed"
        by_mix = {mix["mix"]: mix for mix in deltas[0]["mixes"]}
        assert by_mix["cold"]["regressed"]
        assert by_mix["cold"]["change"] == pytest.approx(1 / 3, abs=1e-4)
        assert not by_mix["hot"]["regressed"]
        assert not by_mix["scan"]["regressed"]

    def test_mix_threshold_is_configurable(self):
        previous = _serve_entry({"hot": 10.0})
        current = _serve_entry({"hot": 12.5})  # +25%
        assert compare_entries(previous, current)[0]["regressed"]
        assert not compare_entries(previous, current, mix_threshold=0.3)[0][
            "regressed"
        ]

    def test_new_mix_has_no_baseline(self):
        deltas = compare_entries(
            _serve_entry({"hot": 10.0}),
            _serve_entry({"hot": 10.0, "cold": 50.0}),
        )
        assert [mix["mix"] for mix in deltas[0]["mixes"]] == ["hot"]
        assert not deltas[0]["regressed"]

    def test_mix_improvement_is_ok(self):
        deltas = compare_entries(
            _serve_entry({"hot": 40.0}), _serve_entry({"hot": 10.0})
        )
        assert not deltas[0]["regressed"]


class TestBenchMain:
    """End-to-end CLI runs with the suite monkeypatched to be instant."""

    @pytest.fixture
    def fake_suite(self, monkeypatch):
        state = {"wall": 0.1}

        def fake_run_suite(quick=False, repeats=2, echo=None):
            return _entry(wall=state["wall"], quick=quick)

        monkeypatch.setattr(bench, "run_suite", fake_run_suite)
        return state

    def test_first_run_records_baseline(self, tmp_path, capsys, fake_suite):
        ledger = tmp_path / "ledger"
        assert bench_main(["--ledger", str(ledger), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "baseline recorded" in out
        assert ledger_paths(ledger)

    def test_second_run_compares_and_passes(self, tmp_path, capsys, fake_suite):
        ledger = tmp_path / "ledger"
        bench_main(["--ledger", str(ledger), "--quick"])
        fake_suite["wall"] = 0.11  # +10%, within the default 25%
        assert bench_main(["--ledger", str(ledger), "--quick"]) == 0
        out = capsys.readouterr().out
        assert "comparing against BENCH_0001.json" in out
        assert "ok" in out
        assert len(ledger_paths(ledger)) == 2

    def test_regression_exits_nonzero(self, tmp_path, capsys, fake_suite):
        ledger = tmp_path / "ledger"
        bench_main(["--ledger", str(ledger), "--quick"])
        fake_suite["wall"] = 0.2  # +100%
        assert bench_main(["--ledger", str(ledger), "--quick"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        # The regressed entry is still written (the ledger is a record,
        # not a gate).
        assert len(ledger_paths(ledger)) == 2

    def test_threshold_flag(self, tmp_path, fake_suite):
        ledger = tmp_path / "ledger"
        bench_main(["--ledger", str(ledger), "--quick"])
        fake_suite["wall"] = 0.11  # +10%
        assert (
            bench_main(["--ledger", str(ledger), "--quick", "--threshold", "0.05"])
            == 1
        )

    def test_no_write(self, tmp_path, fake_suite):
        ledger = tmp_path / "ledger"
        assert bench_main(["--ledger", str(ledger), "--quick", "--no-write"]) == 0
        assert ledger_paths(ledger) == []

    def test_quick_compares_only_quick(self, tmp_path, capsys, fake_suite):
        ledger = tmp_path / "ledger"
        bench_main(["--ledger", str(ledger)])  # full entry
        capsys.readouterr()
        assert bench_main(["--ledger", str(ledger), "--quick"]) == 0
        assert "baseline recorded" in capsys.readouterr().out

    def test_unreadable_entry_skipped(self, tmp_path, capsys, fake_suite):
        ledger = tmp_path / "ledger"
        bench_main(["--ledger", str(ledger), "--quick"])
        # Corrupt a later entry; the compare should fall back past it.
        (ledger / "BENCH_0002.json").write_text('{"schema": 99}')
        capsys.readouterr()
        assert bench_main(["--ledger", str(ledger), "--quick"]) == 0
        captured = capsys.readouterr()
        assert "skipping unreadable ledger entry" in captured.err
        assert "comparing against BENCH_0001.json" in captured.out


class TestReport:
    def _ledger(self, tmp_path):
        ledger = tmp_path / "ledger"
        write_entry(ledger, _entry(wall=1.0))
        write_entry(ledger, _entry(wall=1.1))
        write_entry(ledger, _entry(wall=0.2, quick=True))
        return ledger

    def test_trajectory_with_same_flavour_change(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path)
        assert bench.report_main(["--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "single_save_point:" in out
        # seq 2 changed +10% against the full-flavour seq 1; the quick
        # seq 3 entry has no same-flavour predecessor, so no change.
        assert "+10.0%" in out
        assert "quick" in out

    def test_workload_filter_unknown(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path)
        assert bench.report_main(["--ledger", str(ledger), "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_empty_ledger(self, tmp_path, capsys):
        assert bench.report_main(["--ledger", str(tmp_path / "none")]) == 1
        assert "no ledger entries" in capsys.readouterr().err

    def test_bench_main_dispatches_report(self, tmp_path, capsys):
        ledger = self._ledger(tmp_path)
        assert bench_main(["report", "--ledger", str(ledger)]) == 0
        assert "single_save_point:" in capsys.readouterr().out

    def test_speedup_column_rendered(self):
        entry = _entry()
        entry["workloads"]["fastsim_sweep"] = {
            "wall_s": 0.1,
            "exact_wall_s": 1.5,
            "speedup_over_exact": 15.0,
            "jobs": 1,
            "points": 4,
            "sim_cycles": 100,
            "cycles_per_sec": 1000.0,
            "counters": {"sim_cycles": 100},
        }
        text = bench.format_report([dict(entry, seq=1)])
        assert "15.0x vs exact" in text


class TestCommittedLedger:
    def test_committed_entries_validate(self):
        from pathlib import Path

        ledger = Path(__file__).resolve().parents[2] / "benchmarks" / "ledger"
        paths = ledger_paths(ledger)
        assert paths, "the committed ledger must not be empty"
        for _, path in paths:
            validate_entry(json.loads(path.read_text()))

    def test_committed_sweep_throughput_meets_rss_contract(self):
        # BENCH_0007 records the acceptance run: a >=100k-point fast
        # sweep whose peak RSS stays within 2x of a ~1k-point sweep.
        from pathlib import Path

        ledger = Path(__file__).resolve().parents[2] / "benchmarks" / "ledger"
        entry = json.loads((ledger / "BENCH_0007.json").read_text())
        sweep = entry["workloads"]["sweep_throughput"]
        assert sweep["points"] >= 100_000
        assert sweep["small_points"] >= 1_000
        assert sweep["rss_ratio"] <= 2.0
        assert sweep["points_per_sec"] > 0


class TestRealSuiteSmoke:
    def test_run_suite_quick_is_schema_valid(self, tmp_path):
        entry = bench.run_suite(quick=True, repeats=1)
        path = write_entry(tmp_path, entry)
        stored = json.loads(path.read_text())
        validate_entry(stored)
        workloads = stored["workloads"]
        assert set(workloads) == {
            "single_save_point",
            "coarse_sweep",
            "parallel_sweep",
            "fastsim_sweep",
            "sweep_throughput",
            "serve_roundtrip",
            "check_wall",
        }
        for name, workload in workloads.items():
            assert workload["wall_s"] > 0
            if name == "check_wall":
                # No simulator in the loop: cycles are pinned at zero.
                assert workload["sim_cycles"] == 0
                continue
            assert workload["sim_cycles"] > 0
            assert workload["counters"]["sim_cycles"] == workload["sim_cycles"]
        fastsim = workloads["fastsim_sweep"]
        assert fastsim["exact_wall_s"] > 0
        assert fastsim["speedup_over_exact"] > 1.0
        assert fastsim["points"] == workloads["coarse_sweep"]["points"]
        sweep = workloads["sweep_throughput"]
        assert sweep["points"] > sweep["small_points"]
        assert sweep["points_per_sec"] > 0
        assert sweep["rss_ratio"] <= 2.0
        serve = workloads["serve_roundtrip"]
        assert set(serve["mixes"]) == {"hot", "scan", "cold"}
        for stats in serve["mixes"].values():
            assert stats["requests"] > 0
            assert stats["throughput_rps"] > 0
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]
        check = workloads["check_wall"]
        assert check["files"] > 0
        assert check["warm_wall_s"] > 0
        assert check["warm_speedup"] >= 3.0
