"""Request-log telemetry units: schema, ring, percentiles, Prometheus."""

import json
import os
import threading

import pytest

from repro.obs.metrics import MetricsRegistry, log2_bucket
from repro.obs.telemetry import (
    LATENCY_PHASES,
    LATENCY_QUANTILES,
    NULL_REQUEST_LOG,
    REQLOG_SCHEMA_VERSION,
    REQUEST_EVENT_FIELDS,
    LatencyRecorder,
    NullRequestLog,
    RequestLog,
    ServeTelemetry,
    exact_percentile,
    new_trace_id,
    read_request_log,
    render_prometheus,
    validate_request_event,
    wants_prometheus,
)
from repro.obs.trace import TraceFormatError


def make_event(kind="ingress", **overrides):
    base = {
        "ingress": {"trace_id": "t1", "key": "k1", "outcome": "accepted"},
        "phase": {"trace_id": "t1", "phase": "queue_wait", "wall_s": 0.1},
        "sim": {"trace_ids": ["t1"], "point": [0.1, 0.2], "wall_s": 0.1,
                "engine": "fast"},
        "complete": {"trace_id": "t1", "key": "k1", "status": "done",
                     "wall_s": 0.2},
        "access": {"trace_id": "t1", "method": "POST", "path": "/v1/submit",
                   "status": 202, "wall_s": 0.01},
        "snapshot": {"queue_depth": 0, "active": 0, "oldest_age_s": 0.0,
                     "counters": {}},
    }[kind]
    event = {"ts": 1.5, "event": kind, **base}
    event.update(overrides)
    return event


class TestValidateRequestEvent:
    @pytest.mark.parametrize("kind", sorted(REQUEST_EVENT_FIELDS))
    def test_every_event_type_validates(self, kind):
        validate_request_event(make_event(kind))

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown request-log event"):
            validate_request_event({"ts": 1.0, "event": "nope"})

    def test_missing_common_field_rejected(self):
        event = make_event()
        del event["ts"]
        with pytest.raises(ValueError, match="common field 'ts'"):
            validate_request_event(event)

    def test_missing_required_field_rejected(self):
        event = make_event("ingress")
        del event["outcome"]
        with pytest.raises(ValueError, match="'outcome'"):
            validate_request_event(event)

    @pytest.mark.parametrize("ts", [-1.0, True, "now", None])
    def test_bad_ts_rejected(self, ts):
        with pytest.raises(ValueError, match="ts"):
            validate_request_event(make_event(ts=ts))


class TestNewTraceId:
    def test_shape_and_uniqueness(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)


class TestRequestLog:
    def test_round_trip_through_reader(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path) as log:
            log.log_event("ingress", trace_id="t1", key="k", outcome="accepted")
            log.log_event("complete", trace_id="t1", key="k", status="done",
                          wall_s=0.25)
        events = list(read_request_log(str(path)))
        assert [e["event"] for e in events] == ["ingress", "complete"]
        for event in events:
            validate_request_event(event)
            assert event["v"] == REQLOG_SCHEMA_VERSION
        assert log.events_written == 2

    def test_lines_are_compact_json(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path) as log:
            log.log_event("ingress", trace_id="t", key="k", outcome="dedup")
        raw = path.read_text().strip()
        assert json.loads(raw)["outcome"] == "dedup"
        assert ": " not in raw and ", " not in raw

    def test_wrong_schema_version_rejected_by_reader(self, tmp_path):
        path = tmp_path / "req.jsonl"
        record = dict(make_event(), v=REQLOG_SCHEMA_VERSION + 1)
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(TraceFormatError, match="version"):
            list(read_request_log(str(path)))

    def test_log_after_close_is_a_noop(self, tmp_path):
        log = RequestLog(tmp_path / "req.jsonl")
        log.log_event("ingress", trace_id="t", key="k", outcome="accepted")
        log.close()
        log.log_event("ingress", trace_id="t2", key="k", outcome="accepted")
        assert log.events_written == 1

    def test_concurrent_writers_never_interleave_lines(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path) as log:
            def spam(worker):
                for i in range(50):
                    log.log_event(
                        "ingress",
                        trace_id=f"w{worker}-{i}", key="k", outcome="accepted",
                    )
            threads = [
                threading.Thread(target=spam, args=(w,)) for w in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        events = list(read_request_log(str(path)))
        assert len(events) == 200
        for event in events:
            validate_request_event(event)


class TestRingRotation:
    def test_disk_bounded_at_two_segments(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        with RequestLog(path, ring_limit=3) as ring:
            for i in range(8):
                ring.log_event(
                    "snapshot", queue_depth=i, active=0, oldest_age_s=0.0,
                    counters={},
                )
        assert os.path.exists(ring.rotated_path)
        events = list(read_request_log(str(path)))
        # 8 writes, limit 3: rotations at 3 and 6; .old holds [3,6),
        # the live segment holds [6,8) — never more than 2*limit.
        assert [e["queue_depth"] for e in events] == [3, 4, 5, 6, 7]
        assert len(events) <= 2 * 3
        assert ring.events_written == 8

    def test_reader_without_rotation_sees_everything(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        with RequestLog(path, ring_limit=100) as ring:
            for i in range(5):
                ring.log_event(
                    "snapshot", queue_depth=i, active=0, oldest_age_s=0.0,
                    counters={},
                )
        assert not os.path.exists(ring.rotated_path)
        assert len(list(read_request_log(str(path)))) == 5

    def test_non_positive_ring_limit_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="ring_limit"):
            RequestLog(tmp_path / "r.jsonl", ring_limit=0)


class TestNullRequestLog:
    def test_disabled_and_silent(self, tmp_path):
        null = NullRequestLog()
        assert not null.enabled
        null.log_event("ingress", trace_id="t", key="k", outcome="accepted")
        null.flush()
        null.close()
        assert null.events_written == 0
        assert NULL_REQUEST_LOG is not null  # singleton is its own object
        assert not NULL_REQUEST_LOG.enabled


class TestExactPercentile:
    def test_empty_is_none(self):
        assert exact_percentile([], 0.5) is None

    def test_single_sample_is_every_percentile(self):
        for q in (0.01, 0.5, 0.99, 1.0):
            assert exact_percentile([7.0], q) == 7.0

    def test_nearest_rank_on_known_set(self):
        samples = list(range(1, 101))  # 1..100
        assert exact_percentile(samples, 0.50) == 50
        assert exact_percentile(samples, 0.95) == 95
        assert exact_percentile(samples, 0.99) == 99
        assert exact_percentile(samples, 1.00) == 100

    def test_unsorted_input_is_sorted_internally(self):
        assert exact_percentile([30.0, 10.0, 20.0], 0.5) == 20.0

    @pytest.mark.parametrize("q", [0.0, -0.5, 1.5])
    def test_out_of_range_quantile_rejected(self, q):
        with pytest.raises(ValueError, match="quantile"):
            exact_percentile([1.0], q)


class TestLatencyRecorder:
    def test_percentiles_in_milliseconds(self):
        recorder = LatencyRecorder()
        for wall in (0.010, 0.020, 0.100):
            recorder.record("e2e", wall)
        pcts = recorder.percentiles("e2e")
        assert pcts == {"p50": 20.0, "p95": 100.0, "p99": 100.0}
        assert set(pcts) == set(LATENCY_QUANTILES)

    def test_empty_phase_is_none_and_absent_from_snapshot(self):
        recorder = LatencyRecorder()
        recorder.record("e2e", 0.5)
        assert recorder.percentiles("simulate") is None
        assert set(recorder.snapshot()) == {"e2e"}

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown latency phase"):
            LatencyRecorder().record("warp_drive", 1.0)

    def test_retention_is_bounded(self):
        recorder = LatencyRecorder(max_samples=4)
        for wall in (1.0, 1.0, 1.0, 1.0, 0.002, 0.002, 0.002, 0.002):
            recorder.record("e2e", wall)
        assert recorder.count("e2e") == 4
        # Only the most recent window survives: the old 1s outliers left.
        assert recorder.percentiles("e2e")["p99"] == 2.0

    def test_update_gauges_names_follow_the_contract(self):
        recorder = LatencyRecorder()
        recorder.record("queue_wait", 0.004)
        recorder.record("e2e", 0.016)
        metrics = MetricsRegistry()
        recorder.update_gauges(metrics)
        gauges = metrics.snapshot()["gauges"]
        assert set(gauges) == {
            f"serve.latency.{phase}.{q}_ms"
            for phase in ("queue_wait", "e2e")
            for q in LATENCY_QUANTILES
        }
        assert gauges["serve.latency.e2e.p50_ms"] == 16.0

    def test_every_contract_phase_is_recordable(self):
        recorder = LatencyRecorder()
        for phase in LATENCY_PHASES:
            recorder.record(phase, 0.001)
            assert recorder.count(phase) == 1


class TestServeTelemetry:
    def test_default_bundle_is_off_but_records_latency(self):
        telemetry = ServeTelemetry()
        assert not telemetry.enabled
        telemetry.record_phase("t1", "e2e", 0.05)
        assert telemetry.latency.count("e2e") == 1

    def test_record_phase_clamps_negative_walls(self, tmp_path):
        with ServeTelemetry(log=RequestLog(tmp_path / "r.jsonl")) as telemetry:
            assert telemetry.enabled
            telemetry.record_phase("t1", "e2e", -0.5)
        (event,) = read_request_log(str(tmp_path / "r.jsonl"))
        assert event["wall_s"] == 0.0

    def test_close_closes_log_and_ring(self, tmp_path):
        log = RequestLog(tmp_path / "log.jsonl")
        ring = RequestLog(tmp_path / "ring.jsonl", ring_limit=8)
        ServeTelemetry(log=log, ring=ring).close()
        log.log_event("ingress", trace_id="t", key="k", outcome="accepted")
        assert log.events_written == 0


class TestPrometheusExposition:
    def snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("serve.requests").inc(3)
        metrics.gauge("serve.queue_depth").set(2)
        hist = metrics.histogram("serve.latency_ms", log2_bucket)
        for value in (1, 3, 200):
            hist.record(value)
        return metrics.snapshot()

    def test_counters_gauges_and_histograms_render(self):
        text = render_prometheus(self.snapshot())
        assert "# TYPE serve_requests counter\nserve_requests 3" in text
        assert "# TYPE serve_queue_depth gauge\nserve_queue_depth 2" in text
        assert "# TYPE serve_latency_ms histogram" in text
        assert 'serve_latency_ms_bucket{le="+Inf"} 3' in text
        assert "serve_latency_ms_count 3" in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        text = render_prometheus(self.snapshot())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("serve_latency_ms_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_names_are_sanitized(self):
        metrics = MetricsRegistry()
        metrics.counter("serve.latency.e2e.p99_ms").inc()
        text = render_prometheus(metrics.snapshot())
        assert "serve_latency_e2e_p99_ms 1" in text
        bad = [
            line.split(" ")[0] for line in text.splitlines()
            if not line.startswith("#")
        ]
        assert all("." not in name for name in bad)

    def test_empty_snapshot_renders_empty_document(self):
        assert render_prometheus({}) == "\n"


class TestContentNegotiation:
    @pytest.mark.parametrize("accept,expected", [
        (None, False),
        ("", False),
        ("application/json", False),
        ("*/*", False),
        ("text/plain", True),
        ("text/plain; version=0.0.4", True),
        ("application/json, text/plain", True),
    ])
    def test_wants_prometheus(self, accept, expected):
        assert wants_prometheus(accept) is expected
