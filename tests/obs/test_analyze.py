"""Tests for offline trace analytics and ``repro trace-report``."""

import pytest

from repro.core import SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.obs import Instrumentation, JsonlTraceSink, ListSink, MetricsRegistry
from repro.obs.analyze import (
    analyze_events,
    analyze_file,
    render_markdown,
    trace_report_main,
)


def _event(cycle, event, **fields):
    fields.update({"cycle": cycle, "event": event, "kernel": "k"})
    return fields


def _instrumented_run(bs=0.5, nbs=0.5):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="analyze-test",
            tile=RegisterTile(4, 4, BroadcastPattern.EMBEDDED),
            k_steps=8,
            precision=Precision.FP32,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=7,
        )
    )
    sink = ListSink()
    obs = Instrumentation(metrics=MetricsRegistry(), sink=sink)
    result = simulate(trace, SAVE_2VPU, keep_state=False, obs=obs)
    return result, sink, obs


class TestAnalyzeSynthetic:
    def test_counts_and_windows(self):
        events = [
            _event(0, "dispatch", seq=0, kind="vfma"),
            _event(1, "issue", kind="lanes", lanes=4),
            _event(5, "issue", kind="lanes", lanes=8),
            _event(9, "retire", seq=0),
        ]
        analysis = analyze_events(events, window=5)
        assert analysis.cycles == 10
        assert analysis.runs == 1
        assert analysis.event_counts["issue"] == 2
        assert analysis.mean_coalescing_width == pytest.approx(6.0)
        assert len(analysis.windows) == 2
        first, second = analysis.windows
        assert first.dispatches == 1 and first.issue_ops == 1
        assert first.inflight_end == 1
        assert second.issue_ops == 1
        assert second.retires == 1 and second.inflight_end == 0

    def test_busy_fraction(self):
        events = [
            _event(0, "issue", kind="lanes", lanes=1),
            _event(0, "issue", kind="lanes", lanes=1),
            _event(3, "issue", kind="lanes", lanes=1),
        ]
        analysis = analyze_events(events, window=4)
        # Two distinct busy cycles out of four simulated.
        assert analysis.busy_cycles == 2
        assert analysis.busy_fraction == pytest.approx(0.5)

    def test_multi_run_concatenation(self):
        # The cycle counter restarting signals a new back-to-back run.
        events = [
            _event(0, "dispatch", seq=0, kind="vfma"),
            _event(9, "retire", seq=0),
            _event(0, "dispatch", seq=0, kind="vfma"),
            _event(4, "retire", seq=0),
        ]
        analysis = analyze_events(events, window=100)
        assert analysis.runs == 2
        assert analysis.cycles == 15  # 10 + 5 concatenated
        assert analysis.windows[0].dispatches == 2

    def test_bcache_rates(self):
        events = [
            _event(0, "bcache_hit", addr=64),
            _event(1, "bcache_hit", addr=64),
            _event(2, "bcache_miss", addr=128),
        ]
        analysis = analyze_events(events)
        assert analysis.bcache_hit_rate == pytest.approx(2 / 3)

    def test_empty_stream(self):
        analysis = analyze_events([])
        assert analysis.cycles == 0
        assert analysis.windows == []
        assert analysis.bcache_hit_rate is None
        assert analysis.mean_coalescing_width == 0.0

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            analyze_events([], window=0)

    def test_rotation_and_merge_distributions(self):
        events = [
            _event(
                0,
                "merge",
                scheme="rotate_vertical",
                entries=[
                    {"seq": 1, "lane": 0, "slot": 0, "rstate": "A"},
                    {"seq": 2, "lane": 1, "slot": 1, "rstate": "B"},
                ],
            )
        ]
        analysis = analyze_events(events)
        assert analysis.merge_widths == {2: 1}
        assert analysis.rotation_states == {"A": 1, "B": 1}
        assert analysis.schemes == {"rotate_vertical": 1}


class TestCrossCheckAgainstMetrics:
    """The offline analysis must agree with the online registry."""

    @pytest.fixture(scope="class")
    def run(self):
        result, sink, obs = _instrumented_run()
        return result, sink, obs.snapshot(), analyze_events(sink.events)

    def test_bcache_hit_rate_matches_counters(self, run):
        result, _, snapshot, analysis = run
        hits = snapshot["counters"]["bcache_hits"]
        misses = snapshot["counters"]["bcache_misses"]
        assert analysis.bcache_hits == hits
        assert analysis.bcache_misses == misses
        assert analysis.bcache_hit_rate == pytest.approx(hits / (hits + misses))
        # And with the SimResult's own rate.
        assert analysis.bcache_hit_rate == pytest.approx(result.b_cache_hit_rate)

    def test_mean_coalescing_width_matches_histogram(self, run):
        _, _, snapshot, analysis = run
        hist = snapshot["histograms"]["lanes_per_op"]
        assert analysis.issue_ops == hist["count"]
        assert analysis.mean_coalescing_width == pytest.approx(
            hist["total"] / hist["count"]
        )

    def test_lwd_and_skip_counters_match(self, run):
        _, _, snapshot, analysis = run
        counters = snapshot["counters"]
        assert analysis.event_counts.get("lwd_stall", 0) == counters.get(
            "lwd_stalls", 0
        )
        assert analysis.event_counts.get("bs_skip", 0) == counters.get("bs_skips", 0)

    def test_total_cycles_match(self, run):
        result, _, _, analysis = run
        assert analysis.cycles == result.cycles

    def test_bottleneck_signals_bounded(self, run):
        _, _, _, analysis = run
        bottleneck = analysis.bottleneck()
        assert bottleneck["verdict"]
        for value in bottleneck["signals"].values():
            assert 0.0 <= value <= 1.0


class TestMarkdownReport:
    def test_report_sections(self):
        _, sink, _ = _instrumented_run()
        report = render_markdown(analyze_events(sink.events), source="x.jsonl")
        assert report.startswith("# Trace report")
        for heading in (
            "## Summary",
            "## Bottleneck attribution",
            "## Coalescing width",
            "## Timeline",
        ):
            assert heading in report
        assert "B$ hit rate" in report
        assert "x.jsonl" in report

    def test_truncated_trace_note(self):
        events = [_event(0, "dispatch", seq=0, kind="vfma")]
        report = render_markdown(analyze_events(events))
        assert "truncated" in report


class TestTraceReportCli:
    def _write_trace(self, path):
        sink = JsonlTraceSink(path)
        obs = Instrumentation(metrics=MetricsRegistry(), sink=sink)
        trace = generate_gemm_trace(
            GemmKernelConfig(
                name="cli-test",
                tile=RegisterTile(2, 2, BroadcastPattern.EXPLICIT),
                k_steps=4,
                broadcast_sparsity=0.5,
                nonbroadcast_sparsity=0.5,
                seed=1,
            )
        )
        simulate(trace, SAVE_2VPU, keep_state=False, obs=obs)
        sink.close()

    def test_report_to_stdout(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(str(path))
        assert trace_report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Trace report" in out
        assert "Bottleneck" in out

    def test_report_to_file(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        out_file = tmp_path / "report.md"
        self._write_trace(str(trace))
        assert trace_report_main([str(trace), "--out", str(out_file)]) == 0
        assert "# Trace report" in out_file.read_text()

    def test_missing_file_is_clear_error(self, tmp_path, capsys):
        assert trace_report_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_garbage_file_is_clear_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"v": 2, "cycle": 0, "event": "retire", "kernel": "k", '
            '"mechanism": "save", "seq": 0}\n'
            "not json at all\n"
        )
        assert trace_report_main([str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "bad.jsonl:2" in err

    def test_analyze_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(str(path))
        analysis = analyze_file(str(path))
        assert analysis.cycles > 0
        assert analysis.kernels == ["cli-test"]

    def test_chrome_trace_export(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        chrome = tmp_path / "chrome.json"
        self._write_trace(str(trace))
        assert trace_report_main(
            [str(trace), "--out", str(tmp_path / "r.md"), "--chrome-trace", str(chrome)]
        ) == 0
        document = json.loads(chrome.read_text())
        assert document["traceEvents"]
