"""Tests for the metrics primitives and registry merge semantics."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
    hist_stats,
    log2_bucket,
    merge_ordered,
)


class TestLog2Bucket:
    def test_exact_below_threshold(self):
        assert [log2_bucket(v) for v in range(17)] == list(range(17))

    def test_power_of_two_above(self):
        assert log2_bucket(17) == 32
        assert log2_bucket(32) == 32
        assert log2_bucket(33) == 64
        assert log2_bucket(1000) == 1024

    def test_buckets_monotone(self):
        values = [log2_bucket(v) for v in range(500)]
        assert values == sorted(values)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_peak(self):
        g = Gauge()
        g.set_max(3)
        g.set_max(2)
        assert g.value == 3
        g.set(1)
        assert g.value == 1

    def test_histogram_stats(self):
        h = Histogram()
        for v in (1, 1, 2, 10):
            h.record(v)
        assert h.count == 4
        assert h.mean == pytest.approx(3.5)
        assert h.percentile(0.5) == 1
        assert h.min == 1 and h.max == 10

    def test_histogram_bucketed(self):
        h = Histogram(log2_bucket)
        h.record(100)
        assert h.bins == {128: 1}
        assert h.max == 100  # extrema stay exact

    def test_empty_histogram(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(0.5) is None

    def test_hist_stats_roundtrip(self):
        h = Histogram()
        for v in range(1, 101):
            h.record(v)
        stats = hist_stats(h.snapshot())
        assert stats["p50"] == 50
        assert stats["p95"] == 95
        assert stats["mean"] == pytest.approx(50.5)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_bool(self):
        reg = MetricsRegistry()
        assert not reg
        reg.counter("x")
        assert reg

    def test_snapshot_sorted_and_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc(2)
        reg.histogram("h").record(3)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        json.dumps(snap)  # must not raise

    def test_merge_counters_add_gauges_peak(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        a.gauge("peak").set_max(5)
        b.counter("n").inc(3)
        b.gauge("peak").set_max(4)
        merged = merge_ordered([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 5
        assert merged["gauges"]["peak"] == 5

    def test_merge_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h").record(1)
        a.histogram("h").record(9)
        b.histogram("h").record(1)
        merged = merge_ordered([a.snapshot(), b.snapshot()])
        h = merged["histograms"]["h"]
        assert h["bins"] == {1: 2, 9: 1}
        assert h["count"] == 3
        assert h["min"] == 1 and h["max"] == 9

    def test_merge_order_deterministic(self):
        # Same per-job snapshots folded in the same order give the same
        # bytes — the executor's parallel==serial contract.
        parts = []
        for seed in range(4):
            reg = MetricsRegistry()
            reg.histogram("h").record(seed)
            reg.counter("c").inc(seed)
            parts.append(reg.snapshot())
        once = json.dumps(merge_ordered(parts), sort_keys=True)
        again = json.dumps(merge_ordered(parts), sort_keys=True)
        assert once == again

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert not reg


class TestFormat:
    def test_format_sections(self):
        reg = MetricsRegistry()
        reg.counter("events").inc(7)
        reg.gauge("peak").set_max(3)
        reg.histogram("h").record(2)
        text = format_metrics(reg.snapshot())
        assert "counters:" in text
        assert "events" in text and "7" in text
        assert "gauges (peak):" in text
        assert "histograms:" in text

    def test_format_empty(self):
        assert "no metrics" in format_metrics(MetricsRegistry().snapshot())


class TestFormatDeterminism:
    """format_metrics output must not depend on insertion order."""

    def _fill(self, reg, order):
        for name in order:
            reg.counter(name).inc(len(name))
        for name in order:
            reg.gauge("g_" + name).set_max(len(name))
        for name in order:
            reg.histogram("h_" + name).record(len(name))

    def test_same_across_insertion_orders(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self._fill(a, ["zeta", "alpha", "mid"])
        self._fill(b, ["mid", "zeta", "alpha"])
        assert format_metrics(a.snapshot()) == format_metrics(b.snapshot())

    def test_same_across_repeated_runs(self):
        texts = set()
        for _ in range(3):
            reg = MetricsRegistry()
            self._fill(reg, ["b", "a", "c"])
            texts.add(format_metrics(reg.snapshot()))
        assert len(texts) == 1

    def test_merged_parallel_snapshots_format_identically(self):
        # Worker snapshots merged in either job-index order must format
        # the same — the executor sorts by job index before merging.
        def worker(names):
            reg = MetricsRegistry()
            self._fill(reg, names)
            return reg.snapshot()

        first = worker(["x", "y"])
        second = worker(["y", "z"])
        merged_a = MetricsRegistry()
        merged_a.merge_snapshot(merge_ordered([first, second]))
        merged_b = MetricsRegistry()
        merged_b.merge_snapshot(merge_ordered([first, second]))
        assert format_metrics(merged_a.snapshot()) == format_metrics(
            merged_b.snapshot()
        )
