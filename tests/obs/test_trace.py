"""Tests for trace sinks, the event schema, and instrumented runs."""

import pytest

from repro.core import SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.obs import (
    EVENT_FIELDS,
    Instrumentation,
    JsonlTraceSink,
    ListSink,
    MetricsRegistry,
    NULL_SINK,
    NullSink,
    read_jsonl,
    validate_event,
)


class TestSchema:
    def test_valid_event_passes(self):
        validate_event(
            {"cycle": 3, "event": "retire", "kernel": "k",
             "mechanism": "save", "seq": 7}
        )

    def test_missing_common_field(self):
        with pytest.raises(ValueError, match="kernel"):
            validate_event({"cycle": 3, "event": "retire", "seq": 7})

    def test_unknown_event_type(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_event(
                {"cycle": 0, "event": "teleport", "kernel": "k",
                 "mechanism": "save"}
            )

    def test_missing_required_field(self):
        with pytest.raises(ValueError, match="elm"):
            validate_event(
                {"cycle": 0, "event": "elm", "kernel": "k",
                 "mechanism": "save", "seq": 1}
            )

    def test_negative_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            validate_event(
                {"cycle": -1, "event": "retire", "kernel": "k",
                 "mechanism": "save", "seq": 0}
            )


class TestSinks:
    def test_null_sink_discards(self):
        NULL_SINK.emit({"anything": True})  # must not raise

    def test_list_sink_buffers_and_filters(self):
        sink = ListSink()
        sink.emit({"event": "retire", "seq": 1})
        sink.emit({"event": "elm", "seq": 2})
        assert len(sink.events) == 2
        assert [e["seq"] for e in sink.of_type("elm")] == [2]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit({"cycle": 1, "event": "retire", "kernel": "k", "seq": 0})
        events = list(read_jsonl(str(path)))
        assert len(events) == 1
        assert events[0]["v"] == 2
        assert sink.events_written == 1


class TestInstrumentation:
    def test_defaults(self):
        obs = Instrumentation()
        assert isinstance(obs.sink, NullSink)
        assert not obs.tracing

    def test_emit_stamps_common_fields(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink, kernel="k1")
        obs.emit(5, "retire", seq=9)
        event = sink.events[0]
        assert event["cycle"] == 5
        assert event["event"] == "retire"
        assert event["kernel"] == "k1"
        assert event["mechanism"] == "save"
        assert event["seq"] == 9

    def test_emit_stamps_mechanism(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink, kernel="k1", mechanism="sparce")
        obs.emit(0, "retire", seq=0)
        assert sink.events[0]["mechanism"] == "sparce"


def _simulate(obs=None, bs=0.3, nbs=0.6):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="obs-test",
            tile=RegisterTile(4, 4, BroadcastPattern.EMBEDDED),
            k_steps=6,
            precision=Precision.MIXED,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=3,
        )
    )
    return simulate(trace, SAVE_2VPU, keep_state=False, obs=obs)


class TestInstrumentedSimulation:
    @pytest.fixture(scope="class")
    def traced(self):
        sink = ListSink()
        obs = Instrumentation(metrics=MetricsRegistry(), sink=sink)
        result = _simulate(obs)
        return result, sink, obs

    def test_every_event_schema_valid(self, traced):
        _, sink, _ = traced
        for event in sink.events:
            validate_event(event)

    def test_save_specific_events_present(self, traced):
        _, sink, _ = traced
        kinds = {e["event"] for e in sink.events}
        assert {"dispatch", "elm", "issue", "merge", "retire"} <= kinds
        assert "bs_skip" in kinds
        assert "bcache_hit" in kinds or "bcache_miss" in kinds

    def test_only_known_event_types(self, traced):
        _, sink, _ = traced
        assert {e["event"] for e in sink.events} <= set(EVENT_FIELDS)

    def test_result_carries_metrics(self, traced):
        result, _, _ = traced
        assert result.metrics is not None
        assert result.metrics["counters"]["sim_runs"] == 1
        assert result.metrics["histograms"]["cw_occupancy"]["count"] > 0

    def test_instrumentation_does_not_change_timing(self, traced):
        result, _, _ = traced
        bare = _simulate()
        assert bare.cycles == result.cycles
        assert bare.metrics is None


class TestReadJsonlErrors:
    """read_jsonl must fail with one clear sentence, not a stack trace."""

    def _line(self, **extra):
        import json

        event = {
            "v": 2, "cycle": 0, "event": "retire", "kernel": "k",
            "mechanism": "save", "seq": 0,
        }
        event.update(extra)
        return json.dumps(event)

    def test_garbage_line_reports_position(self, tmp_path):
        from repro.obs import TraceFormatError

        path = tmp_path / "t.jsonl"
        path.write_text(self._line() + "\n{not json\n")
        with pytest.raises(TraceFormatError) as excinfo:
            list(read_jsonl(str(path)))
        assert excinfo.value.line_no == 2
        assert "not valid JSON" in excinfo.value.reason
        assert str(path) in str(excinfo.value)

    def test_truncated_last_line(self, tmp_path):
        from repro.obs import TraceFormatError

        # A killed writer leaves a final line without its newline.
        path = tmp_path / "t.jsonl"
        path.write_text(self._line() + "\n" + self._line()[: 20])
        with pytest.raises(TraceFormatError, match="truncated"):
            list(read_jsonl(str(path)))

    def test_schema_version_mismatch(self, tmp_path):
        from repro.obs import TraceFormatError

        path = tmp_path / "t.jsonl"
        path.write_text(self._line(v=999) + "\n")
        with pytest.raises(TraceFormatError, match="schema version"):
            list(read_jsonl(str(path)))

    def test_non_object_line(self, tmp_path):
        from repro.obs import TraceFormatError

        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="JSON object"):
            list(read_jsonl(str(path)))

    def test_error_is_a_value_error(self, tmp_path):
        # Callers that predate TraceFormatError catch ValueError.
        path = tmp_path / "t.jsonl"
        path.write_text("nope\n")
        with pytest.raises(ValueError):
            list(read_jsonl(str(path)))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._line() + "\n\n" + self._line() + "\n")
        assert len(list(read_jsonl(str(path)))) == 2


class TestJsonlSinkLifecycle:
    def test_context_manager_closes_on_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlTraceSink(path) as sink:
                sink.emit({"cycle": 0, "event": "retire", "kernel": "k", "seq": 0})
                raise RuntimeError("boom")
        assert sink._file.closed
        # The event written before the failure is intact and readable.
        assert len(list(read_jsonl(str(path)))) == 1

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()
