"""Tests for trace sinks, the event schema, and instrumented runs."""

import pytest

from repro.core import SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.obs import (
    EVENT_FIELDS,
    Instrumentation,
    JsonlTraceSink,
    ListSink,
    MetricsRegistry,
    NULL_SINK,
    NullSink,
    read_jsonl,
    validate_event,
)


class TestSchema:
    def test_valid_event_passes(self):
        validate_event({"cycle": 3, "event": "retire", "kernel": "k", "seq": 7})

    def test_missing_common_field(self):
        with pytest.raises(ValueError, match="kernel"):
            validate_event({"cycle": 3, "event": "retire", "seq": 7})

    def test_unknown_event_type(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_event({"cycle": 0, "event": "teleport", "kernel": "k"})

    def test_missing_required_field(self):
        with pytest.raises(ValueError, match="elm"):
            validate_event({"cycle": 0, "event": "elm", "kernel": "k", "seq": 1})

    def test_negative_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            validate_event({"cycle": -1, "event": "retire", "kernel": "k", "seq": 0})


class TestSinks:
    def test_null_sink_discards(self):
        NULL_SINK.emit({"anything": True})  # must not raise

    def test_list_sink_buffers_and_filters(self):
        sink = ListSink()
        sink.emit({"event": "retire", "seq": 1})
        sink.emit({"event": "elm", "seq": 2})
        assert len(sink.events) == 2
        assert [e["seq"] for e in sink.of_type("elm")] == [2]

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.emit({"cycle": 1, "event": "retire", "kernel": "k", "seq": 0})
        events = list(read_jsonl(str(path)))
        assert len(events) == 1
        assert events[0]["v"] == 1
        assert sink.events_written == 1


class TestInstrumentation:
    def test_defaults(self):
        obs = Instrumentation()
        assert isinstance(obs.sink, NullSink)
        assert not obs.tracing

    def test_emit_stamps_common_fields(self):
        sink = ListSink()
        obs = Instrumentation(sink=sink, kernel="k1")
        obs.emit(5, "retire", seq=9)
        event = sink.events[0]
        assert event["cycle"] == 5
        assert event["event"] == "retire"
        assert event["kernel"] == "k1"
        assert event["seq"] == 9


def _simulate(obs=None, bs=0.3, nbs=0.6):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="obs-test",
            tile=RegisterTile(4, 4, BroadcastPattern.EMBEDDED),
            k_steps=6,
            precision=Precision.MIXED,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=3,
        )
    )
    return simulate(trace, SAVE_2VPU, keep_state=False, obs=obs)


class TestInstrumentedSimulation:
    @pytest.fixture(scope="class")
    def traced(self):
        sink = ListSink()
        obs = Instrumentation(metrics=MetricsRegistry(), sink=sink)
        result = _simulate(obs)
        return result, sink, obs

    def test_every_event_schema_valid(self, traced):
        _, sink, _ = traced
        for event in sink.events:
            validate_event(event)

    def test_save_specific_events_present(self, traced):
        _, sink, _ = traced
        kinds = {e["event"] for e in sink.events}
        assert {"dispatch", "elm", "issue", "merge", "retire"} <= kinds
        assert "bs_skip" in kinds
        assert "bcache_hit" in kinds or "bcache_miss" in kinds

    def test_only_known_event_types(self, traced):
        _, sink, _ = traced
        assert {e["event"] for e in sink.events} <= set(EVENT_FIELDS)

    def test_result_carries_metrics(self, traced):
        result, _, _ = traced
        assert result.metrics is not None
        assert result.metrics["counters"]["sim_runs"] == 1
        assert result.metrics["histograms"]["cw_occupancy"]["count"] > 0

    def test_instrumentation_does_not_change_timing(self, traced):
        result, _, _ = traced
        bare = _simulate()
        assert bare.cycles == result.cycles
        assert bare.metrics is None
