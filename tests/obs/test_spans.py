"""Tests for the host wall-clock span recorder."""

import pytest

from repro.obs import SpanRecorder, maybe_span, phase_table


class TestSpanRecorder:
    def test_records_nested_spans(self):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner", detail=1):
                pass
            with rec.span("inner"):
                pass
        assert [r.name for r in rec.records] == ["outer", "inner", "inner"]
        outer, first, second = rec.records
        assert outer.depth == 0 and outer.parent == -1
        assert first.depth == 1 and first.parent == 0
        assert second.parent == 0
        assert first.attrs == {"detail": 1}

    def test_span_times_are_ordered(self):
        rec = SpanRecorder()
        with rec.span("a"):
            with rec.span("b"):
                pass
        a, b = rec.records
        assert a.start <= b.start
        assert b.end <= a.end
        assert a.duration >= 0 and b.duration >= 0

    def test_span_closes_on_exception(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("will-fail"):
                raise RuntimeError("boom")
        record = rec.records[0]
        assert record.end >= record.start
        # The stack unwound: a new span is top-level again.
        with rec.span("after"):
            pass
        assert rec.records[1].parent == -1

    def test_summary_attributes_self_time(self):
        rec = SpanRecorder()
        with rec.span("parent"):
            with rec.span("child"):
                pass
        summary = rec.summary()
        assert set(summary) == {"parent", "child"}
        parent = summary["parent"]
        assert parent["count"] == 1
        assert parent["self_s"] <= parent["total_s"]
        assert summary["child"]["total_s"] <= parent["total_s"]

    def test_total_time_counts_top_level_only(self):
        rec = SpanRecorder()
        with rec.span("top"):
            with rec.span("nested"):
                pass
        assert rec.total_time() == pytest.approx(rec.records[0].duration)

    def test_children(self):
        rec = SpanRecorder()
        with rec.span("p"):
            with rec.span("c1"):
                pass
            with rec.span("c2"):
                pass
        assert [r.name for r in rec.children(0)] == ["c1", "c2"]


class TestMaybeSpan:
    def test_none_recorder_is_noop(self):
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_real_recorder_records(self):
        rec = SpanRecorder()
        with maybe_span(rec, "phase", jobs=3):
            pass
        assert rec.records[0].name == "phase"
        assert rec.records[0].attrs == {"jobs": 3}


class TestPhaseTable:
    def test_empty(self):
        assert "no spans" in phase_table(SpanRecorder())

    def test_table_lists_phases(self):
        rec = SpanRecorder()
        with rec.span("simulate"):
            with rec.span("merge"):
                pass
        text = phase_table(rec)
        assert "== phases ==" in text
        assert "simulate" in text and "merge" in text
        assert "total_s" in text
