"""Offline request-log analytics: rates, episodes, attribution, CLI."""

import json

import pytest

from repro.obs.servereport import (
    BACKPRESSURE_GAP_S,
    REPORT_LATENCY_PHASES,
    REQLOG_CONSUMED_EVENTS,
    analyze_request_events,
    analyze_request_log,
    render_serve_markdown,
    serve_report_main,
)
from repro.obs.telemetry import (
    LATENCY_PHASES,
    REQLOG_SCHEMA_VERSION,
    REQUEST_EVENT_FIELDS,
    RequestLog,
)


def ev(kind, ts=1.0, **fields):
    return {"v": REQLOG_SCHEMA_VERSION, "ts": ts, "event": kind, **fields}


def ingress(outcome="accepted", ts=1.0, trace="t1"):
    return ev("ingress", ts=ts, trace_id=trace, key="k", outcome=outcome)


def phase(name, wall, trace="t1", ts=2.0):
    return ev("phase", ts=ts, trace_id=trace, phase=name, wall_s=wall)


def complete(status="done", wall=1.0, trace="t1", ts=3.0):
    return ev("complete", ts=ts, trace_id=trace, key="k", status=status,
              wall_s=wall)


def sim(trace_ids=("t1",), wall=0.1, engine="fast", ts=2.5):
    return ev("sim", ts=ts, trace_ids=list(trace_ids), point=[0.1, 0.2],
              wall_s=wall, engine=engine)


class TestContractTables:
    def test_consumer_tables_mirror_the_schema_exactly(self):
        # Belt and braces next to the static schema-drift rule: the
        # runtime values must agree, not just the parsed literals.
        assert REQLOG_CONSUMED_EVENTS == REQUEST_EVENT_FIELDS
        assert REPORT_LATENCY_PHASES == LATENCY_PHASES


class TestAnalysisRates:
    def test_outcome_counts_and_dedup_rate(self):
        analysis = analyze_request_events([
            ingress("accepted"), ingress("accepted"),
            ingress("dedup"), ingress("cached"),
            ingress("rejected"),
        ])
        assert analysis.submits == 5
        assert analysis.simulated_free == 2
        assert analysis.dedup_rate == pytest.approx(0.4)
        assert analysis.rejected == 1

    def test_empty_stream_has_no_rates(self):
        analysis = analyze_request_events([])
        assert analysis.submits == 0
        assert analysis.dedup_rate is None
        assert analysis.attributed_fraction is None
        assert analysis.mean_span_width is None

    def test_coalescing_widths(self):
        analysis = analyze_request_events([
            sim(("a",)), sim(("a", "b")), sim(("a", "b", "c")),
        ])
        assert analysis.sim_points == 3
        assert analysis.coalesced_points == 2
        assert analysis.mean_span_width == pytest.approx(2.0)
        assert analysis.sim_wall_s == pytest.approx(0.3)
        assert analysis.sim_engines == {"fast": 3}

    def test_e2e_comes_from_complete_events(self):
        analysis = analyze_request_events([
            complete("done", wall=0.2), complete("failed", wall=0.4),
        ])
        assert analysis.phase_samples["e2e"] == [0.2, 0.4]
        assert analysis.complete_statuses == {"done": 1, "failed": 1}


class TestAttribution:
    def test_fully_attributed_stream(self):
        events = [
            phase("queue_wait", 0.2), phase("batch_form", 0.1),
            phase("simulate", 0.5), phase("store_write", 0.2),
            complete(wall=1.0),
        ]
        analysis = analyze_request_events(events)
        assert analysis.attributed_fraction == pytest.approx(1.0)

    def test_partial_attribution_reports_the_gap(self):
        analysis = analyze_request_events([
            phase("simulate", 0.5), complete(wall=1.0),
        ])
        assert analysis.attributed_fraction == pytest.approx(0.5)

    def test_bottleneck_verdict_names_the_top_phase(self):
        analysis = analyze_request_events([
            phase("queue_wait", 5.0), phase("simulate", 1.0),
        ])
        verdict = analysis.bottleneck()
        assert "queue wait dominates" in verdict["verdict"]
        assert verdict["shares"]["queue_wait"] == pytest.approx(5.0 / 6.0)

    @pytest.mark.parametrize("top,needle", [
        ("batch_form", "batch formation dominates"),
        ("simulate", "simulation dominates"),
        ("store_write", "store writes dominate"),
    ])
    def test_every_phase_has_a_verdict(self, top, needle):
        analysis = analyze_request_events([phase(top, 1.0)])
        assert needle in analysis.bottleneck()["verdict"]

    def test_no_spans_no_verdict(self):
        assert analyze_request_events([]).bottleneck()["shares"] == {}

    def test_unknown_phase_is_noted_not_fatal(self):
        analysis = analyze_request_events([phase("warp_drive", 1.0)])
        assert any("warp_drive" in note for note in analysis.notes)


class TestBackpressureEpisodes:
    def test_close_rejections_group_into_one_episode(self):
        analysis = analyze_request_events([
            ingress("rejected", ts=10.0),
            ingress("rejected", ts=10.5),
            ingress("rejected", ts=10.9),
        ])
        (episode,) = analysis.backpressure_episodes
        assert episode.rejections == 3
        assert episode.duration_s == pytest.approx(0.9)

    def test_gap_splits_episodes(self):
        analysis = analyze_request_events([
            ingress("rejected", ts=10.0),
            ingress("rejected", ts=10.0 + BACKPRESSURE_GAP_S + 0.01),
        ])
        assert len(analysis.backpressure_episodes) == 2

    def test_out_of_order_timestamps_are_sorted_first(self):
        analysis = analyze_request_events([
            ingress("rejected", ts=11.0), ingress("rejected", ts=10.5),
        ])
        (episode,) = analysis.backpressure_episodes
        assert episode.start_ts == 10.5


class TestRingSnapshots:
    def test_peaks_tracked(self):
        analysis = analyze_request_events([
            ev("snapshot", queue_depth=3, active=1, oldest_age_s=0.5,
               counters={}),
            ev("snapshot", queue_depth=7, active=2, oldest_age_s=0.1,
               counters={}),
        ])
        assert analysis.snapshots == 2
        assert analysis.peak_queue_depth == 7
        assert analysis.peak_oldest_age_s == pytest.approx(0.5)


class TestRendering:
    def events(self):
        return [
            ingress("accepted"), ingress("cached"),
            phase("queue_wait", 0.01), phase("simulate", 0.2),
            sim(("t1",)), complete(wall=0.25),
            ev("access", trace_id="t1", method="POST", path="/v1/submit",
               status=202, wall_s=0.002),
            ev("snapshot", queue_depth=1, active=1, oldest_age_s=0.2,
               counters={}),
        ]

    def test_all_sections_render(self):
        text = render_serve_markdown(
            analyze_request_events(self.events()), source="req.jsonl"
        )
        for heading in (
            "# Serve report", "## Summary", "## Latency percentiles (ms)",
            "## Bottleneck attribution", "## Submit outcomes",
            "## Terminal statuses", "## Engine tiers", "## HTTP access",
            "## Backpressure episodes", "## Sampler ring",
        ):
            assert heading in text
        assert "`req.jsonl`" in text

    def test_every_report_phase_appears_in_the_table(self):
        text = render_serve_markdown(analyze_request_events(self.events()))
        for name in REPORT_LATENCY_PHASES:
            assert f"| {name} |" in text

    def test_quiet_log_renders_the_empty_states(self):
        text = render_serve_markdown(analyze_request_events([]))
        assert "none — no submit was rejected." in text
        assert "## Sampler ring" not in text


class TestCli:
    def write_log(self, tmp_path):
        path = tmp_path / "req.jsonl"
        with RequestLog(path) as log:
            log.log_event("ingress", trace_id="t1", key="k",
                          outcome="accepted")
            log.log_event("complete", trace_id="t1", key="k", status="done",
                          wall_s=0.5)
        return path

    def test_report_to_stdout(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        assert serve_report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Serve report" in out and "| e2e | 1 |" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = self.write_log(tmp_path)
        out_path = tmp_path / "report.md"
        assert serve_report_main([str(path), "--out", str(out_path)]) == 0
        assert "# Serve report" in out_path.read_text()
        assert str(out_path) in capsys.readouterr().out

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert serve_report_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_event_is_exit_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(
            {"v": REQLOG_SCHEMA_VERSION, "ts": 1.0, "event": "bogus"}
        ) + "\n")
        assert serve_report_main([str(path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_rotated_ring_segment_is_included(self, tmp_path):
        path = tmp_path / "ring.jsonl"
        with RequestLog(path, ring_limit=2) as ring:
            for i in range(3):
                ring.log_event("snapshot", queue_depth=i, active=0,
                               oldest_age_s=0.0, counters={})
        analysis = analyze_request_log(str(path))
        assert analysis.snapshots == 3
