"""Integration tests of the hierarchy's policies working together."""

import pytest

from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


class TestSrripAtL3:
    def test_l3_uses_srrip(self):
        h = MemoryHierarchy()
        assert h.l3._policy_name == "srrip"
        assert h.l1._policy_name == "lru"

    def test_srrip_scan_resistance_vs_lru(self):
        """A hot set survives a streaming scan under SRRIP but not LRU."""
        srrip = SetAssociativeCache("s", 4 * 64, 4, "srrip")
        lru = SetAssociativeCache("l", 4 * 64, 4, "lru")
        hot = 0x0
        for cache in (srrip, lru):
            cache.access(hot)
            cache.access(hot)  # promote
            # Stream 6 never-reused lines through the single set.
            for i in range(1, 7):
                cache.access(i * 64 * 1)  # same set (1 set)
        assert srrip.lookup(hot)
        assert not lru.lookup(hot)


class TestNucaLatency:
    def test_l3_latency_includes_noc(self):
        near = MemoryHierarchy(core_id=10)  # centre tile
        far = MemoryHierarchy(core_id=0)  # corner tile
        assert far._l3_latency_cycles() >= near._l3_latency_cycles()

    def test_dram_latency_exceeds_l3(self):
        h = MemoryHierarchy()
        assert h._dram_latency_cycles() > h._l3_latency_cycles()


class TestInclusiveInterplay:
    def test_l2_eviction_invalidates_l1_not_l3(self):
        config = HierarchyConfig(
            l1_size=1024, l1_ways=2,
            l2_size=2048, l2_ways=2,
            l3_slice_size=64 * 1024, l3_ways=8, cores=1,
        )
        h = MemoryHierarchy(config)
        h.access(0x0)
        # Fill L2's set until 0x0 evicts from L2 (32 sets L1 / 16 sets L2).
        set_stride = h.l2.num_sets * 64
        for i in range(1, 4):
            h.access(i * set_stride)
        assert not h.l2.lookup(0x0)
        assert not h.l1.lookup(0x0)  # back-invalidated
        assert h.l3.lookup(0x0)  # L3 unaffected

    def test_reaccess_after_back_invalidation_misses_l1(self):
        config = HierarchyConfig(
            l1_size=1024, l1_ways=2,
            l2_size=2048, l2_ways=2,
            l3_slice_size=64 * 1024, l3_ways=8, cores=1,
        )
        h = MemoryHierarchy(config)
        h.access(0x0)
        set_stride = h.l2.num_sets * 64
        for i in range(1, 4):
            h.access(i * set_stride)
        latency = h.access(0x0)
        assert latency > config.l1_latency


class TestFrequencyDomains:
    @pytest.mark.parametrize("freq", [1.0, 1.7, 2.1, 3.0])
    def test_l3_cycles_scale_linearly(self, freq):
        h = MemoryHierarchy(freq_ghz=freq)
        base = MemoryHierarchy(freq_ghz=1.0)
        assert h._l3_latency_cycles() == pytest.approx(
            base._l3_latency_cycles() * freq, abs=1.0
        )

    def test_warm_then_access_traffic_only_at_l1(self):
        h = MemoryHierarchy()
        h.warm([0x0], level="l1")
        h.access(0x0)
        assert h.traffic.l2_to_l1 == 0
        assert h.traffic.l1_to_core == 64
