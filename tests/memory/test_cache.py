"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache


def small_cache(ways=2, sets=4, policy="lru"):
    return SetAssociativeCache("test", ways * sets * 64, ways, policy)


class TestGeometry:
    def test_set_count(self):
        cache = SetAssociativeCache("L1", 32 * 1024, 8)
        assert cache.num_sets == 64

    def test_rejects_nondivisible_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", 1000, 3)


class TestAccessBehaviour:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x40).hit
        assert cache.access(0x40).hit

    def test_same_line_different_bytes_hit(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.access(0x7F).hit
        assert not cache.access(0x80).hit

    def test_eviction_reports_victim(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0x0)
        result = cache.access(0x40)
        assert result.evicted_line == 0x0

    def test_eviction_callback_fires(self):
        cache = small_cache(ways=1, sets=1)
        evicted = []
        cache.on_evict = evicted.append
        cache.access(0x0)
        cache.access(0x40)
        assert evicted == [0x0]

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0x0)
        cache.access(0x40)
        cache.access(0x0)  # touch 0x0, 0x40 becomes LRU
        result = cache.access(0x80)
        assert result.evicted_line == 0x40

    def test_stats_accumulate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(64 * 4)  # different set
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_lookup_does_not_mutate(self):
        cache = small_cache()
        assert not cache.lookup(0x40)
        assert cache.stats.accesses == 0
        cache.access(0x40)
        assert cache.lookup(0x40)

    def test_invalidate(self):
        cache = small_cache()
        cache.access(0x40)
        assert cache.invalidate(0x40)
        assert not cache.lookup(0x40)
        assert not cache.invalidate(0x40)

    def test_resident_lines(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x100)
        assert cache.resident_lines() == {0x0, 0x100}

    def test_reset_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0

    def test_clone_empty(self):
        cache = small_cache()
        cache.access(0)
        clone = cache.clone_empty()
        assert not clone.resident_lines()
        assert clone.num_sets == cache.num_sets


class TestCapacityProperties:
    def test_working_set_within_capacity_all_hits(self):
        cache = SetAssociativeCache("L1", 32 * 1024, 8)
        lines = [i * 64 for i in range(512)]  # exactly 32 KB
        for addr in lines:
            cache.access(addr)
        cache.reset_stats()
        for addr in lines:
            cache.access(addr)
        assert cache.stats.hit_rate == 1.0

    def test_streaming_working_set_misses(self):
        cache = SetAssociativeCache("L1", 4 * 1024, 4)
        for rep in range(3):
            for i in range(256):  # 16 KB stream, 4x capacity
                cache.access(i * 64)
        # Pure streaming with LRU: every access past the first pass
        # still misses.
        assert cache.stats.hit_rate == 0.0

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    @settings(max_examples=20)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = small_cache(ways=2, sets=4)
        for addr in addrs:
            cache.access(addr)
        assert len(cache.resident_lines()) <= 8

    @given(st.lists(st.integers(0, 2**14), min_size=1, max_size=300))
    @settings(max_examples=20)
    def test_hit_iff_resident(self, addrs):
        cache = small_cache(ways=2, sets=4)
        for addr in addrs:
            resident = (addr // 64) * 64 in cache.resident_lines()
            assert cache.access(addr).hit == resident
