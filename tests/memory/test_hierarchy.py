"""Tests for the inclusive L1/L2/L3 + DRAM hierarchy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.broadcast_cache import BroadcastCache, BroadcastCacheKind
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


def tiny_hierarchy(**kwargs):
    """A small hierarchy so eviction paths are exercised quickly."""
    config = HierarchyConfig(
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        l3_slice_size=8192,
        l3_ways=4,
        cores=1,
    )
    return MemoryHierarchy(config, **kwargs)


class TestLatencies:
    def test_cold_access_pays_dram(self):
        h = MemoryHierarchy()
        latency = h.access(0x1000)
        assert latency >= h.dram.latency_cycles(1.7)

    def test_l1_hit_after_fill(self):
        h = MemoryHierarchy()
        h.access(0x1000)
        assert h.access(0x1000) == h.config.l1_latency

    def test_latency_ordering(self):
        h = MemoryHierarchy()
        cfg = h.config
        assert cfg.l1_latency < cfg.l2_latency < h._l3_latency_cycles() < h._dram_latency_cycles()

    def test_l3_latency_scales_with_frequency(self):
        slow = MemoryHierarchy(freq_ghz=1.7)
        fast = MemoryHierarchy(freq_ghz=2.1)
        # ns-domain latencies cost more cycles at higher core frequency.
        assert fast._l3_latency_cycles() > slow._l3_latency_cycles()

    def test_l1_latency_constant_in_cycles(self):
        slow = MemoryHierarchy(freq_ghz=1.7)
        fast = MemoryHierarchy(freq_ghz=2.1)
        assert slow.config.l1_latency == fast.config.l1_latency


class TestInclusivity:
    def test_invariant_holds_under_random_stream(self):
        h = tiny_hierarchy()
        import random

        rng = random.Random(0)
        for _ in range(2000):
            h.access(rng.randrange(0, 1 << 16) & ~3)
            assert h.check_inclusive()

    def test_l3_eviction_back_invalidates(self):
        h = tiny_hierarchy()
        h.access(0x0)
        assert h.l1.lookup(0x0)
        # Stream enough lines to evict 0x0 from L3.
        for i in range(1, 4096):
            h.access(i * 64)
        assert not h.l3.lookup(0x0)
        assert not h.l1.lookup(0x0)
        assert not h.l2.lookup(0x0)

    def test_b_cache_invalidated_with_l1(self):
        bcache = BroadcastCache(BroadcastCacheKind.DATA, lambda addr: 1.0)
        h = tiny_hierarchy(broadcast_cache=bcache)
        bcache.access(0x0)
        h.access(0x0)
        for i in range(1, 4096):
            h.access(i * 64)
        # Hierarchy evictions propagated into the B$.
        assert bcache.stats.invalidations >= 1


class TestTrafficAccounting:
    def test_l1_hit_generates_no_downstream_traffic(self):
        h = MemoryHierarchy()
        h.access(0x0)
        h.reset_stats()
        h.access(0x0)
        assert h.traffic.l2_to_l1 == 0
        assert h.traffic.dram_to_l3 == 0
        assert h.traffic.l1_to_core == 64

    def test_cold_miss_traffic_at_every_level(self):
        h = MemoryHierarchy()
        h.access(0x0)
        assert h.traffic.l2_to_l1 == 64
        assert h.traffic.l3_to_l2 == 64
        assert h.traffic.dram_to_l3 == 64

    def test_store_traffic_tracked(self):
        h = MemoryHierarchy()
        h.access(0x0, is_write=True)
        assert h.traffic.stores == 64


class TestWarm:
    def test_warm_l3_hits_at_l3(self):
        h = MemoryHierarchy()
        h.warm([0x0], level="l3")
        latency = h.access(0x0)
        assert latency == h._l3_latency_cycles()

    def test_warm_l1(self):
        h = MemoryHierarchy()
        h.warm([0x0], level="l1")
        assert h.access(0x0) == h.config.l1_latency
        assert h.check_inclusive()

    def test_warm_resets_stats(self):
        h = MemoryHierarchy()
        h.warm([0x0, 0x40], level="l3")
        assert h.l3.stats.accesses == 0

    def test_warm_unknown_level(self):
        with pytest.raises(ValueError):
            MemoryHierarchy().warm([0], level="l4")


class TestL3Sharing:
    def test_capacity_shrinks_with_sharers(self):
        cfg = HierarchyConfig()
        assert cfg.l3_capacity(1) == cfg.l3_slice_size * 28
        assert cfg.l3_capacity(28) == cfg.l3_slice_size

    def test_capacity_never_below_slice(self):
        cfg = HierarchyConfig()
        assert cfg.l3_capacity(1000) == cfg.l3_slice_size

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HierarchyConfig().l3_capacity(0)
