"""Tests for the mesh NoC and DRAM models."""

import pytest

from repro.memory.dram import DramModel
from repro.memory.noc import MeshNoc


class TestMeshNoc:
    def test_default_covers_28_cores(self):
        assert MeshNoc().num_tiles == 28

    def test_coordinates_row_major(self):
        noc = MeshNoc(width=7, height=4)
        assert noc.coordinates(0) == (0, 0)
        assert noc.coordinates(6) == (6, 0)
        assert noc.coordinates(7) == (0, 1)
        assert noc.coordinates(27) == (6, 3)

    def test_coordinates_out_of_range(self):
        with pytest.raises(ValueError):
            MeshNoc().coordinates(28)

    def test_hops_manhattan(self):
        noc = MeshNoc()
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 27) == 6 + 3

    def test_hops_symmetric(self):
        noc = MeshNoc()
        for src, dst in [(0, 13), (5, 22), (27, 1)]:
            assert noc.hops(src, dst) == noc.hops(dst, src)

    def test_latency_two_cycles_per_hop(self):
        noc = MeshNoc()
        assert noc.latency(0, 1) == 2
        assert noc.round_trip_latency(0, 1) == 4

    def test_home_slice_in_range(self):
        noc = MeshNoc()
        for line in range(0, 64 * 1000, 64):
            assert 0 <= noc.home_slice(line) < 28

    def test_home_slice_spreads(self):
        noc = MeshNoc()
        homes = {noc.home_slice(i * 64) for i in range(1000)}
        assert len(homes) == 28

    def test_average_round_trip_positive(self):
        noc = MeshNoc()
        corner = noc.average_round_trip(0)
        # Centre tiles are closer to everyone than corner tiles.
        centre = noc.average_round_trip(10)
        assert centre < corner


class TestDram:
    def test_latency_cycles_scale_with_frequency(self):
        dram = DramModel()
        assert dram.latency_cycles(1.7) == 85
        assert dram.latency_cycles(2.1) == 105

    def test_latency_rejects_bad_freq(self):
        with pytest.raises(ValueError):
            DramModel().latency_cycles(0)

    def test_per_core_bandwidth_fair_share(self):
        dram = DramModel()
        assert dram.per_core_bandwidth(28) == pytest.approx(119.2 / 28)

    def test_effective_latency_unloaded(self):
        dram = DramModel()
        assert dram.effective_latency_ns(0.0) == pytest.approx(50.0)

    def test_effective_latency_grows_with_load(self):
        dram = DramModel()
        low = dram.effective_latency_ns(10.0)
        high = dram.effective_latency_ns(100.0)
        assert high > low > 50.0 - 1e-9

    def test_effective_latency_capped(self):
        dram = DramModel()
        assert dram.effective_latency_ns(1e9) <= 500.0 + 1e-9

    def test_streaming_time(self):
        dram = DramModel()
        # 119.2 bytes at full BW from one core = 1 ns.
        assert dram.streaming_time_ns(119.2, active_cores=1) == pytest.approx(1.0)
        assert dram.streaming_time_ns(119.2, active_cores=2) == pytest.approx(2.0)
