"""Tests for the broadcast cache (B$) — Sec. IV-A."""

import pytest

from repro.memory.broadcast_cache import (
    BroadcastCache,
    BroadcastCacheKind,
    BroadcastResult,
)


class FakeMemory:
    """Address → value mapping for zero-ness evaluation."""

    def __init__(self, zeros=()):
        self.zeros = set(zeros)

    def __call__(self, addr):
        return 0.0 if addr in self.zeros else 1.0


def make_b(kind, zeros=(), entries=32):
    return BroadcastCache(kind, FakeMemory(zeros), entries=entries)


class TestDataDesign:
    def test_miss_then_hit_same_line(self):
        b = make_b(BroadcastCacheKind.DATA)
        first = b.access(0x100)
        assert not first.hit and first.l1_access
        # Adjacent element in the same line hits and skips L1.
        second = b.access(0x104)
        assert second.hit and not second.l1_access

    def test_hit_serves_nonzero_without_l1(self):
        b = make_b(BroadcastCacheKind.DATA)
        b.access(0x100)
        result = b.access(0x108)
        assert result.hit and not result.l1_access and not result.value_is_zero

    def test_hit_serves_zero_without_l1(self):
        b = make_b(BroadcastCacheKind.DATA, zeros={0x108})
        b.access(0x100)
        result = b.access(0x108)
        assert result.hit and not result.l1_access and result.value_is_zero

    def test_direct_mapped_conflict(self):
        b = make_b(BroadcastCacheKind.DATA, entries=32)
        b.access(0x0)
        b.access(32 * 64)  # same slot, different line: evicts
        assert not b.access(0x0).hit

    def test_l1_reads_saved_counter(self):
        b = make_b(BroadcastCacheKind.DATA)
        b.access(0x0)
        b.access(0x4)
        b.access(0x8)
        assert b.stats.l1_reads_saved == 2


class TestMaskDesign:
    def test_zero_hit_skips_l1(self):
        b = make_b(BroadcastCacheKind.MASK, zeros={0x104})
        b.access(0x100)
        result = b.access(0x104)
        assert result.hit and not result.l1_access and result.value_is_zero

    def test_nonzero_hit_still_reads_l1(self):
        # The key limitation of the mask design (Fig. 6f).
        b = make_b(BroadcastCacheKind.MASK)
        b.access(0x100)
        result = b.access(0x104)
        assert result.hit and result.l1_access and not result.value_is_zero

    def test_miss_reads_l1(self):
        b = make_b(BroadcastCacheKind.MASK)
        result = b.access(0x200)
        assert not result.hit and result.l1_access


class TestNoneDesign:
    def test_every_access_reads_l1(self):
        b = make_b(BroadcastCacheKind.NONE)
        for _ in range(3):
            result = b.access(0x100)
            assert not result.hit and result.l1_access

    def test_zeroness_still_reported(self):
        b = make_b(BroadcastCacheKind.NONE, zeros={0x100})
        assert b.access(0x100).value_is_zero


class TestCoherence:
    def test_invalidate_drops_line(self):
        b = make_b(BroadcastCacheKind.DATA)
        b.access(0x100)
        assert b.invalidate(0x100)
        assert not b.access(0x104).hit

    def test_invalidate_miss_returns_false(self):
        b = make_b(BroadcastCacheKind.DATA)
        assert not b.invalidate(0x100)

    def test_invalidate_unaligned_address(self):
        b = make_b(BroadcastCacheKind.DATA)
        b.access(0x100)
        assert b.invalidate(0x104)  # same line

    def test_flush(self):
        b = make_b(BroadcastCacheKind.DATA)
        b.access(0x0)
        b.flush()
        assert not b.access(0x4).hit


class TestStorageAccounting:
    def test_data_design_larger_than_mask(self):
        data = make_b(BroadcastCacheKind.DATA)
        mask = make_b(BroadcastCacheKind.MASK)
        assert data.storage_bits() > mask.storage_bits()

    def test_none_design_free(self):
        assert make_b(BroadcastCacheKind.NONE).storage_bits() == 0

    def test_hit_rate_high_for_gemm_like_stream(self):
        # GEMM broadcasts consecutive elements of a few lines: >90% hits
        # (the paper reports >90% for all tested kernels).
        b = make_b(BroadcastCacheKind.DATA)
        accesses = 0
        for line in range(8):
            for element in range(16):
                b.access(line * 64 + element * 4)
                accesses += 1
        assert b.stats.hit_rate > 0.9

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            BroadcastCache(BroadcastCacheKind.DATA, FakeMemory(), entries=0)
