"""Tests for address helpers and regions."""

import pytest

from repro.memory.address import (
    CACHE_LINE_BYTES,
    Region,
    line_address,
    line_index,
    make_regions,
)


class TestLineHelpers:
    def test_line_address_aligns_down(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(64) == 1
        assert line_index(6400) == 100


class TestRegion:
    def test_contains(self):
        region = Region("A", 0x1000, 256)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert not region.contains(0xFFF)

    def test_element_address(self):
        region = Region("A", 0x1000, 256)
        assert region.element_address(0, 4) == 0x1000
        assert region.element_address(10, 4) == 0x1028
        assert region.element_address(10, 2) == 0x1014

    def test_element_out_of_range(self):
        region = Region("A", 0x1000, 16)
        with pytest.raises(IndexError):
            region.element_address(4, 4)

    def test_rejects_unaligned_base(self):
        with pytest.raises(ValueError):
            Region("A", 0x1001, 64)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Region("A", 0x1000, 0)


class TestMakeRegions:
    def test_disjoint_and_ordered(self):
        regions = make_regions(("A", 1000), ("B", 2000), ("C", 512))
        a, b, c = regions["A"], regions["B"], regions["C"]
        assert a.end <= b.base <= c.base
        assert b.end <= c.base

    def test_line_aligned_bases(self):
        regions = make_regions(("A", 100), ("B", 100))
        for region in regions.values():
            assert region.base % CACHE_LINE_BYTES == 0

    def test_guard_gap_present(self):
        regions = make_regions(("A", 64), ("B", 64))
        assert regions["B"].base - regions["A"].end >= 4096
