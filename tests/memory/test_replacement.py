"""Tests for cache replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.replacement import LruPolicy, SrripPolicy, make_policy


class TestLru:
    def test_victim_prefers_empty_way(self):
        lru = LruPolicy(4)
        assert lru.victim([True, False, True, True]) == 1

    def test_victim_is_least_recent(self):
        lru = LruPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        # way 0 is now LRU.
        assert lru.victim([True] * 4) == 0

    def test_hit_promotes(self):
        lru = LruPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_hit(0)
        assert lru.victim([True] * 4) == 1

    def test_recency_order_is_permutation(self):
        lru = LruPolicy(8)
        order = lru.recency_order()
        assert sorted(order) == list(range(8))

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_stack_stays_permutation(self, accesses):
        lru = LruPolicy(8)
        for way in accesses:
            lru.on_hit(way) if way % 2 else lru.on_fill(way)
        assert sorted(lru.recency_order()) == list(range(8))

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            LruPolicy(0)


class TestSrrip:
    def test_fill_inserts_long_rereference(self):
        srrip = SrripPolicy(4)
        srrip.on_fill(0)
        assert srrip.rrpv_values()[0] == SrripPolicy.MAX_RRPV - 1

    def test_hit_promotes_to_zero(self):
        srrip = SrripPolicy(4)
        srrip.on_fill(0)
        srrip.on_hit(0)
        assert srrip.rrpv_values()[0] == 0

    def test_victim_prefers_empty(self):
        srrip = SrripPolicy(4)
        assert srrip.victim([True, True, False, True]) == 2

    def test_victim_is_max_rrpv(self):
        srrip = SrripPolicy(2)
        srrip.on_fill(0)
        srrip.on_hit(0)  # rrpv 0
        srrip.on_fill(1)  # rrpv 2
        assert srrip.victim([True, True]) == 1

    def test_aging_when_no_max(self):
        srrip = SrripPolicy(2)
        srrip.on_fill(0)
        srrip.on_hit(0)
        srrip.on_fill(1)
        srrip.on_hit(1)
        # Both at rrpv 0: aging must still terminate with a victim.
        victim = srrip.victim([True, True])
        assert victim in (0, 1)

    def test_scan_resistance(self):
        # SRRIP's point: a burst of never-reused fills does not displace
        # a frequently-hit line.
        srrip = SrripPolicy(4)
        srrip.on_fill(0)
        srrip.on_hit(0)
        for way in (1, 2, 3):
            srrip.on_fill(way)
        assert srrip.victim([True] * 4) != 0


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru", 4), LruPolicy)
        assert isinstance(make_policy("SRRIP", 4), SrripPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4)
