"""TraceArrays: RNG replay, µop accounting and the counter contract."""

import numpy as np
import pytest

from repro.core.config import BASELINE_2VPU, SAVE_2VPU
from repro.core.pipeline import simulate
from repro.fastsim import TraceArrays, simulate_config
from repro.kernels.gemm import generate_gemm_trace
from repro.kernels.library import get_kernel
from repro.kernels.trace import count_uops

K_STEPS = 4


def _config(name, bs=0.5, nbs=0.5, **overrides):
    return get_kernel(name).config(
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        k_steps=overrides.pop("k_steps", K_STEPS),
        seed=overrides.pop("seed", 0),
        **overrides,
    )


KERNELS = ("resnet2_2_fwd", "resnet3_2_bwd_input", "resnet3_2_bwd_weights")


class TestConstruction:
    @pytest.mark.parametrize("name", KERNELS)
    def test_from_config_matches_from_trace(self, name):
        config = _config(name)
        from_config = TraceArrays.from_config(config)
        from_trace = TraceArrays.from_trace(generate_gemm_trace(config))
        np.testing.assert_array_equal(from_config.a_nz, from_trace.a_nz)
        np.testing.assert_array_equal(from_config.b_nz, from_trace.b_nz)
        np.testing.assert_array_equal(
            from_config.effectual, from_trace.effectual
        )
        np.testing.assert_array_equal(
            from_config.ml_count, from_trace.ml_count
        )
        np.testing.assert_array_equal(
            from_config.broadcast_nonzero, from_trace.broadcast_nonzero
        )

    def test_shapes(self):
        config = _config("resnet2_2_fwd")  # 4x6 explicit mixed
        arrays = TraceArrays.from_config(config)
        assert arrays.effectual.shape == (K_STEPS, 4, 6, 16)
        assert arrays.ml_count.shape == arrays.effectual.shape
        assert arrays.mixed
        assert arrays.k_depth == 2 * K_STEPS
        assert arrays.a_nz.shape == (4, arrays.k_depth)

    def test_mixed_ml_count_range(self):
        arrays = TraceArrays.from_config(_config("resnet2_2_fwd"))
        assert int(arrays.ml_count.max()) <= 2
        # effectual is exactly "any multiplicand pair alive".
        np.testing.assert_array_equal(arrays.effectual, arrays.ml_count > 0)

    def test_dense_point_has_no_sparsity_structure(self):
        arrays = TraceArrays.from_config(_config("resnet2_2_fwd", 0.0, 0.0))
        assert arrays.skipped_fmas == 0
        assert arrays.pass_through_lanes == 0
        assert bool(arrays.effectual.all())


class TestUopAccounting:
    @pytest.mark.parametrize("name", KERNELS)
    def test_uop_count_matches_generated_trace(self, name):
        config = _config(name)
        trace = generate_gemm_trace(config)
        arrays = TraceArrays.from_config(config)
        assert arrays.uop_count == len(trace.materialize())
        assert arrays.fma_count == count_uops(trace.materialize()).fmas

    def test_write_mask_kmovs_counted(self):
        base = _config("resnet3_2_bwd_input")
        masked = _config("resnet3_2_bwd_input", use_write_masks=True)
        delta = (
            TraceArrays.from_config(masked).uop_count
            - TraceArrays.from_config(base).uop_count
        )
        assert delta == K_STEPS * base.tile.col_vectors


class TestCounterContract:
    """The fast tier's static counters equal the exact pipeline's."""

    @pytest.mark.parametrize("name", KERNELS)
    def test_save_counters_bit_for_bit(self, name):
        config = _config(name)
        exact = simulate(generate_gemm_trace(config), SAVE_2VPU)
        fast = simulate_config(config, SAVE_2VPU, "fast")
        assert fast.uop_count == exact.uop_count
        assert fast.fma_count == exact.fma_count
        assert fast.skipped_fmas == exact.skipped_fmas
        assert fast.effectual_lanes == exact.effectual_lanes
        assert fast.pass_through_lanes == exact.pass_through_lanes

    def test_baseline_counters_zero(self):
        config = _config("resnet3_2_bwd_input")
        exact = simulate(generate_gemm_trace(config), BASELINE_2VPU)
        fast = simulate_config(config, BASELINE_2VPU, "fast")
        assert (exact.effectual_lanes, exact.pass_through_lanes,
                exact.skipped_fmas) == (0, 0, 0)
        assert (fast.effectual_lanes, fast.pass_through_lanes,
                fast.skipped_fmas) == (0, 0, 0)
