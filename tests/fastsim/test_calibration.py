"""The committed calibration artifact: freshness, budget, spot accuracy."""

import pytest

from repro.fastsim import calibration as cal
from repro.fastsim.cli import calibrate_main


@pytest.fixture(scope="module")
def payload():
    loaded = cal.load_calibration()
    assert loaded is not None, (
        "missing committed calibration.json; run "
        "`repro fastsim-calibrate --write`"
    )
    return loaded


class TestCommittedArtifact:
    def test_schema_and_engine(self, payload):
        assert payload["schema"] == cal.CALIBRATION_SCHEMA_VERSION
        assert payload["engine"] == "fast"

    def test_fingerprint_fresh(self, payload):
        # Recomputing the fingerprint needs no simulation; a mismatch
        # means the trace generator, the bound model, the feature
        # vector, the grid or the kernel library moved underneath the
        # committed weights.
        expected = cal.expected_fingerprint(
            tuple(payload["levels"]), payload["k_steps"], payload["seed"]
        )
        assert payload["fingerprint"] == expected, (
            "committed calibration is stale; re-run "
            "`repro fastsim-calibrate --write`"
        )

    def test_fitted_on_the_full_grid(self, payload):
        assert tuple(payload["levels"]) == cal.FULL_LEVELS

    def test_recorded_errors_inside_issue_budget(self, payload):
        # The ISSUE's acceptance budget: <=5% median, <=15% p95
        # relative cycle error on the full calibration grid.
        assert cal.validate_budget(payload) == []
        summary = payload["summary"]
        assert summary["median_rel_err"] <= cal.BUDGET_MEDIAN
        assert summary["p95_rel_err"] <= cal.BUDGET_P95

    def test_every_class_has_weights(self, payload):
        expected_classes = set(cal.calibration_classes())
        assert set(payload["classes"]) == expected_classes
        for entry in payload["classes"].values():
            assert len(entry["weights"]) == 6  # matches FEATURE_NAMES

    def test_weights_for_known_and_unknown(self, payload):
        key = sorted(payload["classes"])[0]
        assert cal.weights_for(key) is not None
        assert cal.weights_for("no-such-class") is None


class TestHarness:
    def test_validate_budget_flags_over_budget(self):
        bad = {"summary": {"median_rel_err": 0.5, "p95_rel_err": 0.5}}
        problems = cal.validate_budget(bad)
        assert len(problems) == 2

    def test_validate_budget_missing_summary(self):
        assert cal.validate_budget({}) == [
            "payload has no summary error statistics"
        ]

    def test_evaluate_requires_weights_for_every_class(self):
        with pytest.raises(ValueError, match="no committed weights"):
            cal.run_calibration(
                levels=(0.0,), k_steps=1, fit=False, weights={}
            )


class TestCli:
    def test_write_refuses_quick_grid(self, capsys):
        assert calibrate_main(["--write", "--quick"]) == 2
        assert "refusing" in capsys.readouterr().err
