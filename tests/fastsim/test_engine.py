"""Fast/analytic engine behavior: tags, validation, determinism."""

import pytest

from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU
from repro.core.pipeline import simulate
from repro.fastsim import (
    ENGINES,
    TraceArrays,
    bounds,
    simulate_config,
    simulate_trace,
    validate_engine,
)
from repro.fastsim.engine import predict_cycles
from repro.kernels.gemm import generate_gemm_trace
from repro.kernels.library import get_kernel


def _config(bs=0.5, nbs=0.5, k_steps=4, name="resnet3_2_bwd_input"):
    return get_kernel(name).config(
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        k_steps=k_steps,
        seed=0,
    )


class TestValidation:
    def test_engines_tuple(self):
        assert ENGINES == ("exact", "fast", "analytic")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            validate_engine("turbo")

    def test_exact_engine_needs_a_trace(self):
        with pytest.raises(ValueError, match="exact"):
            simulate_config(_config(), SAVE_2VPU, "exact")


class TestEngineTag:
    def test_fast_result_tagged(self):
        assert simulate_config(_config(), SAVE_2VPU, "fast").engine == "fast"

    def test_analytic_result_tagged(self):
        result = simulate_config(_config(), SAVE_2VPU, "analytic")
        assert result.engine == "analytic"
        assert result.cycles >= 1

    def test_exact_result_tagged_by_default(self):
        result = simulate(generate_gemm_trace(_config()), SAVE_2VPU)
        assert result.engine == "exact"

    def test_pipeline_dispatches_fast_tier(self):
        trace = generate_gemm_trace(_config())
        result = simulate(trace, SAVE_2VPU, engine="fast")
        assert result.engine == "fast"
        assert result.cycles == simulate_trace(trace, SAVE_2VPU).cycles


class TestDeterminism:
    def test_repeated_runs_identical(self):
        config = _config()
        first = simulate_config(config, SAVE_2VPU, "fast")
        second = simulate_config(config, SAVE_2VPU, "fast")
        assert first == second

    def test_trace_and_config_paths_agree(self):
        config = _config()
        via_config = simulate_config(config, SAVE_2VPU, "fast")
        via_trace = simulate_trace(generate_gemm_trace(config), SAVE_2VPU)
        assert via_config.cycles == via_trace.cycles


class TestBounds:
    @pytest.mark.parametrize("machine", [BASELINE_2VPU, SAVE_2VPU, SAVE_1VPU])
    def test_bounds_positive(self, machine):
        breakdown = bounds(TraceArrays.from_config(_config()), machine)
        assert breakdown.frontend > 0
        assert breakdown.vpu > 0
        assert breakdown.l1 > 0
        assert breakdown.chain > 0
        assert breakdown.bound_max == max(
            breakdown.frontend, breakdown.vpu, breakdown.l1, breakdown.chain
        )
        assert breakdown.bottleneck in ("frontend", "vpu", "l1", "chain")

    def test_sparsity_reduces_save_vpu_demand(self):
        dense = bounds(TraceArrays.from_config(_config(0.0, 0.0)), SAVE_2VPU)
        sparse = bounds(TraceArrays.from_config(_config(0.8, 0.8)), SAVE_2VPU)
        assert sparse.vpu < dense.vpu

    def test_uncalibrated_prediction_is_bound_max_plus_startup(self):
        breakdown = bounds(TraceArrays.from_config(_config()), SAVE_2VPU)
        assert predict_cycles(breakdown, None) == pytest.approx(
            breakdown.bound_max + 30.0
        )


class TestAccuracySpot:
    """One cheap spot check per machine; the calibration harness owns
    the full-grid budget."""

    @pytest.mark.parametrize("machine", [BASELINE_2VPU, SAVE_2VPU])
    def test_fast_near_exact(self, machine):
        config = _config(k_steps=24)
        exact = simulate(generate_gemm_trace(config), machine)
        fast = simulate_config(config, machine, "fast")
        rel = abs(fast.cycles - exact.cycles) / exact.cycles
        assert rel < 0.20, (fast.cycles, exact.cycles)
