"""Tests for ELM generation, rotation states, and scheduler structures."""

import numpy as np
import pytest

from repro.core.dynuop import DynUop
from repro.core.save.elm import MguStage, compute_elm
from repro.core.save.rotate import rotation_offset, slot_for_lane
from repro.core.save.window import (
    BaselineScheduler,
    HorizontalScheduler,
    SlotScheduler,
)
from repro.isa.uops import RegOperand, vdpbf16, vfma


def fma_dyn(a, b, mask_bits=None, mixed=False, wmask=None):
    uop = (vdpbf16 if mixed else vfma)(0, RegOperand(1), RegOperand(2), wmask=wmask)
    dyn = DynUop(uop, 0)
    dyn.a_value = np.asarray(a, dtype=np.float32)
    dyn.b_value = np.asarray(b, dtype=np.float32)
    if mask_bits is not None:
        dyn.mask_bits = mask_bits
    return dyn


class TestComputeElm:
    def test_dense_all_effectual(self):
        dyn = fma_dyn(np.ones(16), np.ones(16))
        elm, ml = compute_elm(dyn)
        assert elm == 0xFFFF and ml is None

    def test_zero_in_a_kills_lane(self):
        a = np.ones(16)
        a[3] = 0
        dyn = fma_dyn(a, np.ones(16))
        elm, _ = compute_elm(dyn)
        assert not elm & (1 << 3)
        assert elm & (1 << 2)

    def test_zero_in_b_kills_lane(self):
        b = np.ones(16)
        b[7] = 0
        elm, _ = compute_elm(fma_dyn(np.ones(16), b))
        assert not elm & (1 << 7)

    def test_broadcast_zero_is_all_ineffectual(self):
        elm, _ = compute_elm(fma_dyn(np.zeros(16), np.ones(16)))
        assert elm == 0

    def test_write_mask_clears_lanes(self):
        dyn = fma_dyn(np.ones(16), np.ones(16), mask_bits=0x00FF, wmask=1)
        elm, _ = compute_elm(dyn)
        assert elm == 0x00FF

    def test_requires_operands(self):
        uop = vfma(0, RegOperand(1), RegOperand(2))
        with pytest.raises(RuntimeError):
            compute_elm(DynUop(uop, 0))

    def test_mixed_al_effectual_if_any_ml(self):
        a = np.ones(32)
        b = np.ones(32)
        b[0] = 0  # AL 0 ML 0 dead, ML 1 alive
        b[2] = b[3] = 0  # AL 1 both dead
        elm, ml = compute_elm(fma_dyn(a, b, mixed=True))
        assert elm & 1
        assert not elm & 2
        assert ml[0] == (1,)
        assert ml[1] == ()
        assert ml[2] == (0, 1)

    def test_mixed_write_mask_empties_ml_list(self):
        dyn = fma_dyn(np.ones(32), np.ones(32), mask_bits=0xFFFE, wmask=1, mixed=True)
        elm, ml = compute_elm(dyn)
        assert ml[0] == ()
        assert not elm & 1


class TestMguStage:
    def test_budget_limits_throughput(self):
        mgu = MguStage(2)
        dyns = [fma_dyn(np.ones(16), np.ones(16)) for _ in range(5)]
        for dyn in dyns:
            mgu.enqueue(dyn)
        assert len(mgu.step()) == 2
        assert len(mgu.step()) == 2
        assert len(mgu.step()) == 1
        assert mgu.processed == 5

    def test_step_sets_elm(self):
        mgu = MguStage(4)
        dyn = fma_dyn(np.ones(16), np.ones(16))
        mgu.enqueue(dyn)
        mgu.step()
        assert dyn.elm == 0xFFFF

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            MguStage(0)


class TestRotation:
    def test_three_states(self):
        offsets = {rotation_offset(reg) for reg in range(6)}
        assert offsets == {-1, 0, 1}

    def test_keyed_on_accumulator_mod3(self):
        assert rotation_offset(0) == rotation_offset(3) == rotation_offset(27)
        assert rotation_offset(1) == rotation_offset(4)

    def test_disabled(self):
        assert rotation_offset(5, rotation_states=1) == 0

    def test_invalid_states(self):
        with pytest.raises(ValueError):
            rotation_offset(0, rotation_states=2)

    def test_slot_wraps(self):
        assert slot_for_lane(15, 1) == 0
        assert slot_for_lane(0, -1) == 15
        assert slot_for_lane(5, 0) == 5

    def test_rotation_breaks_conflicts(self):
        # Three µops with accumulators 0, 1, 2 sharing one effectual
        # lane map to three distinct slots.
        lane = 4
        slots = {slot_for_lane(lane, rotation_offset(reg)) for reg in (0, 1, 2)}
        assert len(slots) == 3


class TestSchedulers:
    def test_slot_scheduler_oldest_first(self):
        sched = SlotScheduler()
        sched.insert(0, seq=5, item="young")
        sched.insert(0, seq=2, item="old")
        assert sched.pop_oldest(0) == "old"
        assert sched.pop_oldest(0) == "young"
        assert sched.pop_oldest(0) is None

    def test_slot_scheduler_isolated_slots(self):
        sched = SlotScheduler()
        sched.insert(0, 1, "a")
        assert sched.pop_oldest(1) is None
        assert sched.pending() == 1

    def test_slot_occupancy(self):
        sched = SlotScheduler(slots=4)
        sched.insert(0, 1, "a")
        sched.insert(0, 2, "b")
        sched.insert(3, 3, "c")
        assert sched.slot_occupancy() == [2, 0, 0, 1]

    def test_slot_scheduler_fifo_ties(self):
        sched = SlotScheduler()
        sched.insert(0, 1, "first")
        sched.insert(0, 1, "second")
        assert sched.pop_oldest(0) == "first"

    def test_horizontal_scheduler_global_order(self):
        sched = HorizontalScheduler()
        sched.insert(9, "b")
        sched.insert(1, "a")
        assert sched.pop_oldest() == "a"
        assert sched.pending() == 1

    def test_baseline_scheduler(self):
        sched = BaselineScheduler()
        sched.insert(3, "c")
        sched.insert(1, "a")
        assert sched.pop_oldest() == "a"
        assert sched.pop_oldest() == "c"
        assert sched.pop_oldest() is None

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            SlotScheduler(slots=0)
