"""Fuzz testing of SAVE's software transparency on *arbitrary* traces.

The GEMM-based transparency tests exercise the code shapes DNN kernels
produce; this fuzzer generates random-but-valid µop traces (loads,
broadcasts, stores, mask writes, FP32 and mixed FMAs with random
register dependences and random sparse data) and asserts that every
SAVE configuration still reproduces the in-order reference state
value-for-value.
"""

import random

import numpy as np
import pytest

from repro.core import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, simulate
from repro.core.config import CoalescingScheme
from repro.isa.datatypes import BF16_LANES, FP32_LANES
from repro.isa.registers import Memory
from repro.isa.uops import (
    MemOperand,
    RegOperand,
    kmov,
    scalar_op,
    vbcast,
    vdpbf16,
    vfma,
    vload,
    vstore,
    vzero,
)
from repro.kernels.trace import KernelTrace, count_uops

FP32_BASE = 0x1000
BF16_BASE = 0x9000
STORE_BASE = 0x20000
N_REGS = 12


def random_trace(seed: int, length: int = 140) -> KernelTrace:
    """A random valid µop trace over sparse data."""
    rng = random.Random(seed)
    memory = Memory()
    # Sparse FP32 pool (50% zeros) and BF16-exact pool.
    for i in range(512):
        value = 0.0 if rng.random() < 0.5 else rng.choice([0.5, 1.5, -2.0, 3.0])
        memory.write(FP32_BASE + i * 4, value)
    for i in range(512):
        value = 0.0 if rng.random() < 0.5 else rng.choice([0.25, 1.0, -4.0])
        memory.write(BF16_BASE + i * 2, value)

    width = {}  # register -> 16 or 32 (lanes of its last producer)
    uops = []
    store_slot = 0

    def regs_with(lanes):
        return [r for r, w in width.items() if w == lanes]

    def fp32_operand():
        if regs_with(16) and rng.random() < 0.5:
            return RegOperand(rng.choice(regs_with(16)))
        if rng.random() < 0.5:
            return MemOperand(FP32_BASE + rng.randrange(496) * 4, broadcast=True)
        return MemOperand(FP32_BASE + rng.randrange(480) * 4)

    def bf16_operand():
        if regs_with(32) and rng.random() < 0.5:
            return RegOperand(rng.choice(regs_with(32)))
        if rng.random() < 0.5:
            return MemOperand(
                BF16_BASE + rng.randrange(480) * 2, broadcast=True, bf16=True
            )
        return MemOperand(BF16_BASE + rng.randrange(448) * 2, bf16=True)

    for _ in range(length):
        kind = rng.random()
        reg = rng.randrange(N_REGS)
        if kind < 0.10:
            uops.append(vzero(reg))
            width[reg] = 16
        elif kind < 0.22:
            bf16 = rng.random() < 0.4
            base = BF16_BASE if bf16 else FP32_BASE
            step = 2 if bf16 else 4
            uops.append(vload(reg, base + rng.randrange(400) * step, bf16=bf16))
            width[reg] = 32 if bf16 else 16
        elif kind < 0.30:
            bf16 = rng.random() < 0.4
            if bf16:
                uops.append(vbcast(reg, BF16_BASE + rng.randrange(480) * 2, bf16=True))
                width[reg] = 32
            else:
                uops.append(vbcast(reg, FP32_BASE + rng.randrange(500) * 4))
                width[reg] = 16
        elif kind < 0.35:
            uops.append(kmov(rng.randrange(1, 8), rng.randrange(1 << 16)))
        elif kind < 0.72 and regs_with(16):
            accum = rng.choice(regs_with(16))
            wmask = rng.randrange(1, 8) if rng.random() < 0.3 else None
            uops.append(vfma(accum, fp32_operand(), fp32_operand(), wmask=wmask))
        elif kind < 0.88 and regs_with(16):
            accum = rng.choice(regs_with(16))
            wmask = rng.randrange(1, 8) if rng.random() < 0.3 else None
            uops.append(vdpbf16(accum, bf16_operand(), bf16_operand(), wmask=wmask))
        elif kind < 0.95 and width:
            src = rng.choice(list(width))
            bf16 = width[src] == 32
            uops.append(vstore(src, STORE_BASE + store_slot * 64, bf16=bf16))
            store_slot += 1
        else:
            uops.append(scalar_op())

    return KernelTrace(
        name=f"fuzz-{seed}",
        uops=uops,
        memory=memory,
        regions={},
        stats=count_uops(uops),
        meta={},
    )


def assert_transparent(trace: KernelTrace, machine) -> None:
    reference = trace.reference_result()
    result = simulate(trace, machine, warm_level=None)
    state = result.final_state
    for reg in range(32):
        assert np.array_equal(
            reference.read_vreg(reg), state.read_vreg(reg)
        ), f"zmm{reg} diverged"
    for kreg in range(8):
        assert reference.read_kreg(kreg) == state.read_kreg(kreg)
    ref_mem = reference.memory.snapshot()
    sim_mem = state.memory.snapshot()
    for addr in set(ref_mem) | set(sim_mem):
        assert np.float32(ref_mem.get(addr, 0.0)) == np.float32(sim_mem.get(addr, 0.0))


MACHINES = [
    pytest.param(BASELINE_2VPU, id="baseline"),
    pytest.param(SAVE_2VPU, id="save-2vpu"),
    pytest.param(SAVE_1VPU, id="save-1vpu"),
    pytest.param(
        SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL), id="save-hc"
    ),
    pytest.param(
        SAVE_2VPU.with_save(
            coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=False
        ),
        id="save-vc",
    ),
    pytest.param(
        SAVE_2VPU.with_save(mixed_precision_technique=False), id="save-no-mp"
    ),
    pytest.param(
        SAVE_2VPU.with_save(coalescing=CoalescingScheme.NAIVE), id="save-naive"
    ),
]


class TestFuzzTransparency:
    @pytest.mark.parametrize("machine", MACHINES)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces(self, machine, seed):
        assert_transparent(random_trace(seed), machine)

    def test_longer_trace(self):
        assert_transparent(random_trace(99, length=400), SAVE_2VPU)

    def test_trace_has_interesting_content(self):
        # Sanity: the generator actually produces FMAs and stores.
        trace = random_trace(0, length=300)
        assert trace.stats.fmas > 20
        assert trace.stats.stores > 3

    @pytest.mark.parametrize("seed", range(6, 14))
    def test_more_seeds_default_config(self, seed):
        assert_transparent(random_trace(seed), SAVE_2VPU)


def random_machine(seed: int):
    """A random-but-valid machine configuration."""
    import random as _random

    from repro.core.config import CoreConfig, MachineConfig, SaveConfig
    from repro.memory.broadcast_cache import BroadcastCacheKind

    rng = _random.Random(seed)
    scheme = rng.choice(list(CoalescingScheme))
    return MachineConfig(
        core=CoreConfig(
            issue_width=rng.choice([2, 4, 5, 6]),
            rs_entries=rng.choice([12, 48, 97]),
            rob_entries=rng.choice([32, 128, 224]),
            num_vpus=rng.choice([1, 2, 3]),
            freq_ghz=rng.choice([1.0, 1.7, 2.1]),
            scalar_ports=rng.choice([1, 3]),
        ),
        save=SaveConfig(
            enabled=True,
            coalescing=scheme,
            lane_wise_dependence=rng.random() < 0.5,
            rotation_states=rng.choice([1, 3]),
            mixed_precision_technique=rng.random() < 0.5,
            broadcast_cache=rng.choice(list(BroadcastCacheKind)),
            broadcast_cache_entries=rng.choice([4, 32]),
            mgu_count=rng.choice([1, 3, 5]),
        ),
    )


class TestFuzzMachineConfigs:
    """Transparency must hold for ANY machine configuration."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_machine_random_trace(self, seed):
        machine = random_machine(seed)
        assert_transparent(random_trace(seed + 500, length=120), machine)

    @pytest.mark.parametrize("seed", range(10, 16))
    def test_random_machine_gemm_trace(self, seed):
        from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
        from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile

        import random as _random

        rng = _random.Random(seed)
        machine = random_machine(seed)
        trace = generate_gemm_trace(
            GemmKernelConfig(
                name="fuzz-gemm",
                tile=RegisterTile(
                    rng.choice([1, 3, 7]),
                    rng.choice([1, 2, 3]),
                    rng.choice(list(BroadcastPattern)),
                ),
                k_steps=6,
                precision=rng.choice(list(Precision)),
                broadcast_sparsity=rng.choice([0.0, 0.4, 0.9]),
                nonbroadcast_sparsity=rng.choice([0.0, 0.5, 0.9]),
                use_write_masks=rng.random() < 0.3,
                seed=seed,
            )
        )
        reference = trace.reference_result()
        result = simulate(trace, machine)
        for reg in range(32):
            assert np.array_equal(
                reference.read_vreg(reg), result.final_state.read_vreg(reg)
            )
