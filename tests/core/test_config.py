"""Tests for machine configurations."""

import pytest

from repro.core.config import (
    BASELINE_2VPU,
    SAVE_1VPU,
    SAVE_2VPU,
    CoalescingScheme,
    CoreConfig,
    MachineConfig,
    SaveConfig,
)


class TestPresets:
    def test_baseline_matches_table1(self):
        core = BASELINE_2VPU.core
        assert core.issue_width == 5
        assert core.rs_entries == 97
        assert core.rob_entries == 224
        assert core.num_vpus == 2
        assert core.freq_ghz == 1.7
        assert not BASELINE_2VPU.save.enabled

    def test_one_vpu_boosted(self):
        assert SAVE_1VPU.core.num_vpus == 1
        assert SAVE_1VPU.core.freq_ghz == 2.1

    def test_save_defaults(self):
        save = SAVE_2VPU.save
        assert save.enabled
        assert save.coalescing == CoalescingScheme.ROTATE_VERTICAL
        assert save.lane_wise_dependence
        assert save.mixed_precision_technique
        assert save.broadcast_cache_entries == 32
        assert save.broadcast_cache_ports == 4
        assert save.mgu_count == 5


class TestLatencies:
    def test_fma_latency_fp32(self):
        assert BASELINE_2VPU.fma_latency(mixed=False) == 4

    def test_fma_latency_mixed(self):
        assert BASELINE_2VPU.fma_latency(mixed=True) == 6

    def test_hc_adds_crossbar_latency(self):
        machine = SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL)
        assert machine.fma_latency(mixed=False) == 4 + 6

    def test_hc_latency_not_applied_to_baseline(self):
        machine = BASELINE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL)
        assert machine.fma_latency(mixed=False) == 4


class TestOverrides:
    def test_with_save_returns_copy(self):
        modified = SAVE_2VPU.with_save(lane_wise_dependence=False)
        assert not modified.save.lane_wise_dependence
        assert SAVE_2VPU.save.lane_wise_dependence  # original untouched

    def test_with_core(self):
        modified = SAVE_2VPU.with_core(num_vpus=1, freq_ghz=2.1)
        assert modified.core.num_vpus == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(num_vpus=0)
        with pytest.raises(ValueError):
            CoreConfig(freq_ghz=-1)
        with pytest.raises(ValueError):
            SaveConfig(rotation_states=2)
        with pytest.raises(ValueError):
            SaveConfig(mgu_count=0)
