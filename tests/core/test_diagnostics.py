"""Tests for bottleneck diagnostics."""

import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.core.diagnostics import BottleneckReport, analyze, explain
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile


def run(machine, bs=0.0, nbs=0.0):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="diag",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            k_steps=24,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=0,
        )
    )
    return simulate(trace, machine, keep_state=False)


class TestAnalyze:
    def test_dense_baseline_vpu_bound(self):
        report = analyze(run(BASELINE_2VPU), BASELINE_2VPU)
        assert report.binding == "vpu"
        assert report.vpu_utilisation > 0.85

    def test_sparse_save_not_vpu_bound(self):
        report = analyze(run(SAVE_2VPU, bs=0.7, nbs=0.7), SAVE_2VPU)
        assert report.binding != "vpu"
        assert report.vpu_utilisation < 0.5

    def test_utilisations_bounded(self):
        report = analyze(run(SAVE_2VPU, nbs=0.5), SAVE_2VPU)
        for value in (
            report.vpu_utilisation,
            report.frontend_utilisation,
            report.l1_port_utilisation,
            report.lane_utilisation,
        ):
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_lane_utilisation_drops_with_sparsity(self):
        dense = analyze(run(SAVE_2VPU), SAVE_2VPU)
        sparse = analyze(run(SAVE_2VPU, nbs=0.7), SAVE_2VPU)
        assert sparse.lane_utilisation <= dense.lane_utilisation


class TestExplain:
    def test_mentions_key_quantities(self):
        result = run(SAVE_2VPU, bs=0.4, nbs=0.4)
        text = explain(result, SAVE_2VPU)
        assert "VFMAs retired" in text
        assert "binding" in text
        assert "B$ hit rate" in text
        assert str(result.cycles) in text

    def test_baseline_omits_save_sections(self):
        result = run(BASELINE_2VPU)
        text = explain(result, BASELINE_2VPU)
        assert "B$ hit rate" not in text
        assert "mean CW" not in text


def synthetic_result(machine, cycles=1000, vpu_ops=0, uops=0, l1=0, metrics=None):
    """A hand-built SimResult hitting a chosen utilisation profile."""
    from repro.core.pipeline import SimResult

    return SimResult(
        name="synthetic",
        cycles=cycles,
        freq_ghz=machine.core.freq_ghz,
        uop_count=uops,
        fma_count=100,
        vpu_ops=vpu_ops,
        vpu_lane_slots=vpu_ops * 16,
        effectual_lanes=0,
        pass_through_lanes=0,
        skipped_fmas=0,
        stall_rob_cycles=0,
        stall_rs_cycles=0,
        mgu_processed=0,
        l1_port_accesses=l1,
        b_cache_hit_rate=0.0,
        b_cache_reads_saved=0,
        metrics=metrics,
    )


class TestBindingSelection:
    def test_frontend_binding(self):
        # Saturate the front end, leave VPUs and L1 ports idle.
        width = SAVE_2VPU.core.issue_width
        result = synthetic_result(SAVE_2VPU, uops=1000 * width, vpu_ops=10, l1=10)
        assert analyze(result, SAVE_2VPU).binding == "frontend"

    def test_l1_port_binding(self):
        ports = SAVE_2VPU.hierarchy.l1_read_ports
        result = synthetic_result(SAVE_2VPU, l1=1000 * ports, vpu_ops=10, uops=10)
        assert analyze(result, SAVE_2VPU).binding == "l1_ports"

    def test_vpu_binding(self):
        vpus = SAVE_2VPU.core.num_vpus
        result = synthetic_result(SAVE_2VPU, vpu_ops=1000 * vpus, uops=10, l1=10)
        assert analyze(result, SAVE_2VPU).binding == "vpu"


class TestExplainDistributions:
    def _metrics(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        for v in (2, 4, 4, 8):
            reg.histogram("cw_occupancy").record(v)
            reg.histogram("elm_wait_cycles").record(v)
        reg.counter("lwd_stalls").inc(17)
        return reg.snapshot()

    def test_distribution_lines_present_when_instrumented(self):
        result = synthetic_result(SAVE_2VPU, vpu_ops=10, metrics=self._metrics())
        text = explain(result, SAVE_2VPU)
        assert "CW occupancy" in text
        assert "ELM wait" in text
        assert "p95" in text
        assert "LWD stalls" in text and "17" in text

    def test_no_distribution_lines_without_metrics(self):
        result = synthetic_result(SAVE_2VPU, vpu_ops=10)
        text = explain(result, SAVE_2VPU)
        assert "CW occupancy" not in text

    def test_real_instrumented_run_explains(self):
        from repro.obs import Instrumentation

        obs = Instrumentation()
        trace = generate_gemm_trace(
            GemmKernelConfig(
                name="diag",
                tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
                k_steps=8,
                broadcast_sparsity=0.4,
                nonbroadcast_sparsity=0.4,
                seed=0,
            )
        )
        result = simulate(trace, SAVE_2VPU, keep_state=False, obs=obs)
        text = explain(result, SAVE_2VPU)
        assert "lanes per op" in text
        assert "retire wait" in text
