"""Tests for bottleneck diagnostics."""

import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.core.diagnostics import BottleneckReport, analyze, explain
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile


def run(machine, bs=0.0, nbs=0.0):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="diag",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            k_steps=24,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=0,
        )
    )
    return simulate(trace, machine, keep_state=False)


class TestAnalyze:
    def test_dense_baseline_vpu_bound(self):
        report = analyze(run(BASELINE_2VPU), BASELINE_2VPU)
        assert report.binding == "vpu"
        assert report.vpu_utilisation > 0.85

    def test_sparse_save_not_vpu_bound(self):
        report = analyze(run(SAVE_2VPU, bs=0.7, nbs=0.7), SAVE_2VPU)
        assert report.binding != "vpu"
        assert report.vpu_utilisation < 0.5

    def test_utilisations_bounded(self):
        report = analyze(run(SAVE_2VPU, nbs=0.5), SAVE_2VPU)
        for value in (
            report.vpu_utilisation,
            report.frontend_utilisation,
            report.l1_port_utilisation,
            report.lane_utilisation,
        ):
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_lane_utilisation_drops_with_sparsity(self):
        dense = analyze(run(SAVE_2VPU), SAVE_2VPU)
        sparse = analyze(run(SAVE_2VPU, nbs=0.7), SAVE_2VPU)
        assert sparse.lane_utilisation <= dense.lane_utilisation


class TestExplain:
    def test_mentions_key_quantities(self):
        result = run(SAVE_2VPU, bs=0.4, nbs=0.4)
        text = explain(result, SAVE_2VPU)
        assert "VFMAs retired" in text
        assert "binding" in text
        assert "B$ hit rate" in text
        assert str(result.cycles) in text

    def test_baseline_omits_save_sections(self):
        result = run(BASELINE_2VPU)
        text = explain(result, BASELINE_2VPU)
        assert "B$ hit rate" not in text
        assert "mean CW" not in text
