"""Property-based tests (hypothesis) on core data structures."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynuop import DynUop
from repro.core.save.mixed import ChainLane
from repro.core.save.rotate import rotation_offset, slot_for_lane
from repro.core.save.window import HorizontalScheduler, SlotScheduler
from repro.isa.uops import RegOperand, vfma
from repro.model.analytic import expected_max_binomial
from repro.model.surface import SparsitySurface


class TestSlotSchedulerProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 15)), max_size=60))
    def test_pops_in_seq_order_per_slot(self, items):
        sched = SlotScheduler()
        for seq, slot in items:
            sched.insert(slot, seq, (seq, slot))
        for slot in range(16):
            popped = []
            while True:
                item = sched.pop_oldest(slot)
                if item is None:
                    break
                popped.append(item[0])
            assert popped == sorted(popped)

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 15)), max_size=60))
    def test_conservation(self, items):
        sched = SlotScheduler()
        for seq, slot in items:
            sched.insert(slot, seq, (seq, slot))
        assert sched.pending() == len(items)
        total = 0
        for slot in range(16):
            while sched.pop_oldest(slot) is not None:
                total += 1
        assert total == len(items)
        assert sched.pending() == 0

    @given(st.lists(st.integers(0, 10_000), max_size=80))
    def test_horizontal_global_order(self, seqs):
        sched = HorizontalScheduler()
        for seq in seqs:
            sched.insert(seq, seq)
        popped = []
        while True:
            item = sched.pop_oldest()
            if item is None:
                break
            popped.append(item)
        assert popped == sorted(seqs)


class TestRotationProperties:
    @given(st.integers(0, 31), st.integers(0, 15))
    def test_rotation_is_bijective_on_lanes(self, reg, lane):
        offset = rotation_offset(reg)
        slots = {slot_for_lane(l, offset) for l in range(16)}
        assert slots == set(range(16))

    @given(st.integers(0, 31))
    def test_producer_consumer_share_state(self, reg):
        # Same accumulator register => same rotation, always.
        assert rotation_offset(reg) == rotation_offset(reg)
        assert rotation_offset(reg) in (-1, 0, 1)

    @given(st.integers(0, 15), st.integers(-1, 1))
    def test_slot_roundtrip(self, lane, offset):
        slot = slot_for_lane(lane, offset)
        assert slot_for_lane(slot, -offset) == lane


class TestChainLaneProperties:
    def make_dyn(self, seq):
        dyn = DynUop(vfma(0, RegOperand(1), RegOperand(2)), seq)
        return dyn

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=20))
    def test_fifo_order_preserved(self, mls):
        chain = ChainLane(self.make_dyn(0), lane=3, slot=3)
        dyns = [self.make_dyn(i) for i in range(len(mls))]
        for dyn, p in zip(dyns, mls):
            chain.append(dyn, p)
        taken = []
        while chain.queue:
            taken.extend(chain.take(2))
        assert [d.seq for d, _p in taken] == sorted(d.seq for d in dyns)

    @given(st.integers(1, 10))
    def test_take_never_exceeds_two(self, n):
        chain = ChainLane(self.make_dyn(0), lane=0, slot=0)
        for i in range(n):
            chain.append(self.make_dyn(i), 0)
        assert len(chain.take(2)) <= 2

    def test_not_ready_without_acc(self):
        chain = ChainLane(self.make_dyn(0), lane=0, slot=0)
        chain.append(self.make_dyn(1), 0)
        assert not chain.ready()
        chain.acc_value = np.float32(0.0)
        assert chain.ready()
        chain.busy = True
        assert not chain.ready()


class TestDynUopProperties:
    @given(st.integers(0, 0xFFFF))
    def test_lane_done_mask_accumulates(self, mask):
        dyn = DynUop(vfma(0, RegOperand(1), RegOperand(2)), 0)
        dyn.acc_init = np.zeros(16, dtype=np.float32)
        lanes = [l for l in range(16) if mask & (1 << l)]
        for lane in lanes:
            dyn.mark_lane_done(lane, np.float32(lane))
        assert dyn.lanes_done_mask == mask
        assert dyn.completed == (mask == 0xFFFF)

    def test_completion_fires_exactly_once(self):
        dyn = DynUop(vfma(0, RegOperand(1), RegOperand(2)), 0)
        transitions = 0
        for lane in range(16):
            if dyn.mark_lane_done(lane, np.float32(1.0)):
                transitions += 1
        assert transitions == 1


class TestExpectedMaxBinomialProperties:
    @given(st.integers(1, 20), st.floats(0.01, 1.0))
    def test_bounds(self, m, d):
        value = expected_max_binomial(m, d)
        assert m * d - 1e-9 <= value <= m + 1e-9

    @given(st.integers(1, 15), st.floats(0.05, 0.95))
    def test_monotone_in_slots(self, m, d):
        few = expected_max_binomial(m, d, slots=2)
        many = expected_max_binomial(m, d, slots=16)
        assert many >= few - 1e-9


class TestSurfaceInterpolationProperties:
    @given(
        st.lists(st.floats(0.1, 100.0), min_size=4, max_size=4),
        st.floats(0.0, 0.9),
        st.floats(0.0, 0.9),
    )
    def test_within_corner_bounds(self, corners, x, y):
        grid = np.array(corners).reshape(2, 2)
        surface = SparsitySurface(levels=(0.0, 0.9), ns_per_fma=grid)
        value = surface.interpolate(x, y)
        assert min(corners) - 1e-9 <= value <= max(corners) + 1e-9

    @given(st.floats(-5.0, 5.0), st.floats(-5.0, 5.0))
    def test_clamping_never_extrapolates(self, x, y):
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        surface = SparsitySurface(levels=(0.0, 0.9), ns_per_fma=grid)
        assert 1.0 <= surface.interpolate(x, y) <= 4.0
