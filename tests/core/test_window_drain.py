"""Combination-window statistics and precise-state-at-prefix tests.

* The paper (Sec. III): "for a large enough GEMM, with 32 ISA vector
  registers, the CW is often 24-28" — the pipeline's CW gauge must
  reproduce that on a 28-accumulator kernel.
* DESIGN.md invariant 3: executing any *prefix* of a trace yields the
  same architectural state as the in-order reference over that prefix —
  SAVE never lets younger work corrupt state needed at a drain point.
"""

import numpy as np
import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.kernels.trace import KernelTrace, count_uops
from repro.validate import check_transparency


def kernel(rows=28, cols=1, pattern=BroadcastPattern.EMBEDDED, k_steps=24,
           bs=0.0, nbs=0.0, precision=Precision.FP32, seed=0):
    return generate_gemm_trace(
        GemmKernelConfig(
            name="cw",
            tile=RegisterTile(rows, cols, pattern),
            k_steps=k_steps,
            precision=precision,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=seed,
        )
    )


class TestCombinationWindow:
    def test_cw_tracks_accumulator_count(self):
        # 28 accumulators, long RAW distance: the window fills to the
        # accumulator-count scale (paper: "often 24-28"; our gauge is
        # lane-granular, so under lane-wise dependences staggered lanes
        # of adjacent generations can both be pending, reading up to
        # ~2x the vector-wise window).
        result = simulate(kernel(rows=28, cols=1, nbs=0.5), SAVE_2VPU, keep_state=False)
        assert 14 <= result.mean_cw <= 2 * 28

    def test_vector_wise_cw_bounded_by_accumulators(self):
        # With vector-wise dependences, at most one generation per
        # accumulator can be ready: the paper's bound applies directly.
        machine = SAVE_2VPU.with_save(lane_wise_dependence=False)
        result = simulate(kernel(rows=28, cols=1, nbs=0.5), machine, keep_state=False)
        assert result.mean_cw <= 29

    def test_small_tile_small_window(self):
        result = simulate(
            kernel(rows=2, cols=2, pattern=BroadcastPattern.EXPLICIT, nbs=0.5),
            SAVE_2VPU,
            keep_state=False,
        )
        assert result.mean_cw < 9

    def test_baseline_reports_no_cw(self):
        result = simulate(kernel(), BASELINE_2VPU, keep_state=False)
        assert result.mean_cw == 0.0

    def test_cw_cannot_exceed_rs(self):
        result = simulate(kernel(nbs=0.7), SAVE_2VPU, keep_state=False)
        assert result.mean_cw <= SAVE_2VPU.core.rs_entries


def prefix_trace(trace: KernelTrace, n: int) -> KernelTrace:
    """A new trace containing the first ``n`` µops."""
    return KernelTrace(
        name=f"{trace.name}[:{n}]",
        uops=trace.materialize()[:n],
        memory=trace.memory,
        regions=trace.regions,
        stats=count_uops(trace.materialize()[:n]),
        meta=dict(trace.meta),
    )


class TestPrefixDrain:
    """Invariant 3: any drain point leaves precise architectural state."""

    @pytest.mark.parametrize("fraction", [0.1, 0.33, 0.5, 0.77])
    def test_fp32_prefixes(self, fraction):
        trace = kernel(rows=4, cols=3, pattern=BroadcastPattern.EXPLICIT,
                       k_steps=12, bs=0.3, nbs=0.4)
        n = max(1, int(len(trace) * fraction))
        report = check_transparency(prefix_trace(trace, n), SAVE_2VPU)
        report.raise_if_failed()

    @pytest.mark.parametrize("fraction", [0.25, 0.6])
    def test_mixed_prefixes(self, fraction):
        trace = kernel(rows=3, cols=2, pattern=BroadcastPattern.EXPLICIT,
                       k_steps=8, precision=Precision.MIXED, bs=0.2, nbs=0.5)
        n = max(1, int(len(trace) * fraction))
        report = check_transparency(prefix_trace(trace, n), SAVE_2VPU)
        report.raise_if_failed()

    def test_single_uop_prefix(self):
        trace = kernel(rows=2, cols=1, pattern=BroadcastPattern.EXPLICIT, k_steps=2)
        report = check_transparency(prefix_trace(trace, 1), SAVE_2VPU)
        report.raise_if_failed()


class TestValidateApi:
    def test_report_fields(self):
        trace = kernel(rows=2, cols=2, pattern=BroadcastPattern.EXPLICIT, k_steps=4)
        report = check_transparency(trace, SAVE_2VPU)
        assert report.transparent
        assert not report.mismatches
        assert report.result is not None
        assert "save" in report.machine_label

    def test_raise_if_failed_passes_when_clean(self):
        trace = kernel(rows=2, cols=2, pattern=BroadcastPattern.EXPLICIT, k_steps=4)
        check_transparency(trace, SAVE_2VPU).raise_if_failed()

    def test_compare_states_detects_divergence(self):
        from repro.isa.registers import ArchState
        from repro.validate import compare_states

        a = ArchState()
        b = ArchState()
        b.write_vreg(3, np.ones(16, dtype=np.float32))
        b.write_kreg(1, 0)
        b.memory.write(0x40, 7.0)
        mismatches = compare_states(a, b)
        assert "zmm3" in mismatches
        assert "k1" in mismatches
        assert "mem[0x40]" in mismatches
