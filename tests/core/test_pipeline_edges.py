"""Edge-case and robustness tests for the pipeline simulator."""

import numpy as np
import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, PipelineSimulator, simulate
from repro.isa.registers import Memory
from repro.isa.uops import (
    MemOperand,
    RegOperand,
    kmov,
    scalar_op,
    vbcast,
    vfma,
    vload,
    vstore,
    vzero,
)
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.kernels.trace import KernelTrace, count_uops


def make_trace(uops, memory=None, name="edge"):
    return KernelTrace(
        name=name,
        uops=uops,
        memory=memory if memory is not None else Memory(),
        regions={},
        stats=count_uops(uops),
        meta={},
    )


def gemm(rows=2, cols=2, k_steps=4, **kwargs):
    return generate_gemm_trace(
        GemmKernelConfig(
            name="edge",
            tile=RegisterTile(rows, cols, kwargs.pop("pattern", BroadcastPattern.EXPLICIT)),
            k_steps=k_steps,
            **kwargs,
        )
    )


class TestTinyResources:
    def test_tiny_rob_still_correct(self):
        trace = gemm(k_steps=8, nonbroadcast_sparsity=0.5)
        machine = SAVE_2VPU.with_core(rob_entries=8)
        reference = trace.reference_result()
        result = simulate(trace, machine)
        for reg in range(32):
            assert np.array_equal(
                reference.read_vreg(reg), result.final_state.read_vreg(reg)
            )

    def test_tiny_rob_slower(self):
        trace = gemm(rows=4, cols=4, k_steps=16)
        big = simulate(trace, SAVE_2VPU, keep_state=False)
        small = simulate(trace, SAVE_2VPU.with_core(rob_entries=8), keep_state=False)
        assert small.cycles >= big.cycles
        assert small.stall_rob_cycles > 0

    def test_tiny_rs_still_correct(self):
        trace = gemm(k_steps=8, broadcast_sparsity=0.4)
        machine = SAVE_2VPU.with_core(rs_entries=4)
        reference = trace.reference_result()
        result = simulate(trace, machine)
        assert np.array_equal(
            reference.read_vreg(0), result.final_state.read_vreg(0)
        )

    def test_single_issue(self):
        trace = gemm(k_steps=6)
        machine = SAVE_2VPU.with_core(issue_width=1)
        result = simulate(trace, machine, keep_state=False)
        # Front-end bound: at most one µop per cycle.
        assert result.cycles >= result.uop_count

    def test_single_scalar_port(self):
        trace = make_trace([scalar_op() for _ in range(20)])
        machine = BASELINE_2VPU.with_core(scalar_ports=1)
        result = simulate(trace, machine, warm_level=None, keep_state=False)
        assert result.cycles >= 20


class TestDegenerateTraces:
    def test_empty_ish_trace(self):
        trace = make_trace([scalar_op()])
        result = simulate(trace, SAVE_2VPU, warm_level=None)
        assert result.cycles >= 1

    def test_single_fma(self):
        memory = Memory()
        memory.write_array(0x0, [2.0] * 16, stride=4)
        trace = make_trace([vzero(0), vload(1, 0x0), vfma(0, RegOperand(1), RegOperand(1))], memory)
        result = simulate(trace, SAVE_2VPU, warm_level=None)
        assert np.array_equal(
            result.final_state.read_vreg(0), np.full(16, 4.0, dtype=np.float32)
        )

    def test_store_of_unwritten_register(self):
        trace = make_trace([vstore(5, 0x100)])
        result = simulate(trace, SAVE_2VPU, warm_level=None)
        assert not result.final_state.memory.read_vector(0x100, 16, 4).any()

    def test_fma_on_unwritten_registers(self):
        trace = make_trace([vfma(0, RegOperand(1), RegOperand(2))])
        result = simulate(trace, SAVE_2VPU, warm_level=None)
        # 0 += 0*0: still zero, and fully skipped by SAVE.
        assert not result.final_state.read_vreg(0).any()
        assert result.skipped_fmas == 1

    def test_full_vector_memory_operand(self):
        memory = Memory()
        memory.write_array(0x0, range(16), stride=4)
        trace = make_trace(
            [vzero(0), vbcast(1, 0x4), vfma(0, MemOperand(0x0), RegOperand(1))],
            memory,
        )
        reference = trace.reference_result()
        result = simulate(trace, SAVE_2VPU, warm_level=None)
        assert np.array_equal(reference.read_vreg(0), result.final_state.read_vreg(0))

    def test_one_by_one_tile(self):
        trace = gemm(rows=1, cols=1, k_steps=3)
        reference = trace.reference_result()
        result = simulate(trace, SAVE_2VPU)
        assert np.array_equal(reference.read_vreg(0), result.final_state.read_vreg(0))

    def test_kmov_chain(self):
        trace = make_trace(
            [
                vzero(0),
                vbcast(1, 0x0),
                kmov(1, 0xF0F0),
                vfma(0, RegOperand(1), RegOperand(1), wmask=1),
            ]
        )
        result = simulate(trace, SAVE_2VPU, warm_level=None)
        reference = trace.reference_result()
        assert np.array_equal(reference.read_vreg(0), result.final_state.read_vreg(0))


class TestGuards:
    def test_max_cycles_raises(self):
        trace = gemm(k_steps=16)
        sim = PipelineSimulator(trace, SAVE_2VPU, max_cycles=5)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run()

    @pytest.mark.parametrize("level", ["l1", "l2", "l3", None])
    def test_warm_levels(self, level):
        trace = gemm(k_steps=4)
        result = simulate(trace, SAVE_2VPU, warm_level=level, keep_state=False)
        assert result.cycles > 0

    def test_cold_caches_slower(self):
        trace = gemm(rows=4, cols=4, k_steps=16)
        warm = simulate(trace, SAVE_2VPU, warm_level="l1", keep_state=False)
        cold = simulate(trace, SAVE_2VPU, warm_level=None, keep_state=False)
        assert cold.cycles >= warm.cycles


class TestLsuThrottling:
    def test_l1_ports_limit_load_rate(self):
        memory = Memory()
        for i in range(64):
            memory.write(i * 64, 1.0)
        # 32 independent loads into distinct registers (reusing 8 regs).
        uops = [vload(i % 8, (i % 32) * 64) for i in range(32)]
        trace = make_trace(uops, memory)
        result = simulate(trace, BASELINE_2VPU, warm_level="l1", keep_state=False)
        # 2 ports: at least 16 service cycles plus latency.
        assert result.cycles >= 16

    def test_store_port_serialises(self):
        uops = [vzero(0)] + [vstore(0, i * 64) for i in range(10)]
        trace = make_trace(uops)
        result = simulate(trace, BASELINE_2VPU, warm_level=None, keep_state=False)
        assert result.cycles >= 10


class TestMgUThroughput:
    def test_mgu_count_one_throttles(self):
        trace = gemm(rows=4, cols=4, k_steps=12)
        full = simulate(trace, SAVE_2VPU, keep_state=False)
        throttled = simulate(
            trace, SAVE_2VPU.with_save(mgu_count=1), keep_state=False
        )
        assert throttled.cycles > full.cycles
        # Still correct.
        reference = trace.reference_result()
        result = simulate(trace, SAVE_2VPU.with_save(mgu_count=1))
        assert np.array_equal(reference.read_vreg(0), result.final_state.read_vreg(0))
