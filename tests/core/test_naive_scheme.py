"""Tests for the naive lane-skip strawman (paper's introduction)."""

import numpy as np
import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.core.config import CoalescingScheme
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile

NAIVE = SAVE_2VPU.with_save(coalescing=CoalescingScheme.NAIVE)


def trace(bs=0.0, nbs=0.0, k_steps=16, precision=Precision.FP32, seed=0):
    return generate_gemm_trace(
        GemmKernelConfig(
            name="naive",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            k_steps=k_steps,
            precision=precision,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=seed,
        )
    )


class TestNaiveTransparency:
    @pytest.mark.parametrize("bs,nbs", [(0.0, 0.0), (0.5, 0.0), (0.0, 0.5), (0.7, 0.7)])
    def test_matches_reference(self, bs, nbs):
        t = trace(bs=bs, nbs=nbs)
        reference = t.reference_result()
        result = simulate(t, NAIVE)
        for reg in range(32):
            assert np.array_equal(
                reference.read_vreg(reg), result.final_state.read_vreg(reg)
            )

    def test_mixed_precision_supported(self):
        t = trace(bs=0.3, nbs=0.5, precision=Precision.MIXED)
        reference = t.reference_result()
        result = simulate(t, NAIVE)
        for reg in range(32):
            assert np.array_equal(
                reference.read_vreg(reg), result.final_state.read_vreg(reg)
            )


class TestNaiveBehaviour:
    def test_nbs_alone_barely_helps(self):
        # The paper's strawman argument: "the vector instruction still
        # has to wait for the other lanes".
        base = simulate(trace(nbs=0.6), BASELINE_2VPU, keep_state=False)
        naive = simulate(trace(nbs=0.6), NAIVE, keep_state=False)
        assert naive.time_ns >= base.time_ns * 0.93

    def test_full_save_beats_naive_on_nbs(self):
        naive = simulate(trace(nbs=0.6), NAIVE, keep_state=False)
        full = simulate(trace(nbs=0.6), SAVE_2VPU, keep_state=False)
        assert full.time_ns < naive.time_ns

    def test_bs_still_skips_whole_instructions(self):
        result = simulate(trace(bs=1.0, k_steps=10), NAIVE, keep_state=False)
        assert result.skipped_fmas == result.fma_count
        assert result.vpu_ops == 0

    def test_partial_bs_helps(self):
        base = simulate(trace(bs=0.5), BASELINE_2VPU, keep_state=False)
        naive = simulate(trace(bs=0.5), NAIVE, keep_state=False)
        assert naive.time_ns < base.time_ns

    def test_vpu_ops_count_surviving_instructions(self):
        result = simulate(trace(bs=0.5, k_steps=20), NAIVE, keep_state=False)
        assert result.vpu_ops == result.fma_count - result.skipped_fmas

    def test_lane_accounting_consistent(self):
        result = simulate(trace(bs=0.3, nbs=0.3), NAIVE, keep_state=False)
        assert (
            result.effectual_lanes + result.pass_through_lanes
            == result.fma_count * 16
        )
