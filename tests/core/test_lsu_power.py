"""Tests for the load/store unit and the power/frequency policy."""

import numpy as np
import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.core.save.power import VpuPolicy, best_configuration
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.memory.broadcast_cache import BroadcastCacheKind


def embedded_trace(bs=0.0, nbs=0.0, k_steps=24, rows=14, cols=2, seed=0):
    return generate_gemm_trace(
        GemmKernelConfig(
            name="emb",
            tile=RegisterTile(rows, cols, BroadcastPattern.EMBEDDED),
            k_steps=k_steps,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=seed,
        )
    )


class TestBroadcastCacheIntegration:
    def test_b_cache_reduces_l1_traffic(self):
        trace = embedded_trace()
        with_b = simulate(trace, SAVE_2VPU, keep_state=False)
        without_b = simulate(
            trace,
            SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.NONE),
            keep_state=False,
        )
        assert with_b.l1_port_accesses < without_b.l1_port_accesses

    def test_b_cache_hit_rate_above_90pct(self):
        # Paper Sec. IV-A: >90% hit rate for all tested DNN kernels.
        trace = embedded_trace(k_steps=32)
        result = simulate(trace, SAVE_2VPU, keep_state=False)
        assert result.b_cache_hit_rate > 0.90

    def test_data_design_beats_mask_design_with_nbs(self):
        # Fig. 17: with NBS present, B$-with-data outperforms
        # B$-with-masks (which still reads non-zero data from L1).
        trace = embedded_trace(bs=0.4, nbs=0.6, k_steps=32)
        data = simulate(trace, SAVE_2VPU, keep_state=False)
        mask = simulate(
            trace,
            SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.MASK),
            keep_state=False,
        )
        none = simulate(
            trace,
            SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.NONE),
            keep_state=False,
        )
        assert data.cycles <= mask.cycles <= none.cycles

    def test_mask_design_saves_only_zero_broadcasts(self):
        trace = embedded_trace(bs=0.5, k_steps=32)
        mask = simulate(
            trace,
            SAVE_2VPU.with_save(broadcast_cache=BroadcastCacheKind.MASK),
            keep_state=False,
        )
        data = simulate(trace, SAVE_2VPU, keep_state=False)
        assert mask.b_cache_reads_saved <= data.b_cache_reads_saved

    def test_baseline_has_no_b_cache(self):
        trace = embedded_trace()
        result = simulate(trace, BASELINE_2VPU, keep_state=False)
        assert result.b_cache_hit_rate == 0.0


class TestTransparencyWithMemoryEffects:
    def test_embedded_kernel_state_exact_all_b_designs(self):
        trace = embedded_trace(bs=0.3, nbs=0.4, k_steps=8)
        reference = trace.reference_result()
        for kind in BroadcastCacheKind:
            result = simulate(trace, SAVE_2VPU.with_save(broadcast_cache=kind))
            state = result.final_state
            for reg in range(32):
                assert np.array_equal(reference.read_vreg(reg), state.read_vreg(reg))

    def test_stores_reach_memory(self):
        trace = embedded_trace(k_steps=4)
        result = simulate(trace, SAVE_2VPU)
        region = trace.regions["C"]
        values = result.final_state.memory.read_vector(region.base, 16, 4)
        assert values.any()


class TestPowerPolicy:
    def test_best_configuration_picks_minimum(self):
        label, time = best_configuration({"2 VPUs": 10.0, "1 VPU": 8.0})
        assert label == "1 VPU" and time == 8.0

    def test_tie_prefers_first_inserted(self):
        label, _ = best_configuration({"2 VPUs": 5.0, "1 VPU": 5.0})
        assert label == "2 VPUs"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_configuration({})

    def test_policy_labels(self):
        assert VpuPolicy.DYNAMIC.value == "dynamic"
        assert VpuPolicy.STATIC.value == "static"


class TestBroadcastCacheHitRateAllKernels:
    """Paper Sec. IV-A: >90% B$ hit rates for all tested DNN kernels."""

    @pytest.mark.parametrize("name", [
        "resnet2_2_fwd",
        "resnet3_2_bwd_weights",
        "resnet3_2_bwd_input",
        "resnet5_1a_bwd_input",
        "resnet4_1a_bwd_input",
        "explicit_wide",
        "embedded_tall",
    ])
    def test_hit_rate_above_90pct(self, name):
        from repro.kernels.library import get_kernel

        spec = get_kernel(name)
        trace = generate_gemm_trace(
            spec.config(broadcast_sparsity=0.2, nonbroadcast_sparsity=0.4, k_steps=32)
        )
        result = simulate(trace, SAVE_2VPU, keep_state=False)
        assert result.b_cache_hit_rate > 0.90
