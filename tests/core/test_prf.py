"""Tests for physical-register-file accounting (Sec. IV-B claims)."""

import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.core.config import CoalescingScheme
from repro.core.prf import PrfTracker
from repro.core.dynuop import DynUop
from repro.isa.uops import RegOperand, vfma, vload, vzero
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile


def run(rows, cols, pattern, machine=SAVE_2VPU, nbs=0.4, k_steps=24):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="prf",
            tile=RegisterTile(rows, cols, pattern),
            k_steps=k_steps,
            nonbroadcast_sparsity=nbs,
            seed=0,
        )
    )
    return simulate(trace, machine, keep_state=False)


class TestPaperClaims:
    def test_explicit_overhead_below_25pct(self):
        # Sec. IV-B: "rotation consumes less than 25% additional
        # registers" on a typical explicit-broadcast kernel.
        result = run(4, 6, BroadcastPattern.EXPLICIT)
        assert result.prf_rotation_overhead < 0.25

    def test_embedded_overhead_below_5pct(self):
        # Sec. IV-B: "much lower, less than 5%, when running a typical
        # embedded broadcast kernel".
        result = run(28, 1, BroadcastPattern.EMBEDDED)
        assert result.prf_rotation_overhead < 0.05

    def test_no_copies_without_rotation(self):
        machine = SAVE_2VPU.with_save(rotation_states=1)
        result = run(28, 1, BroadcastPattern.EMBEDDED, machine=machine)
        assert result.prf_peak_copies == 0

    def test_no_copies_with_vc(self):
        machine = SAVE_2VPU.with_save(coalescing=CoalescingScheme.VERTICAL)
        result = run(28, 1, BroadcastPattern.EMBEDDED, machine=machine)
        assert result.prf_peak_copies == 0

    def test_baseline_tracks_base_only(self):
        result = run(4, 6, BroadcastPattern.EXPLICIT, machine=BASELINE_2VPU)
        assert result.prf_peak_copies == 0
        assert result.prf_peak_base > 32

    def test_base_bounded_by_rob(self):
        result = run(4, 6, BroadcastPattern.EXPLICIT)
        assert result.prf_peak_base <= 32 + SAVE_2VPU.core.rob_entries


class TestTrackerUnit:
    def test_dest_allocation_and_release(self):
        tracker = PrfTracker()
        dyn = DynUop(vload(3, 0x0), 0)
        tracker.on_rename(dyn)
        assert tracker.peak_base == 33
        tracker.on_retire(dyn)
        tracker.on_rename(DynUop(vload(4, 0x40), 1))
        assert tracker.peak_base == 33  # not 34: first was released

    def test_kmov_has_no_vreg_dest(self):
        from repro.isa.uops import kmov

        tracker = PrfTracker()
        tracker.on_rename(DynUop(kmov(1, 0xF), 0))
        assert tracker.peak_base == 32

    def test_copy_refcounting(self):
        tracker = PrfTracker()
        producer = DynUop(vload(2, 0x0), 0)
        consumers = []
        for i, acc in enumerate((1, 4)):  # both rotation state 1
            dyn = DynUop(vfma(acc, RegOperand(3), RegOperand(2)), i + 1)
            dyn.rotation = 1
            dyn.b_src = producer
            consumers.append(dyn)
            tracker.on_rename(dyn)
        # Same (source, rotation): one copy.
        assert tracker.peak_copies == 1
        tracker.on_retire(consumers[0])
        assert tracker._live_copies == 1
        tracker.on_retire(consumers[1])
        assert tracker._live_copies == 0

    def test_distinct_rotations_distinct_copies(self):
        tracker = PrfTracker()
        producer = DynUop(vload(2, 0x0), 0)
        for i, rotation in enumerate((1, -1)):
            dyn = DynUop(vfma(1, RegOperand(3), RegOperand(2)), i + 1)
            dyn.rotation = rotation
            dyn.b_src = producer
            tracker.on_rename(dyn)
        assert tracker.peak_copies == 2

    def test_zero_rotation_needs_no_copy(self):
        tracker = PrfTracker()
        dyn = DynUop(vfma(0, RegOperand(1), RegOperand(2)), 0)
        dyn.rotation = 0
        tracker.on_rename(dyn)
        assert tracker.peak_copies == 0

    def test_live_in_source_tracked(self):
        tracker = PrfTracker()
        dyn = DynUop(vfma(1, RegOperand(3), RegOperand(2)), 0)
        dyn.rotation = 1
        dyn.b_src = None  # live-in register value
        tracker.on_rename(dyn)
        assert tracker.peak_copies == 1
