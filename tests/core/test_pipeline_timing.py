"""Timing behaviour of the pipeline: the paper's qualitative claims."""

import pytest

from repro.core import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, simulate
from repro.core.config import CoalescingScheme
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.library import get_kernel
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def run(machine, bs=0.0, nbs=0.0, rows=4, cols=6, pattern=BroadcastPattern.EXPLICIT,
        precision=Precision.FP32, k_steps=24, seed=0):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="t",
            tile=RegisterTile(rows, cols, pattern),
            k_steps=k_steps,
            precision=precision,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=seed,
        )
    )
    return simulate(trace, machine, keep_state=False)


class TestDenseBehaviour:
    def test_baseline_vpu_bound_at_two_per_cycle(self):
        result = run(BASELINE_2VPU)
        # VPU throughput is the bottleneck: close to 2 FMAs/cycle.
        assert result.fmas_per_cycle > 1.6

    def test_save_no_worse_than_baseline_dense(self):
        base = run(BASELINE_2VPU)
        save = run(SAVE_2VPU)
        assert save.cycles <= base.cycles * 1.05

    def test_one_vpu_dense_slowdown(self):
        # Paper Sec. VII-B: ~29% slowdown at 0% sparsity with one VPU.
        base = run(BASELINE_2VPU)
        one = run(SAVE_1VPU)
        slowdown = one.time_ns / base.time_ns
        assert 1.15 < slowdown < 1.6

    def test_dense_has_no_skips(self):
        result = run(SAVE_2VPU)
        assert result.skipped_fmas == 0
        assert result.pass_through_lanes == 0


class TestSparsitySpeedup:
    def test_speedup_grows_with_bs(self):
        base = run(BASELINE_2VPU)
        times = [run(SAVE_2VPU, bs=bs).time_ns for bs in (0.0, 0.4, 0.8)]
        assert times[0] >= times[1] >= times[2]
        assert base.time_ns / times[2] > 1.2

    def test_speedup_grows_with_nbs(self):
        times = [run(SAVE_2VPU, nbs=nbs).time_ns for nbs in (0.0, 0.4, 0.8)]
        assert times[0] >= times[1] >= times[2]

    def test_one_vpu_wins_at_high_sparsity(self):
        # Paper: beyond ~70% sparsity one boosted VPU beats two.
        two = run(SAVE_2VPU, bs=0.9, nbs=0.0, k_steps=48)
        one = run(SAVE_1VPU, bs=0.9, nbs=0.0, k_steps=48)
        assert one.time_ns <= two.time_ns

    def test_two_vpus_win_dense(self):
        two = run(SAVE_2VPU)
        one = run(SAVE_1VPU)
        assert two.time_ns < one.time_ns

    def test_vpu_ops_shrink_with_sparsity(self):
        dense = run(SAVE_2VPU)
        sparse = run(SAVE_2VPU, nbs=0.6)
        assert sparse.vpu_ops < dense.vpu_ops


class TestLaneBalancing:
    """Fig. 18 qualitative behaviour on the effective-CW≈1 kernel."""

    def kernel_run(self, machine, nbs):
        return run(
            machine,
            nbs=nbs,
            rows=28,
            cols=1,
            pattern=BroadcastPattern.EMBEDDED,
            k_steps=24,
        )

    def test_rvc_beats_vc_on_cw1_kernel(self):
        vc = SAVE_2VPU.with_save(
            coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=False
        )
        rvc = SAVE_2VPU.with_save(lane_wise_dependence=False)
        assert self.kernel_run(rvc, 0.5).cycles < self.kernel_run(vc, 0.5).cycles

    def test_lwd_helps(self):
        without = SAVE_2VPU.with_save(lane_wise_dependence=False)
        with_lwd = SAVE_2VPU
        assert self.kernel_run(with_lwd, 0.5).cycles <= self.kernel_run(without, 0.5).cycles

    def test_hc_packs_at_least_as_well_as_rvc(self):
        hc = SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL)
        rvc = SAVE_2VPU
        assert self.kernel_run(hc, 0.5).vpu_ops <= self.kernel_run(rvc, 0.5).vpu_ops

    def test_hc_latency_penalty_visible_dense(self):
        hc = SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL)
        assert self.kernel_run(hc, 0.0).cycles >= self.kernel_run(SAVE_2VPU, 0.0).cycles


class TestMixedPrecision:
    def test_technique_reduces_vpu_ops_mid_sparsity(self):
        on = run(SAVE_2VPU, precision=Precision.MIXED, nbs=0.5)
        off = run(
            SAVE_2VPU.with_save(mixed_precision_technique=False),
            precision=Precision.MIXED,
            nbs=0.5,
        )
        assert on.vpu_ops < off.vpu_ops
        assert on.cycles <= off.cycles

    def test_square_law_without_technique(self):
        # At 50% NBS, without the technique only ~25% of ALs skip.
        result = run(
            SAVE_2VPU.with_save(mixed_precision_technique=False),
            precision=Precision.MIXED,
            nbs=0.5,
            k_steps=32,
        )
        al_total = result.fma_count * 16
        skip_fraction = result.pass_through_lanes / al_total
        assert 0.15 < skip_fraction < 0.35

    def test_mixed_latency_longer_than_fp32(self):
        fp32 = run(BASELINE_2VPU, rows=1, cols=1, k_steps=4)
        mixed = run(BASELINE_2VPU, rows=1, cols=1, k_steps=4, precision=Precision.MIXED)
        # Serial accumulation chain: per-step latency 6 vs 4.
        assert mixed.cycles > fp32.cycles


class TestStallAccounting:
    def test_rs_pressure_reported(self):
        # A long dependency-free FMA burst fills the RS.
        result = run(BASELINE_2VPU, rows=4, cols=6, k_steps=64)
        assert result.stall_rs_cycles + result.stall_rob_cycles >= 0  # counters exist

    def test_mgu_processes_all_fmas(self):
        result = run(SAVE_2VPU, nbs=0.3)
        assert result.mgu_processed == result.fma_count


class TestLibraryKernelsSimulate:
    @pytest.mark.parametrize("name", ["resnet3_2_bwd_input", "resnet5_1a_bwd_input"])
    def test_fig18_kernels_run(self, name):
        spec = get_kernel(name)
        trace = generate_gemm_trace(
            spec.config(nonbroadcast_sparsity=0.5, k_steps=8)
        )
        result = simulate(trace, SAVE_2VPU, keep_state=False)
        assert result.cycles > 0
