"""SAVE's software-transparency property (DESIGN.md invariant 1).

For any trace and any SAVE configuration, the pipeline's final
architectural state must equal the in-order reference execution —
registers and memory, value-for-value.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, simulate
from repro.core.config import CoalescingScheme
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def assert_transparent(trace, machine):
    result = simulate(trace, machine)
    reference = trace.reference_result()
    state = result.final_state
    for reg in range(32):
        assert np.array_equal(
            reference.read_vreg(reg), state.read_vreg(reg)
        ), f"register zmm{reg} diverged"
    ref_mem = reference.memory.snapshot()
    sim_mem = state.memory.snapshot()
    for addr in set(ref_mem) | set(sim_mem):
        assert np.float32(ref_mem.get(addr, 0.0)) == np.float32(
            sim_mem.get(addr, 0.0)
        ), f"memory at 0x{addr:x} diverged"
    return result


def kernel(
    rows=3,
    cols=2,
    pattern=BroadcastPattern.EXPLICIT,
    k_steps=8,
    precision=Precision.FP32,
    bs=0.4,
    nbs=0.4,
    masks=False,
    seed=0,
):
    return generate_gemm_trace(
        GemmKernelConfig(
            name="t",
            tile=RegisterTile(rows, cols, pattern),
            k_steps=k_steps,
            precision=precision,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            use_write_masks=masks,
            seed=seed,
        )
    )


ALL_SAVE_VARIANTS = [
    pytest.param(SAVE_2VPU, id="rvc+lwd-2vpu"),
    pytest.param(SAVE_1VPU, id="rvc+lwd-1vpu"),
    pytest.param(
        SAVE_2VPU.with_save(
            coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=False
        ),
        id="vc",
    ),
    pytest.param(
        SAVE_2VPU.with_save(coalescing=CoalescingScheme.VERTICAL), id="vc+lwd"
    ),
    pytest.param(
        SAVE_2VPU.with_save(lane_wise_dependence=False), id="rvc"
    ),
    pytest.param(
        SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL), id="hc"
    ),
]


class TestFp32Transparency:
    @pytest.mark.parametrize("machine", ALL_SAVE_VARIANTS)
    @pytest.mark.parametrize("pattern", list(BroadcastPattern))
    def test_all_schemes_and_patterns(self, machine, pattern):
        trace = kernel(pattern=pattern)
        assert_transparent(trace, machine)

    def test_baseline_matches_reference(self):
        assert_transparent(kernel(), BASELINE_2VPU)

    @pytest.mark.parametrize("bs", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("nbs", [0.0, 0.5, 1.0])
    def test_sparsity_extremes(self, bs, nbs):
        trace = kernel(bs=bs, nbs=nbs)
        assert_transparent(trace, SAVE_2VPU)

    def test_with_write_masks(self):
        trace = kernel(masks=True, nbs=0.6)
        assert_transparent(trace, SAVE_2VPU)

    def test_tall_embedded_kernel(self):
        trace = kernel(rows=28, cols=1, pattern=BroadcastPattern.EMBEDDED, bs=0.0, nbs=0.7)
        assert_transparent(trace, SAVE_2VPU)

    @given(
        bs=st.sampled_from([0.0, 0.2, 0.4, 0.6, 0.8]),
        nbs=st.sampled_from([0.0, 0.3, 0.6, 0.9]),
        seed=st.integers(0, 1000),
        rows=st.integers(1, 6),
        cols=st.integers(1, 4),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_kernels_property(self, bs, nbs, seed, rows, cols):
        trace = kernel(rows=rows, cols=cols, k_steps=4, bs=bs, nbs=nbs, seed=seed)
        assert_transparent(trace, SAVE_2VPU)


class TestMixedTransparency:
    @pytest.mark.parametrize("technique", [True, False], ids=["mp-on", "mp-off"])
    @pytest.mark.parametrize("pattern", list(BroadcastPattern))
    def test_mixed_precision(self, technique, pattern):
        trace = kernel(precision=Precision.MIXED, pattern=pattern, bs=0.3, nbs=0.5)
        machine = SAVE_2VPU.with_save(mixed_precision_technique=technique)
        assert_transparent(trace, machine)

    def test_mixed_baseline(self):
        trace = kernel(precision=Precision.MIXED)
        assert_transparent(trace, BASELINE_2VPU)

    def test_mixed_accumulation_order_preserved(self):
        # BF16 values chosen so any reordering of the accumulation
        # changes the FP32 rounding: transparency implies order held.
        trace = kernel(precision=Precision.MIXED, k_steps=16, bs=0.2, nbs=0.6, seed=11)
        assert_transparent(trace, SAVE_2VPU)

    def test_mixed_with_rotation_off(self):
        trace = kernel(precision=Precision.MIXED, bs=0.3, nbs=0.5)
        machine = SAVE_2VPU.with_save(
            coalescing=CoalescingScheme.VERTICAL, rotation_states=1
        )
        assert_transparent(trace, machine)

    @given(seed=st.integers(0, 500), nbs=st.sampled_from([0.0, 0.4, 0.8]))
    @settings(max_examples=8, deadline=None)
    def test_random_mixed_property(self, seed, nbs):
        trace = kernel(
            rows=2, cols=2, precision=Precision.MIXED, k_steps=6, bs=0.2,
            nbs=nbs, seed=seed,
        )
        assert_transparent(trace, SAVE_2VPU)


class TestWorkConservation:
    """DESIGN.md invariant 2: every effectual lane executes exactly once."""

    def test_fp32_lane_accounting(self):
        trace = kernel(rows=4, cols=3, k_steps=10, bs=0.3, nbs=0.4, seed=2)
        result = simulate(trace, SAVE_2VPU)
        # Every FMA lane is either effectual (VPU) or passed through.
        total_lanes = result.fma_count * 16
        assert result.effectual_lanes + result.pass_through_lanes == total_lanes
        # VPU slots carry exactly the effectual lanes.
        assert result.vpu_lane_slots == result.effectual_lanes

    def test_effectual_count_matches_data(self):
        trace = kernel(rows=2, cols=2, k_steps=8, bs=0.0, nbs=0.5, seed=3)
        result = simulate(trace, SAVE_2VPU)
        # Count effectual lanes directly from the generated data.
        expected = 0
        for uop in trace.materialize():
            if not uop.is_fma():
                continue
        a = trace.meta["a_matrix"]
        b = trace.meta["b_matrix"]
        k_steps = trace.meta["k_steps"]
        tile = trace.meta["tile"]
        for k in range(k_steps):
            for row in range(tile.rows):
                for j in range(tile.col_vectors):
                    segment = b[k, j * 16 : (j + 1) * 16]
                    if a[row, k] == 0:
                        continue
                    expected += int(np.count_nonzero(segment))
        assert result.effectual_lanes == expected

    def test_bs_skips_whole_instructions(self):
        trace = kernel(rows=2, cols=2, k_steps=20, bs=1.0, nbs=0.0)
        result = simulate(trace, SAVE_2VPU)
        assert result.skipped_fmas == result.fma_count
        assert result.vpu_ops == 0
