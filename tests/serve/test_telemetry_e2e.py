"""End-to-end service telemetry: trace IDs from ingress to worker spans,
latency attribution, Prometheus negotiation, fractional Retry-After."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.executor import SimExecutor
from repro.obs.servereport import analyze_request_log
from repro.obs.telemetry import (
    RequestLog,
    ServeTelemetry,
    validate_request_event,
)
from repro.serve.client import Backpressure, ServeClient
from repro.serve.http import PROMETHEUS_CONTENT_TYPE, make_server
from repro.serve.schema import parse_request
from repro.serve.service import ServeConfig, SimService

K_STEPS = 3


def body(bs=0.3, nbs=0.6, **overrides):
    payload = {
        "kind": "point",
        "kernel": {"rows": 1, "cols": 1, "k_steps": K_STEPS},
        "machine": {"preset": "save"},
        "point": [bs, nbs],
    }
    payload.update(overrides)
    return {key: value for key, value in payload.items() if value is not None}


def telemetry_service(tmp_path, *, ring=False, executor=None,
                      **config_overrides):
    defaults = dict(
        store_dir=tmp_path / "store", batch_window_s=0.0, drain_timeout_s=30.0
    )
    defaults.update(config_overrides)
    log_path = tmp_path / "req.jsonl"
    telemetry = ServeTelemetry(
        log=RequestLog(log_path),
        ring=(
            RequestLog(tmp_path / "ring.jsonl", ring_limit=64)
            if ring
            else None
        ),
    )
    service = SimService(
        ServeConfig(**defaults), executor=executor, telemetry=telemetry
    )
    return service, log_path


def read_events(log_path):
    events = []
    from repro.obs.telemetry import read_request_log

    for event in read_request_log(str(log_path)):
        validate_request_event(event)
        events.append(event)
    return events


class TestTraceIdPropagation:
    def test_worker_spans_carry_the_originating_trace_id(self, tmp_path):
        # jobs=2: simulation happens in pool worker *processes*, so the
        # sim spans crossing back with the right trace IDs is the proof
        # that request identity survives the process-pool boundary.
        executor = SimExecutor(jobs=2, persistent=True)
        service, log_path = telemetry_service(tmp_path, executor=executor)
        with service:
            request = parse_request(
                body(kind="sweep", point=None, levels=[0.2, 0.7])
            )
            job, outcome = service.submit(request, trace_id="cafe0123beef4567")
            assert outcome == "accepted"
            assert job.wait(30) and job.state == "done"
        events = read_events(log_path)
        sims = [e for e in events if e["event"] == "sim"]
        assert len(sims) == 4  # 2x2 sweep grid
        for span in sims:
            assert span["trace_ids"] == ["cafe0123beef4567"]
            assert span["wall_s"] >= 0
            assert span["engine"] == "exact"

    def test_dedup_joiners_appear_on_shared_sim_spans(self, tmp_path):
        service, log_path = telemetry_service(tmp_path)
        with service:
            service.pause()
            request = parse_request(body())
            _, first = service.submit(request, trace_id="aaaa000011112222")
            twin, second = service.submit(request, trace_id="bbbb000011112222")
            assert (first, second) == ("accepted", "dedup")
            service.resume()
            assert twin.wait(30)
        events = read_events(log_path)
        (span,) = [e for e in events if e["event"] == "sim"]
        assert span["trace_ids"] == ["aaaa000011112222", "bbbb000011112222"]
        outcomes = [e["outcome"] for e in events if e["event"] == "ingress"]
        assert sorted(outcomes) == ["accepted", "dedup"]

    def test_lifecycle_events_share_one_trace_id(self, tmp_path):
        service, log_path = telemetry_service(tmp_path)
        with service:
            job, _ = service.submit(parse_request(body()), trace_id="feed" * 4)
            assert job.wait(30)
        events = read_events(log_path)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event["event"], []).append(event)
        assert by_kind["ingress"][0]["trace_id"] == "feed" * 4
        assert {e["trace_id"] for e in by_kind["phase"]} == {"feed" * 4}
        (done,) = by_kind["complete"]
        assert (done["trace_id"], done["status"]) == ("feed" * 4, "done")
        phases = {e["phase"] for e in by_kind["phase"]}
        assert phases == {"queue_wait", "batch_form", "simulate", "store_write"}


class TestLatencyAttribution:
    def test_phases_attribute_at_least_95_percent_of_wall_time(self, tmp_path):
        service, log_path = telemetry_service(tmp_path)
        with service:
            for i in range(6):
                request = body(bs=round(0.1 * i, 3))
                request["kernel"]["k_steps"] = 6
                job, _ = service.submit(parse_request(request))
                assert job.wait(30) and job.state == "done"
        analysis = analyze_request_log(str(log_path))
        assert analysis.submits == 6
        assert analysis.attributed_fraction is not None
        assert analysis.attributed_fraction >= 0.95
        verdict = analysis.bottleneck()
        assert verdict["shares"]  # a named phase carries the time

    def test_cached_requests_record_e2e_latency(self, tmp_path):
        service, log_path = telemetry_service(tmp_path)
        with service:
            job, _ = service.submit(parse_request(body()))
            assert job.wait(30)
            _, outcome = service.submit(parse_request(body()))
            assert outcome == "cached"
            assert service.telemetry.latency.count("e2e") == 2
        events = read_events(log_path)
        statuses = sorted(
            e["status"] for e in events if e["event"] == "complete"
        )
        assert statuses == ["cached", "done"]


class TestSamplerRing:
    def test_ring_snapshots_flow_and_validate(self, tmp_path):
        service, _ = telemetry_service(
            tmp_path, ring=True, telemetry_interval_s=0.05
        )
        with service:
            job, _ = service.submit(parse_request(body()))
            assert job.wait(30)
            time.sleep(0.2)
        events = read_events(tmp_path / "ring.jsonl")
        assert events  # the shutdown path guarantees a final sample
        assert {e["event"] for e in events} == {"snapshot"}
        final = events[-1]
        assert final["queue_depth"] == 0 and final["active"] == 0
        assert final["counters"].get("serve.requests") == 1
        gauges = service.metrics.snapshot()["gauges"]
        assert gauges.get("serve.oldest_request_age_s") == 0.0


class LiveTelemetryServer:
    """Service + HTTP server + request log on an ephemeral port."""

    def __init__(self, tmp_path, **config_overrides):
        self.service, self.log_path = telemetry_service(
            tmp_path, port=0, **config_overrides
        )
        self.server = None
        self.thread = None
        self.base_url = None

    def __enter__(self):
        self.service.start()
        self.server = make_server(self.service)
        host, port = self.server.server_address[:2]
        self.base_url = f"http://{host}:{port}"
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        self.service.close()

    def get(self, path, headers=None):
        request = urllib.request.Request(
            f"{self.base_url}{path}", headers=headers or {}
        )
        with urllib.request.urlopen(request, timeout=10) as reply:
            return reply.status, dict(reply.headers), reply.read()


class TestHttpTelemetry:
    def test_trace_id_echoed_in_header_and_submit_body(self, tmp_path):
        with LiveTelemetryServer(tmp_path) as live:
            raw = json.dumps(body()).encode()
            request = urllib.request.Request(
                f"{live.base_url}/v1/submit", data=raw, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as reply:
                trace = reply.headers["X-Trace-Id"]
                payload = json.loads(reply.read())
            assert len(trace) == 16 and int(trace, 16) >= 0
            assert payload["trace"] == trace
            ServeClient(live.base_url).run(body(), timeout=30)
        events = read_events(live.log_path)
        ingress = [e for e in events if e["event"] == "ingress"]
        assert trace in [e["trace_id"] for e in ingress]

    def test_access_events_record_the_http_surface(self, tmp_path):
        with LiveTelemetryServer(tmp_path) as live:
            ServeClient(live.base_url).run(body(), timeout=30)
            live.get("/healthz")
        events = read_events(live.log_path)
        access = [e for e in events if e["event"] == "access"]
        assert {(e["method"], e["path"].split("/v1/")[0] or "/v1")
                for e in access}  # events exist with method+path
        submit_lines = [e for e in access if e["path"] == "/v1/submit"]
        assert submit_lines and submit_lines[0]["status"] in (200, 202)
        assert all(e["wall_s"] >= 0 for e in access)
        health_lines = [e for e in access if e["path"] == "/healthz"]
        assert health_lines and health_lines[0]["status"] == 200

    def test_metrics_negotiates_prometheus_and_keeps_json_default(
        self, tmp_path
    ):
        with LiveTelemetryServer(tmp_path) as live:
            ServeClient(live.base_url).run(body(), timeout=30)
            status, headers, raw = live.get("/metrics")
            assert status == 200
            assert headers["Content-Type"] == "application/json"
            snapshot = json.loads(raw)
            assert snapshot["counters"]["serve.requests"] >= 1
            gauges = snapshot["gauges"]
            assert "serve.latency.e2e.p50_ms" in gauges
            assert "serve.latency.simulate.p99_ms" in gauges

            status, headers, raw = live.get(
                "/metrics", headers={"Accept": "text/plain"}
            )
            assert status == 200
            assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = raw.decode()
            assert "# TYPE serve_requests counter" in text
            assert "serve_latency_e2e_p50_ms" in text
            # Valid exposition: every non-comment line is "name value".
            for line in text.strip().splitlines():
                if line.startswith("#"):
                    continue
                name, value = line.rsplit(" ", 1)
                float(value)
                assert name and " " not in name.split("{")[0]

    def test_fractional_retry_after_survives_the_wire(self, tmp_path):
        with LiveTelemetryServer(
            tmp_path, queue_limit=1, retry_after_s=0.25
        ) as live:
            live.service.pause()
            first = json.dumps(body(bs=0.1)).encode()
            second = json.dumps(body(bs=0.9)).encode()
            for raw in (first,):
                request = urllib.request.Request(
                    f"{live.base_url}/v1/submit", data=raw, method="POST",
                    headers={"Content-Type": "application/json"},
                )
                urllib.request.urlopen(request, timeout=10).close()
            request = urllib.request.Request(
                f"{live.base_url}/v1/submit", data=second, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=10)
            error = info.value
            assert error.code == 429
            assert error.headers["Retry-After"] == "0.25"
            assert json.loads(error.read())["retry_after_s"] == 0.25

            # The client surfaces the same fractional hint.
            with pytest.raises(Backpressure) as caught:
                ServeClient(live.base_url).submit(body(bs=0.5, nbs=0.9))
            assert caught.value.retry_after_s == 0.25
            live.service.resume()
