"""Client backpressure/backoff behaviour, with a fake clock throughout.

No sockets and no real sleeping: ``_call`` is stubbed per scenario and
``repro.serve.client.time`` is replaced by a fake whose ``sleep``
advances a virtual clock, so the backoff schedule itself is asserted.
"""

import io
import json
import urllib.error

import pytest

from repro.serve import client as client_mod
from repro.serve.client import (
    POLL_GROWTH,
    POLL_INITIAL_S,
    POLL_JITTER_LOW,
    POLL_MAX_S,
    Backpressure,
    ClientError,
    JobFailed,
    ServeClient,
)


class FakeTime:
    """Virtual clock: ``sleep`` advances ``monotonic`` and records."""

    def __init__(self):
        self.now = 1000.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        assert seconds >= 0
        self.sleeps.append(seconds)
        self.now += seconds


class MaxJitter:
    """An rng whose uniform draw always lands on the band's top."""

    def uniform(self, low, high):
        assert low == POLL_JITTER_LOW and high == 1.0
        return high


class FixedJitter:
    def __init__(self, value):
        self.value = value

    def uniform(self, low, high):
        return self.value


@pytest.fixture
def clock(monkeypatch):
    fake = FakeTime()
    monkeypatch.setattr(client_mod, "time", fake)
    return fake


def scripted_client(script, clock, rng=None):
    """A client whose ``_call`` pops canned responses/exceptions.

    ``script`` maps ``(method, path_prefix)`` to a list; exceptions are
    raised, everything else returned.  Lists stick on their last entry.
    """
    client = ServeClient("http://test", rng=rng or MaxJitter())
    calls = []

    def _call(method, path, body=None):
        calls.append((method, path, clock.now))
        for (m, prefix), responses in script.items():
            if method == m and path.startswith(prefix):
                response = responses.pop(0) if len(responses) > 1 else responses[0]
                if isinstance(response, Exception):
                    raise response
                return response
        raise AssertionError(f"unexpected call {method} {path}")

    client._call = _call
    client.calls = calls
    return client


class TestSubmitBackpressure:
    def test_retry_after_is_honoured_including_fractions(self, clock):
        client = scripted_client({
            ("POST", "/v1/submit"): [
                Backpressure(0.25), Backpressure(0.25), {"job": "k"},
            ],
            ("GET", "/v1/jobs/"): [{"status": "done"}],
            ("GET", "/v1/result/"): [{"values": [1.0]}],
        }, clock)
        assert client.run({"r": 1}, timeout=60) == {"values": [1.0]}
        # The two backpressured submits slept exactly the server's hint.
        assert clock.sleeps[:2] == [0.25, 0.25]

    def test_backpressured_submit_times_out_cleanly(self, clock):
        client = scripted_client(
            {("POST", "/v1/submit"): [Backpressure(10.0)]}, clock
        )
        with pytest.raises(TimeoutError, match="still backpressured"):
            client.run({"r": 1}, timeout=1.0)
        # The wait was clamped to the deadline, never the full 10s hint.
        assert sum(clock.sleeps) <= 1.0
        assert clock.now - 1000.0 <= 1.0 + 1e-9

    def test_draining_503_surfaces_backpressure(self, monkeypatch):
        def exploding_urlopen(request, timeout):
            payload = io.BytesIO(
                json.dumps({"error": "draining", "retry_after_s": 1.0}).encode()
            )
            raise urllib.error.HTTPError(
                request.full_url, 503, "Service Unavailable", {}, payload
            )

        monkeypatch.setattr(
            client_mod.urllib.request, "urlopen", exploding_urlopen
        )
        with pytest.raises(Backpressure):
            ServeClient("http://test").submit({"r": 1})


class TestPollBackoff:
    def pending_then_done(self, clock, n_pending, rng=None, timeout=120.0):
        client = scripted_client({
            ("GET", "/v1/jobs/"): (
                [{"status": "pending"}] * n_pending + [{"status": "done"}]
            ),
            ("POST", "/v1/submit"): [{"job": "k"}],
            ("GET", "/v1/result/"): [{"ok": True}],
        }, clock, rng=rng)
        return client.run({"r": 1}, timeout=timeout)

    def test_delays_grow_exponentially_to_the_cap(self, clock):
        self.pending_then_done(clock, n_pending=10)
        expected, delay = [], POLL_INITIAL_S
        for _ in range(10):
            expected.append(delay)
            delay = min(delay * POLL_GROWTH, POLL_MAX_S)
        assert clock.sleeps == pytest.approx(expected)
        assert max(clock.sleeps) == POLL_MAX_S

    def test_jitter_scales_within_the_band(self, clock):
        self.pending_then_done(
            clock, n_pending=3, rng=FixedJitter(POLL_JITTER_LOW)
        )
        expected = [
            POLL_INITIAL_S * POLL_JITTER_LOW,
            POLL_INITIAL_S * POLL_GROWTH * POLL_JITTER_LOW,
            POLL_INITIAL_S * POLL_GROWTH**2 * POLL_JITTER_LOW,
        ]
        assert clock.sleeps == pytest.approx(expected)

    def test_default_rng_jitter_stays_in_band(self, clock):
        client = scripted_client({
            ("GET", "/v1/jobs/"): [{"status": "pending"}] * 6 + [{"status": "done"}],
            ("POST", "/v1/submit"): [{"job": "k"}],
            ("GET", "/v1/result/"): [{"ok": True}],
        }, clock, rng=ServeClient("http://x").rng)
        client.run({"r": 1}, timeout=120)
        delay = POLL_INITIAL_S
        for slept in clock.sleeps:
            assert POLL_JITTER_LOW * delay - 1e-12 <= slept <= delay + 1e-12
            delay = min(delay * POLL_GROWTH, POLL_MAX_S)

    def test_never_polls_or_sleeps_past_the_deadline(self, clock):
        client = scripted_client({
            ("GET", "/v1/jobs/"): [{"status": "pending"}],
            ("POST", "/v1/submit"): [{"job": "k"}],
        }, clock)
        with pytest.raises(TimeoutError, match="not done after"):
            client.run({"r": 1}, timeout=2.0)
        assert clock.now - 1000.0 <= 2.0 + 1e-9
        # Every status probe happened strictly before the deadline.
        polls = [t for m, p, t in client.calls if p.startswith("/v1/jobs/")]
        assert all(t <= 1000.0 + 2.0 for t in polls)

    def test_timeout_raised_before_a_sleep_that_cannot_complete(self, clock):
        client = scripted_client({
            ("GET", "/v1/jobs/"): [{"status": "pending"}],
            ("POST", "/v1/submit"): [{"job": "k"}],
        }, clock)
        with pytest.raises(TimeoutError):
            client.run({"r": 1}, timeout=0.5)
        # The final wake-up found the deadline passed and raised instead
        # of sleeping again: total virtual time never exceeds timeout.
        assert sum(clock.sleeps) <= 0.5 + 1e-9

    def test_explicit_poll_interval_seeds_the_backoff(self, clock):
        self.pending_then_done(clock, n_pending=2)
        first_default = clock.sleeps[0]
        clock.sleeps = []
        client = scripted_client({
            ("GET", "/v1/jobs/"): [{"status": "pending"}] * 2 + [{"status": "done"}],
            ("POST", "/v1/submit"): [{"job": "k"}],
            ("GET", "/v1/result/"): [{"ok": True}],
        }, clock)
        client.run({"r": 1}, timeout=60, poll_interval=0.2)
        assert first_default == pytest.approx(POLL_INITIAL_S)
        assert clock.sleeps[0] == pytest.approx(0.2)
        assert clock.sleeps[1] == pytest.approx(0.4)


class TestTerminalStates:
    def test_failed_job_raises_job_failed(self, clock):
        client = scripted_client({
            ("POST", "/v1/submit"): [{"job": "k"}],
            ("GET", "/v1/jobs/"): [
                {"status": "failed", "error": "boom"},
            ],
        }, clock)
        with pytest.raises(JobFailed, match="boom"):
            client.run({"r": 1}, timeout=10)

    def test_vanished_job_raises_client_error(self, clock):
        client = scripted_client({
            ("POST", "/v1/submit"): [{"job": "k"}],
            ("GET", "/v1/jobs/"): [{"status": "unknown"}],
        }, clock)
        with pytest.raises(ClientError, match="disappeared"):
            client.run({"r": 1}, timeout=10)
