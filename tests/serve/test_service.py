"""Tests for the service core: dedup, batching, caching, drain."""

import threading

import pytest

from repro.obs import hist_stats
from repro.serve.schema import parse_request
from repro.serve.service import (
    QueueFull,
    ServeConfig,
    ServiceDraining,
    SimService,
)

K_STEPS = 3


def body(bs=0.3, nbs=0.6, **overrides):
    payload = {
        "kind": "point",
        "kernel": {"rows": 1, "cols": 1, "k_steps": K_STEPS},
        "machine": {"preset": "save"},
        "point": [bs, nbs],
    }
    payload.update(overrides)
    return {key: value for key, value in payload.items() if value is not None}


def make_service(tmp_path, **config_overrides):
    defaults = dict(store_dir=tmp_path, batch_window_s=0.0, drain_timeout_s=30.0)
    defaults.update(config_overrides)
    return SimService(ServeConfig(**defaults))


def counter(service, name):
    return service.metrics.snapshot()["counters"].get(name, 0)


class TestLifecycle:
    def test_point_round_trip(self, tmp_path):
        with make_service(tmp_path) as service:
            job, outcome = service.submit(parse_request(body()))
            assert outcome == "accepted"
            assert job.wait(30)
            assert job.state == "done"
            assert len(job.payload["values"]) == 1
            assert job.payload["values"][0] > 0

    def test_fast_engine_round_trip(self, tmp_path):
        with make_service(tmp_path) as service:
            job, outcome = service.submit(parse_request(body(engine="fast")))
            assert outcome == "accepted"
            assert job.wait(30)
            assert job.state == "done"
            assert job.payload["engine"] == "fast"
            assert job.payload["values"][0] > 0

    def test_engine_tiers_do_not_share_cache_entries(self, tmp_path):
        # An exact result must never be served for a fast request (or
        # vice versa): the engine tag is part of the fingerprint.
        with make_service(tmp_path) as service:
            exact_job, _ = service.submit(parse_request(body()))
            assert exact_job.wait(30)
            fast_job, outcome = service.submit(
                parse_request(body(engine="fast"))
            )
            assert outcome == "accepted"  # not "cached"
            assert fast_job.key != exact_job.key
            assert fast_job.wait(30)
            assert fast_job.payload["engine"] == "fast"
            assert exact_job.payload["engine"] == "exact"

    def test_sweep_round_trip(self, tmp_path):
        with make_service(tmp_path) as service:
            request = parse_request(
                body(kind="sweep", point=None, levels=[0.0, 0.9])
            )
            job, _ = service.submit(request)
            assert job.wait(30)
            assert len(job.payload["values"]) == 4
            assert job.payload["levels"] == [0.0, 0.9]

    def test_close_drains_queued_work(self, tmp_path):
        service = make_service(tmp_path).start()
        service.pause()
        job, _ = service.submit(parse_request(body()))
        assert service.close()  # drain resumes the dispatcher
        assert job.state == "done"

    def test_status_transitions(self, tmp_path):
        with make_service(tmp_path) as service:
            service.pause()
            job, _ = service.submit(parse_request(body()))
            assert service.status(job.key)["status"] == "pending"
            service.resume()
            assert job.wait(30)
            assert service.status(job.key)["status"] == "done"
        assert service.status(job.key)["status"] == "done"  # from the store

    def test_unknown_key(self, tmp_path):
        with make_service(tmp_path) as service:
            assert service.status("f" * 24)["status"] == "unknown"
            assert service.result("f" * 24) is None


class TestDedup:
    def test_concurrent_identical_submits_share_one_job(self, tmp_path):
        with make_service(tmp_path) as service:
            service.pause()
            request = parse_request(body())
            first, outcome_a = service.submit(request)
            second, outcome_b = service.submit(parse_request(body()))
            assert (outcome_a, outcome_b) == ("accepted", "dedup")
            assert second is first
            service.resume()
            assert first.wait(30)
            assert counter(service, "serve.dedup_hits") == 1
            assert counter(service, "serve.simulated_points") == 1
            # Both "clients" read the same payload object: bit-identical.
            assert second.payload is first.payload

    def test_concurrent_submits_from_threads(self, tmp_path):
        with make_service(tmp_path) as service:
            service.pause()
            results = []
            barrier = threading.Barrier(4)

            def submit():
                barrier.wait()
                results.append(service.submit(parse_request(body())))

            threads = [threading.Thread(target=submit) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.resume()
            jobs = {id(job) for job, _ in results}
            assert len(jobs) == 1
            assert sorted(outcome for _, outcome in results) == [
                "accepted", "dedup", "dedup", "dedup",
            ]
            assert counter(service, "serve.dedup_hits") == 3


class TestBatching:
    def test_queued_requests_coalesce_into_one_batch(self, tmp_path):
        with make_service(tmp_path) as service:
            service.pause()
            a, _ = service.submit(parse_request(body(0.0, 0.0)))
            b, _ = service.submit(parse_request(body(0.0, 0.9)))
            c, _ = service.submit(parse_request(body(0.9, 0.9)))
            service.resume()
            assert a.wait(30) and b.wait(30) and c.wait(30)
            assert counter(service, "serve.batches") == 1
            width = hist_stats(
                service.metrics.snapshot()["histograms"]["serve.batch_width"]
            )
            assert width["max"] >= 3

    def test_overlapping_points_simulated_once(self, tmp_path):
        with make_service(tmp_path) as service:
            service.pause()
            point, _ = service.submit(parse_request(body(0.0, 0.0)))
            sweep, _ = service.submit(
                parse_request(body(kind="sweep", point=None, levels=[0.0, 0.9]))
            )
            service.resume()
            assert point.wait(30) and sweep.wait(30)
            # 1 + 4 requested points, but (0.0, 0.0) is shared.
            assert counter(service, "serve.simulated_points") == 4
            assert point.payload["values"][0] == sweep.payload["values"][0]

    def test_distinct_machines_split_batches(self, tmp_path):
        with make_service(tmp_path) as service:
            service.pause()
            a, _ = service.submit(parse_request(body()))
            b, _ = service.submit(
                parse_request(body(machine={"preset": "baseline"}))
            )
            service.resume()
            assert a.wait(30) and b.wait(30)
            assert counter(service, "serve.batches") == 2


class TestCaching:
    def test_resubmit_is_served_from_store(self, tmp_path):
        with make_service(tmp_path) as service:
            job, _ = service.submit(parse_request(body()))
            assert job.wait(30)
            again, outcome = service.submit(parse_request(body()))
            assert outcome == "cached"
            assert again.state == "done"
            assert again.payload == job.payload
            assert counter(service, "serve.cache_hits") == 1
            assert counter(service, "serve.simulated_points") == 1

    def test_restart_serves_from_disk_without_resimulating(self, tmp_path):
        with make_service(tmp_path) as service:
            job, _ = service.submit(parse_request(body()))
            assert job.wait(30)
            payload = job.payload
        with make_service(tmp_path) as reborn:
            again, outcome = reborn.submit(parse_request(body()))
            assert outcome == "cached"
            assert again.payload == payload
            assert counter(reborn, "serve.simulated_points") == 0


class TestBackpressureAndDrain:
    def test_queue_full_raises(self, tmp_path):
        with make_service(tmp_path, queue_limit=1, retry_after_s=2.5) as service:
            service.pause()
            service.submit(parse_request(body(0.0, 0.0)))
            with pytest.raises(QueueFull) as exc:
                service.submit(parse_request(body(0.9, 0.9)))
            assert exc.value.retry_after_s == 2.5
            assert counter(service, "serve.rejected") == 1
            service.resume()

    def test_duplicate_of_queued_job_bypasses_backpressure(self, tmp_path):
        with make_service(tmp_path, queue_limit=1) as service:
            service.pause()
            first, _ = service.submit(parse_request(body()))
            twin, outcome = service.submit(parse_request(body()))
            assert outcome == "dedup" and twin is first
            service.resume()

    def test_draining_rejects_new_work(self, tmp_path):
        service = make_service(tmp_path).start()
        assert service.drain()
        with pytest.raises(ServiceDraining):
            service.submit(parse_request(body()))
        assert service.health()["status"] == "draining"
        service.close()

    def test_failed_jobs_report_their_error(self, tmp_path):
        class ExplodingExecutor:
            def map(self, jobs):
                raise RuntimeError("boom")

            def close(self):
                pass

        service = SimService(
            ServeConfig(store_dir=tmp_path), executor=ExplodingExecutor()
        ).start()
        try:
            job, _ = service.submit(parse_request(body()))
            assert job.wait(30)
            assert job.state == "failed"
            assert "boom" in job.error
            assert service.status(job.key)["status"] == "failed"
            assert counter(service, "serve.failures") == 1
            # A retry after the failure is accepted fresh, not deduped.
            retry, outcome = service.submit(parse_request(body()))
            assert outcome == "accepted"
        finally:
            service.close()
