"""Tests for the serve/submit/store CLI wiring."""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.serve.cli import build_request
from repro.serve.schema import RequestError, parse_request
from repro.serve.store import ResultStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def submit_args(**overrides):
    defaults = dict(
        tile="2x2", pattern="explicit", precision="fp32", machine="save",
        point="0.3,0.6", levels=None, k_steps=4, seed=0, metric="ns_per_fma",
        engine="exact",
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestBuildRequest:
    def test_point_round_trips_through_parse(self):
        request = parse_request(build_request(submit_args()))
        assert request.points == ((0.3, 0.6),)
        assert request.rows == 2 and request.cols == 2

    def test_sweep(self):
        request = parse_request(
            build_request(submit_args(point=None, levels="0.0,0.9"))
        )
        assert request.kind == "sweep"
        assert request.levels == (0.0, 0.9)

    def test_engine_flag_round_trips(self):
        request = parse_request(build_request(submit_args(engine="fast")))
        assert request.engine == "fast"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"point": None, "levels": None},
            {"point": "0.3,0.6", "levels": "0.0,0.9"},
            {"tile": "2by2"},
            {"point": "0.3"},
            {"point": "a,b"},
        ],
    )
    def test_bad_flags_rejected(self, overrides):
        with pytest.raises(RequestError):
            build_request(submit_args(**overrides))


class TestStoreCommand:
    def test_stats_and_gc(self, tmp_path, capsys):
        store = ResultStore(tmp_path)
        store.put("a" * 24, {"values": [1.0]})
        (tmp_path / ("b" * 24 + ".json")).write_text("{torn")

        assert main(["store", "stats", "--store", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2 and stats["damaged"] == 1

        assert main(["store", "gc", "--store", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out) == {"removed": 1, "kept": 1}


class TestSubmitCommand:
    def test_unreachable_server_exits_1(self, capsys):
        rc = main([
            "submit", "--port", "1", "--point", "0.1,0.2", "--timeout", "1",
        ])
        assert rc == 1
        assert "repro submit:" in capsys.readouterr().err

    def test_flag_errors_exit_2(self, capsys):
        assert main(["submit", "--tile", "2by2", "--point", "0.1,0.2"]) == 2
        assert "--tile" in capsys.readouterr().err


@pytest.mark.slow
class TestServeProcess:
    """One real round-trip through ``repro serve`` as a subprocess."""

    def test_serve_submit_sigterm_drain(self, tmp_path):
        port = _free_port()
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port), "--store", str(tmp_path / "store"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            _wait_healthy(port)
            reply = subprocess.run(
                [
                    sys.executable, "-m", "repro", "submit",
                    "--port", str(port), "--point", "0.3,0.6",
                    "--k-steps", "3", "--tile", "1x1", "--timeout", "60",
                ],
                env=env, capture_output=True, text=True, timeout=120,
            )
            assert reply.returncode == 0, reply.stderr
            payload = json.loads(reply.stdout)
            assert payload["values"][0] > 0
            server.send_signal(signal.SIGTERM)
            out, _ = server.communicate(timeout=60)
            assert server.returncode == 0, out
            assert "drained" in out
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(port, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=2
            ):
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError("service never became healthy")
