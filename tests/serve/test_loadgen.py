"""Loadgen traffic mixes: deterministic builds, mix semantics, live replay."""

import json

import pytest

from repro.serve.loadgen import (
    MIXES,
    build_requests,
    loadgen_main,
    run_loadgen,
    self_hosted_server,
)
from repro.serve.schema import parse_request


class TestBuildRequests:
    @pytest.mark.parametrize("mix", MIXES)
    def test_same_arguments_replay_identical_traffic(self, mix):
        first = build_requests(mix, 12, k_steps=2, engine="fast")
        second = build_requests(mix, 12, k_steps=2, engine="fast")
        assert first == second
        assert len(first) == 12

    @pytest.mark.parametrize("mix", MIXES)
    def test_every_request_parses(self, mix):
        for request in build_requests(mix, 8):
            parsed = parse_request(request)
            assert parsed.engine == "fast"

    def test_hot_mix_cycles_a_tiny_working_set(self):
        requests = build_requests("hot", 16)
        prints = {parse_request(r).fingerprint() for r in requests}
        assert len(prints) == 4  # the cycling working set, nothing more

    def test_scan_mix_shares_one_batch_key_with_unique_points(self):
        requests = build_requests("scan", 15)
        parsed = [parse_request(r) for r in requests]
        assert len({p.batch_key() for p in parsed}) == 1
        assert len({p.fingerprint() for p in parsed}) == 15

    def test_cold_mix_is_unique_in_both_dimensions(self):
        parsed = [parse_request(r) for r in build_requests("cold", 10)]
        assert len({p.fingerprint() for p in parsed}) == 10
        assert len({p.batch_key() for p in parsed}) == 10

    def test_bad_arguments_are_rejected(self):
        with pytest.raises(ValueError, match="count must be positive"):
            build_requests("hot", 0)
        with pytest.raises(ValueError, match="unknown mix"):
            build_requests("warm", 4)


class TestLiveReplay:
    def test_run_loadgen_against_a_self_hosted_server(self, tmp_path):
        with self_hosted_server(str(tmp_path / "store"), jobs=1) as base_url:
            results = run_loadgen(
                base_url,
                mixes=("hot", "cold"),
                requests_per_mix=6,
                concurrency=3,
                k_steps=2,
                timeout=60.0,
            )
        assert set(results) == {"hot", "cold"}
        for stats in results.values():
            assert stats["completed"] == stats["requests"] == 6
            assert stats["errors"] == 0
            assert stats["throughput_rps"] > 0
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["p99_ms"]


class TestCli:
    def test_self_hosted_run_writes_json_stats(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        code = loadgen_main([
            "--mix", "scan", "--requests", "5", "--concurrency", "2",
            "--k-steps", "2", "--json", str(stats_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert " scan: 5/5 ok, " in out
        stats = json.loads(stats_path.read_text())
        assert stats["scan"]["completed"] == 5
        assert stats["scan"]["errors"] == 0

    def test_nonpositive_counts_are_exit_2(self, capsys):
        assert loadgen_main(["--requests", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_unreachable_url_is_exit_2(self, capsys):
        code = loadgen_main([
            "--url", "http://127.0.0.1:9", "--timeout", "1",
        ])
        assert code == 2
        assert "never became healthy" in capsys.readouterr().err
