"""Full service lifecycle over a real socket (ephemeral port).

The acceptance scenario lives here: concurrent identical submits
trigger exactly one simulation and every client reads byte-identical
result bodies; a resubmit against a *restarted* service is served from
the on-disk store without re-simulating; the queue backpressures with
429 + ``Retry-After``; shutdown drains cleanly.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.client import Backpressure, ClientError, ServeClient
from repro.serve.http import make_server
from repro.serve.service import ServeConfig, SimService

K_STEPS = 3


def body(bs=0.3, nbs=0.6, **overrides):
    payload = {
        "kind": "point",
        "kernel": {"rows": 1, "cols": 1, "k_steps": K_STEPS},
        "machine": {"preset": "save"},
        "point": [bs, nbs],
    }
    payload.update(overrides)
    return {key: value for key, value in payload.items() if value is not None}


class LiveService:
    """A service + HTTP server on an ephemeral port, as a context."""

    def __init__(self, tmp_path, **config_overrides):
        defaults = dict(
            port=0, store_dir=tmp_path, batch_window_s=0.0, drain_timeout_s=30.0
        )
        defaults.update(config_overrides)
        self.service = SimService(ServeConfig(**defaults))
        self.server = None
        self.thread = None
        self.base_url = None

    def __enter__(self):
        self.service.start()
        self.server = make_server(self.service)
        host, port = self.server.server_address[:2]
        self.base_url = f"http://{host}:{port}"
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        return self

    def __exit__(self, *exc_info):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)
        self.service.close()

    def client(self):
        return ServeClient(self.base_url)

    def raw_result(self, key):
        """The exact bytes of a result body (bit-identity checks)."""
        with urllib.request.urlopen(
            f"{self.base_url}/v1/result/{key}", timeout=10
        ) as reply:
            return reply.read()

    def counter(self, name):
        return self.service.metrics.snapshot()["counters"].get(name, 0)


class TestLifecycle:
    def test_acceptance_scenario(self, tmp_path):
        request = body()
        with LiveService(tmp_path) as live:
            client = live.client()
            assert client.healthz()["status"] == "ok"

            # Two concurrent identical submits while the dispatcher is
            # held: exactly one simulation, one dedup hit.
            live.service.pause()
            tickets = []
            barrier = threading.Barrier(2)

            def submit():
                barrier.wait()
                tickets.append(client.submit(request))

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            keys = {ticket["job"] for ticket in tickets}
            assert len(keys) == 1
            assert live.counter("serve.dedup_hits") == 1
            key = keys.pop()
            live.service.resume()
            while client.poll(key)["status"] not in ("done", "failed"):
                time.sleep(0.01)
            payload = client.result(key)
            assert payload["key"] == key
            assert live.counter("serve.simulated_points") == 1
            # Both clients read the result: byte-identical bodies.
            assert live.raw_result(key) == live.raw_result(key)

            metrics = client.metrics()
            assert metrics["counters"]["serve.batches"] == 1
            assert "serve.batch_width" in metrics["histograms"]

        # Restart on the same store: served from disk, no simulation.
        with LiveService(tmp_path) as reborn:
            ticket = reborn.client().submit(request)
            assert ticket["outcome"] == "cached"
            assert ticket["status"] == "done"
            assert reborn.counter("serve.simulated_points") == 0
            again = reborn.client().result(ticket["job"])
            assert again == payload

    def test_batching_width_over_http(self, tmp_path):
        with LiveService(tmp_path) as live:
            client = live.client()
            live.service.pause()
            keys = [
                client.submit(body(0.0, 0.3 * i))["job"] for i in range(3)
            ]
            live.service.resume()
            for key in keys:
                while client.poll(key)["status"] not in ("done", "failed"):
                    time.sleep(0.01)
            width = client.metrics()["histograms"]["serve.batch_width"]
            assert width["max"] >= 3
            assert live.counter("serve.batches") == 1


class TestHttpErrors:
    def test_bad_request_is_400(self, tmp_path):
        with LiveService(tmp_path) as live:
            with pytest.raises(ClientError) as exc:
                live.client().submit({"kind": "bogus"})
            assert exc.value.status == 400

    def test_unknown_paths_are_404(self, tmp_path):
        with LiveService(tmp_path) as live:
            with pytest.raises(ClientError) as exc:
                live.client()._call("GET", "/v1/nope")
            assert exc.value.status == 404

    def test_unknown_result_is_404(self, tmp_path):
        with LiveService(tmp_path) as live:
            with pytest.raises(ClientError) as exc:
                live.client().result("f" * 24)
            assert exc.value.status == 404

    def test_pending_result_is_409(self, tmp_path):
        with LiveService(tmp_path) as live:
            live.service.pause()
            key = live.client().submit(body())["job"]
            with pytest.raises(ClientError) as exc:
                live.client().result(key)
            assert exc.value.status == 409
            live.service.resume()

    def test_backpressure_is_429_with_retry_after(self, tmp_path):
        with LiveService(tmp_path, queue_limit=1, retry_after_s=3.0) as live:
            live.service.pause()
            live.client().submit(body(0.0, 0.0))
            request = urllib.request.Request(
                f"{live.base_url}/v1/submit",
                data=json.dumps(body(0.9, 0.9)).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(request, timeout=10)
            assert exc.value.code == 429
            assert exc.value.headers["Retry-After"] == "3"
            # The client maps it to Backpressure with the hint.
            with pytest.raises(Backpressure) as bp:
                live.client().submit(body(0.9, 0.9))
            assert bp.value.retry_after_s == 3.0
            live.service.resume()

    def test_draining_healthz_is_503(self, tmp_path):
        with LiveService(tmp_path) as live:
            assert live.service.drain()
            assert live.client().healthz()["status"] == "draining"
            with pytest.raises(Backpressure):
                live.client().submit(body())
