"""Tests for the service request model: validation + fingerprints."""

import pytest

from repro.core.config import CoalescingScheme, SAVE_2VPU
from repro.kernels.tiling import BroadcastPattern, Precision
from repro.serve.schema import (
    SERVE_SCHEMA_VERSION,
    RequestError,
    parse_request,
)


def point_body(**overrides):
    body = {
        "kind": "point",
        "kernel": {"rows": 2, "cols": 2, "k_steps": 4},
        "machine": {"preset": "save"},
        "point": [0.3, 0.6],
    }
    body.update(overrides)
    return {key: value for key, value in body.items() if value is not None}


class TestParsing:
    def test_point_defaults(self):
        request = parse_request(point_body())
        assert request.kind == "point"
        assert request.pattern == BroadcastPattern.EXPLICIT
        assert request.precision == Precision.FP32
        assert request.metric == "ns_per_fma"
        assert request.points == ((0.3, 0.6),)
        assert request.levels is None

    def test_sweep_expands_row_major(self):
        request = parse_request(
            point_body(kind="sweep", point=None, levels=[0.0, 0.9])
        )
        assert request.points == ((0.0, 0.0), (0.0, 0.9), (0.9, 0.0), (0.9, 0.9))
        assert request.levels == (0.0, 0.9)

    def test_sweep_point_order_matches_surface_build(self):
        # SparsitySurface.build iterates `for bs in levels for nbs in
        # levels`; the service must agree so values reshape into the
        # same grid.
        levels = (0.0, 0.3, 0.9)
        request = parse_request(
            point_body(kind="sweep", point=None, levels=list(levels))
        )
        expected = tuple((bs, nbs) for bs in levels for nbs in levels)
        assert request.points == expected

    def test_machine_overrides_resolve(self):
        request = parse_request(
            point_body(
                machine={
                    "preset": "save",
                    "save": {"coalescing": "vc", "lane_wise_dependence": False},
                    "core": {"num_vpus": 1},
                }
            )
        )
        machine = request.machine()
        assert machine.save.coalescing == CoalescingScheme.VERTICAL
        assert machine.save.lane_wise_dependence is False
        assert machine.core.num_vpus == 1

    def test_default_machine_is_save(self):
        body = point_body()
        del body["machine"]
        assert parse_request(body).machine() == SAVE_2VPU

    def test_jobs_one_per_point(self):
        request = parse_request(
            point_body(kind="sweep", point=None, levels=[0.0, 0.9])
        )
        jobs = request.jobs()
        assert len(jobs) == 4
        assert jobs[1].config.broadcast_sparsity == 0.0
        assert jobs[1].config.nonbroadcast_sparsity == 0.9
        assert all(job.metric == "ns_per_fma" for job in jobs)


class TestValidation:
    @pytest.mark.parametrize(
        "mutate",
        [
            {"kind": "diagonal"},
            {"metric": "flops"},
            {"point": [0.3]},
            {"point": [0.3, 1.5]},
            {"bogus": 1},
            {"kernel": {"rows": 2, "cols": 2, "bogus": 1}},
            {"kernel": {"rows": 0, "cols": 2}},
            {"kernel": {"rows": 2, "cols": 2, "k_steps": 0}},
            {"machine": {"preset": "tpu"}},
            {"machine": {"preset": "save", "save": {"bogus": 1}}},
            {"machine": {"preset": "save", "save": {"coalescing": "zigzag"}}},
            {"machine": {"preset": "save", "save": {"rotation_states": 2}}},
            {"engine": "turbo"},
        ],
    )
    def test_bad_bodies_rejected(self, mutate):
        with pytest.raises(RequestError):
            parse_request(point_body(**mutate))

    def test_sweep_rejects_point_field(self):
        with pytest.raises(RequestError, match="point"):
            parse_request(point_body(kind="sweep", levels=[0.0, 0.9]))

    def test_point_rejects_levels_field(self):
        with pytest.raises(RequestError, match="levels"):
            parse_request(point_body(levels=[0.0]))

    def test_duplicate_levels_rejected(self):
        with pytest.raises(RequestError, match="duplicates"):
            parse_request(point_body(kind="sweep", point=None, levels=[0.3, 0.3]))

    def test_non_object_body_rejected(self):
        with pytest.raises(RequestError):
            parse_request([1, 2, 3])


class TestFingerprints:
    def test_identical_requests_identical_fingerprints(self):
        a = parse_request(point_body())
        # Same content, different field order / float spelling.
        b = parse_request(
            {
                "point": [0.30, 0.60],
                "machine": {"preset": "save"},
                "kernel": {"k_steps": 4, "cols": 2, "rows": 2},
                "kind": "point",
            }
        )
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_requests_distinct_fingerprints(self):
        a = parse_request(point_body())
        b = parse_request(point_body(point=[0.3, 0.7]))
        c = parse_request(point_body(machine={"preset": "baseline"}))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3

    def test_schema_version_in_canonical(self):
        assert parse_request(point_body()).canonical()["schema"] == (
            SERVE_SCHEMA_VERSION
        )

    def test_engine_tiers_never_share_a_fingerprint(self):
        # The identical point on different engine tiers must not
        # collide in the result store: the tag is part of the
        # canonical form.
        exact = parse_request(point_body())
        fast = parse_request(point_body(engine="fast"))
        analytic = parse_request(point_body(engine="analytic"))
        prints = {
            exact.fingerprint(), fast.fingerprint(), analytic.fingerprint()
        }
        assert len(prints) == 3
        assert exact.engine == "exact"  # the default tier
        assert fast.canonical()["engine"] == "fast"

    def test_engine_reaches_point_jobs(self):
        jobs = parse_request(point_body(engine="fast")).jobs()
        assert all(job.engine == "fast" for job in jobs)

    def test_batch_key_ignores_points_only(self):
        a = parse_request(point_body())
        b = parse_request(point_body(point=[0.9, 0.0]))
        sweep = parse_request(point_body(kind="sweep", point=None, levels=[0.3]))
        other = parse_request(point_body(machine={"preset": "baseline"}))
        assert a.batch_key() == b.batch_key() == sweep.batch_key()
        assert a.batch_key() != other.batch_key()
        assert a.fingerprint() != b.fingerprint()
