"""Tests for the content-addressed result store."""

import json

from repro.serve.schema import SERVE_SCHEMA_VERSION
from repro.serve.store import ResultStore

KEY = "a" * 24
PAYLOAD = {"schema": SERVE_SCHEMA_VERSION, "key": KEY, "values": [1.5, 2.5]}


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) == PAYLOAD

    def test_fresh_instance_reads_disk(self, tmp_path):
        ResultStore(tmp_path).put(KEY, PAYLOAD)
        assert ResultStore(tmp_path).get(KEY) == PAYLOAD

    def test_memo_returns_same_object(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        assert store.get(KEY) is store.get(KEY)

    def test_miss_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("b" * 24) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store.flush()
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.suffix not in (".json", ".lock")]
        assert leftovers == []


class TestDamageAndStaleness:
    def test_stale_schema_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        envelope = json.loads(store.path(KEY).read_text())
        envelope["schema"] = SERVE_SCHEMA_VERSION - 1
        store.path(KEY).write_text(json.dumps(envelope))
        assert ResultStore(tmp_path).get(KEY) is None

    def test_torn_json_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        raw = store.path(KEY).read_text()
        store.path(KEY).write_text(raw[: len(raw) // 2])
        assert ResultStore(tmp_path).get(KEY) is None

    def test_key_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        other = "c" * 24
        store.path(KEY).rename(store.path(other))
        assert ResultStore(tmp_path).get(other) is None


class TestMaintenance:
    def _seed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, PAYLOAD)
        store.put("b" * 24, PAYLOAD | {"key": "b" * 24})
        # One stale-schema entry and one damaged entry.
        stale = json.loads(store.path(KEY).read_text()) | {"schema": 0}
        store.path("d" * 24).write_text(json.dumps(stale))
        store.path("e" * 24).write_text("{not json")
        return store

    def test_stats(self, tmp_path):
        stats = self._seed(tmp_path).stats()
        assert stats["entries"] == 4
        assert stats["stale"] == 1
        assert stats["damaged"] == 1
        assert stats["by_schema"][str(SERVE_SCHEMA_VERSION)] == 2
        assert stats["bytes"] > 0

    def test_gc_drops_stale_and_damaged(self, tmp_path):
        store = self._seed(tmp_path)
        assert store.gc() == {"removed": 2, "kept": 2}
        assert store.get(KEY) == PAYLOAD  # survivors still readable

    def test_gc_max_age(self, tmp_path):
        store = self._seed(tmp_path)
        assert store.gc(max_age_s=0.0) == {"removed": 4, "kept": 0}
        assert store.get(KEY) is None

    def test_gc_clears_memo(self, tmp_path):
        store = self._seed(tmp_path)
        store.get(KEY)
        store.gc(max_age_s=0.0)
        assert store.get(KEY) is None
