"""Tests for register-tile geometry."""

import pytest

from repro.kernels.tiling import BroadcastPattern, RegisterTile


class TestRegisterTile:
    def test_accumulator_count(self):
        assert RegisterTile(4, 6).accumulators == 24
        assert RegisterTile(28, 1, BroadcastPattern.EMBEDDED).accumulators == 28

    def test_register_budget_explicit(self):
        tile = RegisterTile(4, 6, BroadcastPattern.EXPLICIT)
        assert tile.registers_needed == 24 + 6 + 2

    def test_register_budget_embedded(self):
        tile = RegisterTile(28, 1, BroadcastPattern.EMBEDDED)
        assert tile.registers_needed == 30

    def test_rejects_over_budget(self):
        # 4x7 explicit needs 28+7+2=37 > 32.
        with pytest.raises(ValueError):
            RegisterTile(4, 7, BroadcastPattern.EXPLICIT)

    def test_28x1_explicit_fits(self):
        # 28 + 1 + 2 = 31 <= 32.
        assert RegisterTile(28, 1, BroadcastPattern.EXPLICIT).registers_needed == 31

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RegisterTile(0, 1)
        with pytest.raises(ValueError):
            RegisterTile(1, -1)

    def test_dependence_distance(self):
        assert RegisterTile(7, 3, BroadcastPattern.EMBEDDED).dependence_distance == 21

    def test_effective_cw_paper_kernels(self):
        # Fig. 18a kernel: 28 accumulators, reuse 28 -> effective CW 1.
        fig18a = RegisterTile(28, 1, BroadcastPattern.EMBEDDED)
        assert fig18a.b_vector_reuse == 28
        assert fig18a.effective_cw == 1
        # Fig. 18b kernel: 21 accumulators, reuse 7 -> effective CW 3.
        fig18b = RegisterTile(7, 3, BroadcastPattern.EMBEDDED)
        assert fig18b.b_vector_reuse == 7
        assert fig18b.effective_cw == 3

    def test_fmas_per_step(self):
        assert RegisterTile(4, 6).fmas_per_step() == 24
