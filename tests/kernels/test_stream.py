"""The streaming trace contract: streams equal materialized traces.

The tentpole invariant is bit-for-bit equivalence — simulating a
chunked :class:`GeneratorTraceStream` must produce exactly the result
of simulating the fully materialized :class:`KernelTrace`, on every
generator and every engine tier.  These tests also pin the contract's
edges: restartable passes, per-pass stats, chunk sizing, protocol
conformance, and the ``.uops`` deprecation.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.core.config import BASELINE_2VPU, SAVE_2VPU
from repro.core.pipeline import simulate
from repro.fastsim import TraceArrays, simulate_arrays, simulate_stream
from repro.kernels import (
    GemmKernelConfig,
    KernelTrace,
    count_uops,
    generate_gemm_stream,
    generate_trace,
    trace_stream,
)
from repro.kernels.gemm import generate_gemm_trace
from repro.kernels.sparsetrain import SparseTrainConfig
from repro.kernels.library import get_kernel
from repro.kernels.stream import GeneratorTraceStream, TraceStream, ensure_stream
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def gemm_config(**overrides):
    defaults = dict(
        name="stream-t",
        tile=RegisterTile(2, 2, BroadcastPattern.EXPLICIT),
        k_steps=6,
        broadcast_sparsity=0.4,
        nonbroadcast_sparsity=0.5,
        seed=11,
    )
    defaults.update(overrides)
    return GemmKernelConfig(**defaults)


GEMM_CONFIGS = [
    pytest.param(gemm_config(), id="gemm-explicit"),
    pytest.param(
        gemm_config(
            tile=RegisterTile(2, 2, BroadcastPattern.EMBEDDED),
            precision=Precision.MIXED,
        ),
        id="gemm-embedded-mixed",
    ),
    pytest.param(gemm_config(use_write_masks=True), id="gemm-masked"),
]

#: All generators; the fast tier only accepts GEMM configs.
CONFIGS = GEMM_CONFIGS + [
    pytest.param(SparseTrainConfig(gemm=gemm_config()), id="sparsetrain"),
]


def result_fields(result):
    fields = dataclasses.asdict(result)
    fields.pop("final_state", None)
    return fields


class TestStreamEqualsMaterialized:
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize(
        "machine", [SAVE_2VPU, BASELINE_2VPU], ids=["save", "baseline"]
    )
    def test_exact_engine_bit_for_bit(self, config, machine):
        stream = trace_stream(config)
        trace = trace_stream(config).to_trace()
        streamed = simulate(stream, machine, keep_state=True)
        materialized = simulate(trace, machine, keep_state=True)
        assert result_fields(streamed) == result_fields(materialized)
        np.testing.assert_array_equal(
            trace.result_matrix(streamed.final_state),
            trace.result_matrix(materialized.final_state),
        )

    @pytest.mark.parametrize("config", GEMM_CONFIGS)
    def test_fast_engine_bit_for_bit(self, config):
        from_stream = TraceArrays.from_stream(trace_stream(config))
        from_trace = TraceArrays.from_config(config)
        assert simulate_stream(
            trace_stream(config), SAVE_2VPU
        ) == simulate_arrays(from_trace, SAVE_2VPU)
        np.testing.assert_array_equal(from_stream.a_nz, from_trace.a_nz)
        np.testing.assert_array_equal(from_stream.b_nz, from_trace.b_nz)
        np.testing.assert_array_equal(
            from_stream.ml_count, from_trace.ml_count
        )

    @pytest.mark.parametrize("chunk", [1, 3, 37, 10_000])
    def test_any_chunk_size_same_uops(self, chunk):
        config = gemm_config()
        reference = trace_stream(config).materialize()
        chunked = [
            u for c in trace_stream(config).iter_uops(chunk) for u in c
        ]
        assert chunked == reference

    def test_generate_trace_matches_legacy_generator(self):
        config = gemm_config()
        via_registry = generate_trace(config)
        direct = generate_gemm_trace(config)
        assert via_registry.materialize() == direct.materialize()
        assert via_registry.memory.snapshot() == direct.memory.snapshot()


class TestRestartability:
    def test_two_passes_identical(self):
        stream = trace_stream(gemm_config())
        first = [u for c in stream.iter_uops(64) for u in c]
        second = [u for c in stream.iter_uops(64) for u in c]
        assert first == second

    def test_stats_reset_per_pass(self):
        stream = trace_stream(gemm_config())
        list(stream.iter_uops(64))
        once = dataclasses.asdict(stream.stats)
        list(stream.iter_uops(64))
        assert dataclasses.asdict(stream.stats) == once

    def test_sparsetrain_mispredictions_deterministic(self):
        config = SparseTrainConfig(gemm=gemm_config(broadcast_sparsity=0.7))
        a = trace_stream(config).materialize()
        b = trace_stream(config).materialize()
        assert a == b


class TestStreamProtocol:
    def test_kernel_trace_satisfies_protocol(self):
        trace = generate_trace(gemm_config())
        assert isinstance(trace, TraceStream)

    def test_generator_stream_satisfies_protocol(self):
        assert isinstance(
            generate_gemm_stream(gemm_config()), GeneratorTraceStream
        )
        assert isinstance(generate_gemm_stream(gemm_config()), TraceStream)

    def test_ensure_stream_passthrough(self):
        trace = generate_trace(gemm_config())
        assert ensure_stream(trace) is trace

    def test_ensure_stream_rejects_non_streams(self):
        with pytest.raises(TypeError, match="TraceStream"):
            ensure_stream(object())

    def test_to_trace_preserves_identity(self):
        stream = generate_gemm_stream(gemm_config())
        trace = stream.to_trace()
        assert isinstance(trace, KernelTrace)
        assert trace.name == stream.name
        assert trace.regions == stream.regions
        assert dataclasses.asdict(trace.stats) == dataclasses.asdict(
            count_uops(stream.materialize())
        )

    def test_invalid_chunk_rejected(self):
        stream = generate_gemm_stream(gemm_config())
        with pytest.raises(ValueError):
            next(stream.iter_uops(0))
        trace = generate_trace(gemm_config())
        with pytest.raises(ValueError):
            next(trace.iter_uops(-1))


class TestCountUopsIterable:
    def test_accepts_generator(self):
        trace = generate_trace(gemm_config())
        lazy = count_uops(u for u in trace.materialize())
        eager = count_uops(trace.materialize())
        assert dataclasses.asdict(lazy) == dataclasses.asdict(eager)


class TestDeprecatedUopsProperty:
    def test_uops_warns_and_matches_materialize(self):
        trace = generate_trace(gemm_config())
        with pytest.warns(DeprecationWarning, match="materialize"):
            legacy = trace.uops
        assert legacy == trace.materialize()

    def test_materialize_does_not_warn(self):
        trace = generate_trace(gemm_config())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            trace.materialize()


class TestRegistryDispatch:
    def test_get_kernel_by_name(self):
        assert get_kernel("resnet2_2_fwd").name == "resnet2_2_fwd"

    def test_get_kernel_spec_passthrough(self):
        spec = get_kernel("resnet2_2_fwd")
        assert get_kernel(spec) is spec

    def test_get_kernel_unknown_name_lists_library(self):
        with pytest.raises(KeyError, match="resnet2_2_fwd"):
            get_kernel("no_such_kernel")

    def test_get_kernel_rejects_other_types(self):
        with pytest.raises(TypeError):
            get_kernel(42)

    def test_trace_stream_rejects_unknown_config(self):
        with pytest.raises(TypeError, match="GemmKernelConfig"):
            trace_stream(object())
