"""Tests for the GEMM trace generator — including functional correctness
of the generated traces under the reference executor."""

import numpy as np
import pytest

from repro.isa.uops import UopKind
from repro.kernels.gemm import GemmKernelConfig, expected_c_matrix, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def make_config(
    rows=2,
    cols=2,
    pattern=BroadcastPattern.EXPLICIT,
    k_steps=8,
    precision=Precision.FP32,
    bs=0.0,
    nbs=0.0,
    masks=False,
    seed=0,
):
    return GemmKernelConfig(
        name="test",
        tile=RegisterTile(rows, cols, pattern),
        k_steps=k_steps,
        precision=precision,
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        use_write_masks=masks,
        seed=seed,
    )


class TestTraceStructure:
    def test_fma_count_explicit(self):
        trace = generate_gemm_trace(make_config(rows=3, cols=2, k_steps=10))
        assert trace.stats.fmas == 3 * 2 * 10

    def test_fma_count_embedded(self):
        trace = generate_gemm_trace(
            make_config(rows=4, cols=1, pattern=BroadcastPattern.EMBEDDED, k_steps=5)
        )
        assert trace.stats.fmas == 20
        assert trace.stats.embedded_broadcasts == 20

    def test_explicit_uses_vbcast(self):
        trace = generate_gemm_trace(make_config(rows=3, cols=2, k_steps=10))
        assert trace.stats.broadcasts == 3 * 10
        assert trace.stats.embedded_broadcasts == 0

    def test_load_count(self):
        trace = generate_gemm_trace(make_config(rows=2, cols=3, k_steps=7))
        assert trace.stats.vector_loads == 3 * 7

    def test_store_count_matches_tile(self):
        trace = generate_gemm_trace(make_config(rows=2, cols=3))
        assert trace.stats.stores == 6

    def test_scalar_overhead(self):
        config = make_config(k_steps=5)
        trace = generate_gemm_trace(config)
        assert trace.stats.scalars == 5 * config.scalar_overhead_per_step

    def test_write_masks_emit_kmovs(self):
        trace = generate_gemm_trace(make_config(cols=2, k_steps=4, masks=True))
        assert trace.stats.kmovs == 2 * 4
        fmas = [u for u in trace.materialize() if u.is_fma()]
        assert all(u.wmask is not None for u in fmas)

    def test_no_masks_by_default(self):
        trace = generate_gemm_trace(make_config())
        fmas = [u for u in trace.materialize() if u.is_fma()]
        assert all(u.wmask is None for u in fmas)

    def test_accumulators_zeroed_first(self):
        trace = generate_gemm_trace(make_config(rows=2, cols=2))
        kinds = [u.kind for u in trace.materialize()[:4]]
        assert kinds == [UopKind.VZERO] * 4

    def test_deterministic_given_seed(self):
        a = generate_gemm_trace(make_config(bs=0.5, nbs=0.5, seed=7))
        b = generate_gemm_trace(make_config(bs=0.5, nbs=0.5, seed=7))
        assert np.array_equal(a.meta["a_matrix"], b.meta["a_matrix"])
        assert np.array_equal(b.meta["b_matrix"], b.meta["b_matrix"])

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            make_config(k_steps=0)
        with pytest.raises(ValueError):
            make_config(bs=1.5)


class TestSparsityInjection:
    def test_broadcast_sparsity_measured(self):
        trace = generate_gemm_trace(make_config(rows=8, k_steps=50, bs=0.4))
        a = trace.meta["a_matrix"]
        assert np.count_nonzero(a == 0) / a.size == pytest.approx(0.4, abs=0.01)

    def test_nonbroadcast_sparsity_measured(self):
        trace = generate_gemm_trace(make_config(cols=2, k_steps=50, nbs=0.7))
        b = trace.meta["b_matrix"]
        assert np.count_nonzero(b == 0) / b.size == pytest.approx(0.7, abs=0.01)


class TestFunctionalCorrectness:
    """The generated trace, executed in order, computes the GEMM."""

    @pytest.mark.parametrize("pattern", list(BroadcastPattern))
    @pytest.mark.parametrize("bs,nbs", [(0.0, 0.0), (0.3, 0.5), (0.8, 0.8)])
    def test_fp32_matches_linear_algebra(self, pattern, bs, nbs):
        config = make_config(rows=3, cols=2, pattern=pattern, k_steps=16, bs=bs, nbs=nbs)
        trace = generate_gemm_trace(config)
        state = trace.reference_result()
        result = trace.result_matrix(state)
        expected = expected_c_matrix(trace)
        np.testing.assert_allclose(result, expected, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("pattern", list(BroadcastPattern))
    def test_mixed_matches_linear_algebra(self, pattern):
        config = make_config(
            rows=2, cols=2, pattern=pattern, k_steps=8, precision=Precision.MIXED,
            bs=0.3, nbs=0.3,
        )
        trace = generate_gemm_trace(config)
        result = trace.result_matrix(trace.reference_result())
        expected = expected_c_matrix(trace)
        # BF16 inputs are exact in FP32; only accumulation order differs.
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-4)

    def test_write_masks_do_not_change_result(self):
        base = generate_gemm_trace(make_config(rows=3, cols=2, k_steps=12, nbs=0.5))
        masked = generate_gemm_trace(
            make_config(rows=3, cols=2, k_steps=12, nbs=0.5, masks=True)
        )
        np.testing.assert_array_equal(
            base.result_matrix(base.reference_result()),
            masked.result_matrix(masked.reference_result()),
        )

    def test_mixed_k_depth_doubles(self):
        config = make_config(precision=Precision.MIXED, k_steps=8)
        assert config.k_depth == 16
        trace = generate_gemm_trace(config)
        assert trace.meta["a_matrix"].shape[1] == 16

    def test_fresh_state_isolated(self):
        trace = generate_gemm_trace(make_config())
        first = trace.reference_result()
        # Mutating the first run's memory must not affect a second run.
        first.memory.write(trace.regions["C"].base, 999.0)
        second = trace.reference_result()
        assert second.memory.read(trace.regions["C"].base) != np.float32(999.0)


class TestLibrary:
    def test_all_library_kernels_generate(self):
        from repro.kernels.library import KERNEL_LIBRARY

        for spec in KERNEL_LIBRARY.values():
            trace = generate_gemm_trace(spec.config(k_steps=2))
            assert trace.stats.fmas == spec.tile.accumulators * 2

    def test_get_kernel_unknown(self):
        from repro.kernels.library import get_kernel

        with pytest.raises(KeyError):
            get_kernel("nope")

    def test_paper_kernel_properties(self):
        from repro.kernels.library import get_kernel

        fig18a = get_kernel("resnet3_2_bwd_input")
        assert fig18a.tile.effective_cw == 1
        assert fig18a.tile.accumulators == 28
        fig18b = get_kernel("resnet5_1a_bwd_input")
        assert fig18b.tile.effective_cw == 3
        assert fig18b.tile.accumulators == 21
