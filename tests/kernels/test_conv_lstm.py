"""Tests for conv→GEMM and LSTM→GEMM lowering."""

import pytest

from repro.kernels.conv import (
    PHASE_SPARSITY_SOURCES,
    ConvShape,
    GemmGeometry,
    Phase,
    SparsitySource,
)
from repro.kernels.lstm import LstmShape


class TestConvShape:
    def test_same_padding_preserves_size(self):
        conv = ConvShape("c", 64, 64, 56, 56, kernel=3, stride=1, padding=1)
        assert conv.out_height == 56 and conv.out_width == 56

    def test_stride_halves(self):
        conv = ConvShape("c", 64, 128, 56, 56, kernel=1, stride=2, padding=0)
        assert conv.out_height == 28

    def test_7x7_stem(self):
        conv = ConvShape("conv1", 3, 64, 224, 224, kernel=7, stride=2, padding=3)
        assert conv.out_height == 112

    def test_weight_count(self):
        conv = ConvShape("c", 64, 128, 56, 56, kernel=3)
        assert conv.weight_count == 64 * 128 * 9

    def test_forward_gemm_dims(self):
        conv = ConvShape("c", 64, 128, 28, 28, kernel=3, stride=1, padding=1)
        geometry = conv.gemm(Phase.FORWARD)
        assert geometry.m == 28 * 28
        assert geometry.n == 128
        assert geometry.k == 64 * 9

    def test_backward_input_gemm_dims(self):
        conv = ConvShape("c", 64, 128, 28, 28, kernel=3, stride=1, padding=1)
        geometry = conv.gemm(Phase.BACKWARD_INPUT)
        assert geometry.m == 28 * 28
        assert geometry.n == 64
        assert geometry.k == 128 * 9

    def test_backward_weight_gemm_dims(self):
        conv = ConvShape("c", 64, 128, 28, 28, kernel=3, stride=1, padding=1)
        geometry = conv.gemm(Phase.BACKWARD_WEIGHT)
        assert geometry.n == 128
        assert geometry.k == 28 * 28

    def test_forward_macs_equals_standard_formula(self):
        conv = ConvShape("c", 64, 128, 28, 28, kernel=3, stride=1, padding=1)
        assert conv.macs(Phase.FORWARD) == 28 * 28 * 128 * 64 * 9

    def test_batch_scales_macs(self):
        conv = ConvShape("c", 16, 16, 8, 8)
        assert conv.macs(Phase.FORWARD, batch=4) == 4 * conv.macs(Phase.FORWARD)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ConvShape("c", 0, 1, 8, 8)
        with pytest.raises(ValueError):
            ConvShape("c", 1, 1, 8, 8, stride=0)

    def test_footprints(self):
        conv = ConvShape("c", 2, 4, 8, 8, kernel=3)
        assert conv.activation_bytes() == 2 * 8 * 8 * 4
        assert conv.weight_bytes() == 2 * 4 * 9 * 4
        assert conv.output_bytes() == 4 * 8 * 8 * 4


class TestPhaseSparsityMapping:
    """Operand→sparsity-source mapping must reproduce Table III."""

    def test_forward_sources(self):
        bs, nbs = PHASE_SPARSITY_SOURCES[Phase.FORWARD]
        assert bs == SparsitySource.INPUT_ACTIVATION
        assert nbs == SparsitySource.WEIGHTS

    def test_backward_input_sources(self):
        bs, nbs = PHASE_SPARSITY_SOURCES[Phase.BACKWARD_INPUT]
        assert bs == SparsitySource.OUTPUT_GRADIENT
        assert nbs == SparsitySource.WEIGHTS

    def test_backward_weight_sources(self):
        bs, nbs = PHASE_SPARSITY_SOURCES[Phase.BACKWARD_WEIGHT]
        assert bs == SparsitySource.INPUT_ACTIVATION
        assert nbs == SparsitySource.OUTPUT_GRADIENT


class TestGemmGeometry:
    def test_macs(self):
        assert GemmGeometry(2, 3, 4).macs == 24

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            GemmGeometry(0, 1, 1)


class TestLstmShape:
    def test_gemm_dims(self):
        cell = LstmShape("enc0", hidden=1024, input_size=1024)
        geometry = cell.gemm(batch=128)
        assert geometry.n == 4096
        assert geometry.k == 2048
        assert geometry.m == 128

    def test_weight_count(self):
        cell = LstmShape("enc0", hidden=1024, input_size=512)
        assert cell.weight_count == 4 * 1024 * (512 + 1024)

    def test_macs_scale_with_seq_len(self):
        short = LstmShape("c", 256, 256, seq_len=1)
        long = LstmShape("c", 256, 256, seq_len=10)
        assert long.macs() == 10 * short.macs()

    def test_activation_sparsity_is_dropout(self):
        assert LstmShape("c", 64, 64, dropout=0.2).activation_sparsity() == 0.2

    def test_rejects_bad_dropout(self):
        with pytest.raises(ValueError):
            LstmShape("c", 64, 64, dropout=1.0)
