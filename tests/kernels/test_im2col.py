"""Tests for the functional im2col conv→GEMM lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.conv import ConvShape, Phase
from repro.kernels.im2col import (
    conv2d_direct,
    conv2d_via_gemm,
    gemm_operands_match_shape,
    im2col,
)


class TestIm2col:
    def test_identity_1x1_kernel(self):
        arr = np.arange(2 * 3 * 3, dtype=np.float32).reshape(2, 3, 3)
        patches = im2col(arr, kernel=1)
        assert patches.shape == (9, 2)
        np.testing.assert_array_equal(patches[:, 0], arr[0].reshape(-1))

    def test_3x3_same_padding_shape(self):
        arr = np.ones((4, 8, 8), dtype=np.float32)
        patches = im2col(arr, kernel=3, padding=1)
        assert patches.shape == (64, 36)

    def test_stride_halves_pixels(self):
        arr = np.ones((1, 8, 8), dtype=np.float32)
        patches = im2col(arr, kernel=1, stride=2)
        assert patches.shape == (16, 1)

    def test_padding_zeros_at_border(self):
        arr = np.ones((1, 2, 2), dtype=np.float32)
        patches = im2col(arr, kernel=3, padding=1)
        # Corner pixel's patch: 5 padded zeros.
        assert np.count_nonzero(patches[0] == 0) == 5

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            im2col(np.ones((3, 3), dtype=np.float32), kernel=1)
        with pytest.raises(ValueError):
            im2col(np.ones((1, 3, 3), dtype=np.float32), kernel=0)
        with pytest.raises(ValueError):
            im2col(np.ones((1, 2, 2), dtype=np.float32), kernel=5)


class TestConvEquivalence:
    @given(
        in_ch=st.integers(1, 3),
        out_ch=st.integers(1, 4),
        size=st.integers(3, 7),
        kernel=st.sampled_from([1, 3]),
        stride=st.integers(1, 2),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=20)
    def test_gemm_equals_direct(self, in_ch, out_ch, size, kernel, stride, seed):
        rng = np.random.default_rng(seed)
        padding = kernel // 2
        activations = rng.normal(size=(in_ch, size, size)).astype(np.float32)
        weights = rng.normal(size=(out_ch, in_ch, kernel, kernel)).astype(np.float32)
        direct = conv2d_direct(activations, weights, stride, padding)
        via_gemm, _p, _w = conv2d_via_gemm(activations, weights, stride, padding)
        np.testing.assert_allclose(via_gemm, direct, rtol=1e-4, atol=1e-4)

    def test_sparse_activations_propagate(self):
        activations = np.zeros((2, 4, 4), dtype=np.float32)
        weights = np.ones((3, 2, 3, 3), dtype=np.float32)
        out, patches, _w = conv2d_via_gemm(activations, weights, 1, 1)
        assert not out.any()
        assert not patches.any()


class TestShapeConsistency:
    @pytest.mark.parametrize(
        "conv",
        [
            ConvShape("c1", 3, 8, 12, 12, kernel=3, stride=1, padding=1),
            ConvShape("c2", 4, 4, 10, 10, kernel=1, stride=1, padding=0),
            ConvShape("c3", 2, 6, 9, 9, kernel=3, stride=2, padding=1),
        ],
    )
    def test_functional_matches_analytical_dims(self, conv):
        assert gemm_operands_match_shape(conv)

    def test_macs_match_functional_gemm(self):
        conv = ConvShape("c", 2, 4, 6, 6, kernel=3, stride=1, padding=1)
        geometry = conv.gemm(Phase.FORWARD)
        rng = np.random.default_rng(1)
        activations = rng.normal(size=(2, 6, 6)).astype(np.float32)
        weights = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        _out, patches, weight_matrix = conv2d_via_gemm(activations, weights, 1, 1)
        assert patches.shape[0] * weight_matrix.shape[0] * patches.shape[1] == geometry.macs
