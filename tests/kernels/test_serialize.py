"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.core import SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.serialize import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def make_trace(precision=Precision.FP32, masks=False):
    return generate_gemm_trace(
        GemmKernelConfig(
            name="ser",
            tile=RegisterTile(2, 2, BroadcastPattern.EXPLICIT),
            k_steps=4,
            precision=precision,
            broadcast_sparsity=0.3,
            nonbroadcast_sparsity=0.4,
            use_write_masks=masks,
            seed=3,
        )
    )


class TestRoundtrip:
    def test_uops_preserved(self):
        trace = make_trace()
        clone = trace_from_json(trace_to_json(trace))
        assert len(clone) == len(trace)
        for original, restored in zip(trace.materialize(), clone.materialize()):
            assert original.kind == restored.kind
            assert original.dst == restored.dst
            assert original.src_a == restored.src_a
            assert original.src_b == restored.src_b

    def test_memory_preserved(self):
        trace = make_trace()
        clone = trace_from_json(trace_to_json(trace))
        assert clone.memory.snapshot() == trace.memory.snapshot()

    def test_regions_preserved(self):
        trace = make_trace()
        clone = trace_from_json(trace_to_json(trace))
        assert clone.regions["A"].base == trace.regions["A"].base
        assert clone.regions["C"].size_bytes == trace.regions["C"].size_bytes

    def test_stats_recomputed(self):
        trace = make_trace()
        clone = trace_from_json(trace_to_json(trace))
        assert clone.stats.fmas == trace.stats.fmas

    def test_mixed_precision_roundtrip(self):
        trace = make_trace(precision=Precision.MIXED)
        clone = trace_from_json(trace_to_json(trace))
        assert all(u.bf16 for u in clone.materialize() if u.is_fma())

    def test_masked_roundtrip(self):
        trace = make_trace(masks=True)
        clone = trace_from_json(trace_to_json(trace))
        assert any(u.wmask is not None for u in clone.materialize() if u.is_fma())


class TestExecutability:
    def test_restored_trace_executes_identically(self):
        trace = make_trace()
        clone = trace_from_json(trace_to_json(trace))
        original = trace.reference_result()
        restored = clone.reference_result()
        for reg in range(32):
            assert np.array_equal(original.read_vreg(reg), restored.read_vreg(reg))

    def test_restored_trace_simulates(self):
        trace = make_trace()
        clone = trace_from_json(trace_to_json(trace))
        a = simulate(trace, SAVE_2VPU, keep_state=False, warm_level=None)
        b = simulate(clone, SAVE_2VPU, keep_state=False, warm_level=None)
        assert a.cycles == b.cycles
        assert a.vpu_ops == b.vpu_ops


class TestFiles:
    def test_save_load(self, tmp_path):
        trace = make_trace()
        path = save_trace(trace, tmp_path / "kernel.json")
        clone = load_trace(path)
        assert clone.name == trace.name
        assert len(clone) == len(trace)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            trace_from_json({"format": 99})
