"""Tests for the KernelTrace container and µop counting."""

import numpy as np
import pytest

from repro.isa.registers import Memory
from repro.isa.uops import (
    RegOperand,
    kmov,
    scalar_op,
    vbcast,
    vfma,
    vload,
    vstore,
    vzero,
)
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile
from repro.kernels.trace import KernelTrace, TraceStats, count_uops


class TestCountUops:
    def test_counts_each_kind(self):
        uops = [
            vzero(0),
            vload(1, 0x0),
            vbcast(2, 0x40),
            kmov(1, 0xF),
            vfma(0, RegOperand(1), RegOperand(2)),
            vstore(0, 0x100),
            scalar_op(),
        ]
        stats = count_uops(uops)
        assert stats.vzeros == 1
        assert stats.vector_loads == 1
        assert stats.broadcasts == 1
        assert stats.kmovs == 1
        assert stats.fmas == 1
        assert stats.stores == 1
        assert stats.scalars == 1
        assert stats.total == 7

    def test_embedded_broadcast_counted(self):
        from repro.isa.uops import MemOperand

        uops = [vfma(0, MemOperand(0x0, broadcast=True), RegOperand(2))]
        stats = count_uops(uops)
        assert stats.embedded_broadcasts == 1

    def test_empty(self):
        assert count_uops([]).total == 0

    def test_total_excludes_nothing(self):
        stats = TraceStats(fmas=2, vector_loads=3, scalars=1)
        assert stats.total == 6


class TestKernelTrace:
    def trace(self):
        return generate_gemm_trace(
            GemmKernelConfig(
                name="t",
                tile=RegisterTile(2, 2, BroadcastPattern.EXPLICIT),
                k_steps=4,
                seed=0,
            )
        )

    def test_len(self):
        trace = self.trace()
        assert len(trace) == len(trace.materialize())

    def test_fresh_state_has_zero_registers(self):
        state = self.trace().fresh_state()
        for reg in range(32):
            assert not state.read_vreg(reg).any()

    def test_fresh_state_copies_memory(self):
        trace = self.trace()
        a = trace.fresh_state()
        b = trace.fresh_state()
        addr = trace.regions["A"].base
        a.memory.write(addr, 123.0)
        assert b.memory.read(addr) != np.float32(123.0)

    def test_result_matrix_shape(self):
        trace = self.trace()
        matrix = trace.result_matrix(trace.reference_result())
        assert matrix.shape == (2, 32)

    def test_result_matrix_nonzero_after_run(self):
        trace = self.trace()
        matrix = trace.result_matrix(trace.reference_result())
        assert matrix.any()

    def test_reference_result_idempotent(self):
        trace = self.trace()
        first = trace.result_matrix(trace.reference_result())
        second = trace.result_matrix(trace.reference_result())
        assert np.array_equal(first, second)

    def test_a_rows_padded_to_odd_lines(self):
        # The conflict-avoidance padding keeps distinct rows of A out
        # of the same direct-mapped B$ slot.
        trace = generate_gemm_trace(
            GemmKernelConfig(
                name="pad",
                tile=RegisterTile(28, 1, BroadcastPattern.EMBEDDED),
                k_steps=32,
                seed=0,
            )
        )
        base = trace.regions["A"].base
        # Find two consecutive rows' first-element addresses via the
        # embedded broadcast operands of the first k-step.
        addrs = [
            u.memory_operand().addr
            for u in trace.materialize()
            if u.is_fma() and u.tag and u.tag.startswith("k0")
        ]
        stride = addrs[1] - addrs[0]
        assert (stride // 64) % 2 == 1
