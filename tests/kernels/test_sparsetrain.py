"""Tests for the SparseTrain software-skipping baseline."""

import numpy as np
import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.sparsetrain import SparseTrainConfig, generate_sparsetrain_trace
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile


def gemm_config(bs=0.0, nbs=0.0, k_steps=16, seed=0, pattern=BroadcastPattern.EXPLICIT,
                precision=Precision.FP32):
    return GemmKernelConfig(
        name="st",
        tile=RegisterTile(4, 6, pattern),
        k_steps=k_steps,
        precision=precision,
        broadcast_sparsity=bs,
        nonbroadcast_sparsity=nbs,
        seed=seed,
    )


class TestGeneration:
    def test_dense_emits_all_rows(self):
        trace = generate_sparsetrain_trace(SparseTrainConfig(gemm_config()))
        dense = generate_gemm_trace(gemm_config())
        assert trace.stats.fmas == dense.stats.fmas
        assert trace.meta["skipped_rows"] == 0

    def test_bs_removes_fmas_from_stream(self):
        config = SparseTrainConfig(gemm_config(bs=0.5, k_steps=32))
        trace = generate_sparsetrain_trace(config)
        dense = generate_gemm_trace(gemm_config(bs=0.5, k_steps=32))
        assert trace.stats.fmas < dense.stats.fmas
        skipped = trace.meta["skipped_rows"]
        assert trace.stats.fmas == dense.stats.fmas - skipped * 6

    def test_branch_overhead_scalars_present(self):
        config = SparseTrainConfig(gemm_config(k_steps=8), branch_overhead_uops=2)
        trace = generate_sparsetrain_trace(config)
        # 2 per (row, step) + loop overhead.
        assert trace.stats.scalars >= 2 * 4 * 8

    def test_rejects_mixed_precision(self):
        with pytest.raises(ValueError):
            SparseTrainConfig(gemm_config(precision=Precision.MIXED))

    def test_rejects_embedded_pattern(self):
        with pytest.raises(ValueError):
            SparseTrainConfig(gemm_config(pattern=BroadcastPattern.EMBEDDED))

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            SparseTrainConfig(gemm_config(), misprediction_rate=2.0)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("bs,nbs", [(0.0, 0.0), (0.5, 0.0), (0.5, 0.5)])
    def test_same_result_as_dense_trace(self, bs, nbs):
        dense = generate_gemm_trace(gemm_config(bs=bs, nbs=nbs))
        skipped = generate_sparsetrain_trace(SparseTrainConfig(gemm_config(bs=bs, nbs=nbs)))
        dense_c = dense.result_matrix(dense.reference_result())
        skipped_c = skipped.result_matrix(skipped.reference_result())
        np.testing.assert_array_equal(dense_c, skipped_c)


class TestPerformanceComparison:
    def test_software_skipping_helps_at_high_bs(self):
        dense = generate_gemm_trace(gemm_config(bs=0.7, k_steps=32))
        st = generate_sparsetrain_trace(SparseTrainConfig(gemm_config(bs=0.7, k_steps=32)))
        dense_time = simulate(dense, BASELINE_2VPU, keep_state=False).time_ns
        st_time = simulate(st, BASELINE_2VPU, keep_state=False).time_ns
        assert st_time < dense_time

    def test_cannot_exploit_nbs(self):
        dense = generate_gemm_trace(gemm_config(nbs=0.7, k_steps=32))
        st = generate_sparsetrain_trace(SparseTrainConfig(gemm_config(nbs=0.7, k_steps=32)))
        dense_time = simulate(dense, BASELINE_2VPU, keep_state=False).time_ns
        st_time = simulate(st, BASELINE_2VPU, keep_state=False).time_ns
        # Pure NBS: SparseTrain pays overhead without removing work.
        assert st_time >= dense_time * 0.98

    def test_save_beats_sparsetrain_with_both_types(self):
        # SAVE exploits BS and NBS in hardware; SparseTrain only BS in
        # software, with branch overhead.
        config = gemm_config(bs=0.4, nbs=0.6, k_steps=32)
        dense = generate_gemm_trace(config)
        st = generate_sparsetrain_trace(SparseTrainConfig(config))
        save_time = simulate(dense, SAVE_2VPU, keep_state=False).time_ns
        st_time = simulate(st, BASELINE_2VPU, keep_state=False).time_ns
        assert save_time < st_time

    def test_misprediction_penalty_costs_time(self):
        cheap = SparseTrainConfig(
            gemm_config(bs=0.5, k_steps=32), misprediction_rate=0.0
        )
        costly = SparseTrainConfig(
            gemm_config(bs=0.5, k_steps=32),
            misprediction_rate=1.0,
            misprediction_penalty_uops=20,
        )
        cheap_time = simulate(
            generate_sparsetrain_trace(cheap), BASELINE_2VPU, keep_state=False
        ).time_ns
        costly_time = simulate(
            generate_sparsetrain_trace(costly), BASELINE_2VPU, keep_state=False
        ).time_ns
        assert costly_time > cheap_time
