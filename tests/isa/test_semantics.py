"""Tests for the in-order reference executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.datatypes import BF16_LANES, FP32_LANES, bf16_round
from repro.isa.registers import ArchState, Memory
from repro.isa.semantics import ReferenceExecutor, execute_trace, mac
from repro.isa.uops import (
    MemOperand,
    RegOperand,
    kmov,
    scalar_op,
    vbcast,
    vdpbf16,
    vfma,
    vload,
    vstore,
    vzero,
)


def fresh_executor():
    return ReferenceExecutor(ArchState(Memory()))


class TestMac:
    def test_matches_float32_arithmetic(self):
        a, b, c = np.float32(1.5), np.float32(2.25), np.float32(0.125)
        assert mac(c, a, b) == np.float32(c + np.float32(a * b))

    def test_zero_multiplicand_is_identity(self):
        c = np.float32(3.7)
        assert mac(c, np.float32(0.0), np.float32(123.0)) == c


class TestVfma:
    def test_basic_fma(self):
        ex = fresh_executor()
        ex.state.write_vreg(1, np.full(FP32_LANES, 2.0, dtype=np.float32))
        ex.state.write_vreg(2, np.full(FP32_LANES, 3.0, dtype=np.float32))
        ex.state.write_vreg(0, np.full(FP32_LANES, 1.0, dtype=np.float32))
        ex.execute(vfma(0, RegOperand(1), RegOperand(2)))
        assert np.array_equal(ex.state.read_vreg(0), np.full(FP32_LANES, 7.0, dtype=np.float32))

    def test_embedded_broadcast_operand(self):
        ex = fresh_executor()
        ex.state.memory.write(0x40, 5.0)
        ex.state.write_vreg(2, np.ones(FP32_LANES, dtype=np.float32))
        ex.execute(vfma(0, MemOperand(0x40, broadcast=True), RegOperand(2)))
        assert np.array_equal(ex.state.read_vreg(0), np.full(FP32_LANES, 5.0, dtype=np.float32))

    def test_full_vector_memory_operand(self):
        ex = fresh_executor()
        values = np.arange(FP32_LANES, dtype=np.float32)
        ex.state.memory.write_vector(0x100, values, stride=4)
        ex.state.write_vreg(2, np.ones(FP32_LANES, dtype=np.float32))
        ex.execute(vfma(0, MemOperand(0x100), RegOperand(2)))
        assert np.array_equal(ex.state.read_vreg(0), values)

    def test_write_mask_merges(self):
        ex = fresh_executor()
        ex.state.write_vreg(0, np.full(FP32_LANES, 1.0, dtype=np.float32))
        ex.state.write_vreg(1, np.full(FP32_LANES, 2.0, dtype=np.float32))
        ex.state.write_vreg(2, np.full(FP32_LANES, 2.0, dtype=np.float32))
        ex.execute(kmov(1, 0b0101))
        ex.execute(vfma(0, RegOperand(1), RegOperand(2), wmask=1))
        result = ex.state.read_vreg(0)
        assert result[0] == 5.0 and result[2] == 5.0
        assert result[1] == 1.0 and result[3] == 1.0

    def test_zero_lane_leaves_accumulator(self):
        ex = fresh_executor()
        a = np.ones(FP32_LANES, dtype=np.float32)
        a[5] = 0.0
        ex.state.write_vreg(1, a)
        ex.state.write_vreg(2, np.full(FP32_LANES, 4.0, dtype=np.float32))
        ex.execute(vfma(0, RegOperand(1), RegOperand(2)))
        result = ex.state.read_vreg(0)
        assert result[5] == 0.0
        assert result[0] == 4.0

    @given(
        st.lists(st.floats(-100, 100, width=32), min_size=16, max_size=16),
        st.lists(st.floats(-100, 100, width=32), min_size=16, max_size=16),
        st.lists(st.floats(-100, 100, width=32), min_size=16, max_size=16),
    )
    @settings(max_examples=30)
    def test_matches_numpy_per_lane(self, accum, a, b):
        ex = fresh_executor()
        accum = np.array(accum, dtype=np.float32)
        a = np.array(a, dtype=np.float32)
        b = np.array(b, dtype=np.float32)
        ex.state.write_vreg(0, accum)
        ex.state.write_vreg(1, a)
        ex.state.write_vreg(2, b)
        ex.execute(vfma(0, RegOperand(1), RegOperand(2)))
        expected = (accum + (a * b).astype(np.float32)).astype(np.float32)
        assert np.array_equal(ex.state.read_vreg(0), expected)


class TestVdpbf16:
    def test_pairwise_dot_product(self):
        ex = fresh_executor()
        a = bf16_round(np.arange(BF16_LANES, dtype=np.float32))
        b = bf16_round(np.ones(BF16_LANES, dtype=np.float32))
        ex.state.write_vreg(1, a)
        ex.state.write_vreg(2, b)
        ex.execute(vdpbf16(0, RegOperand(1), RegOperand(2)))
        result = ex.state.read_vreg(0)
        expected = np.array(
            [a[2 * i] + a[2 * i + 1] for i in range(FP32_LANES)], dtype=np.float32
        )
        assert np.array_equal(result, expected)

    def test_chained_mac_order(self):
        # The two MACs are chained (2i first): with values that round
        # differently depending on order this is observable.
        ex = fresh_executor()
        a = np.zeros(BF16_LANES, dtype=np.float32)
        b = np.zeros(BF16_LANES, dtype=np.float32)
        a[0], a[1] = np.float32(2**-8), np.float32(1.0)
        b[0], b[1] = np.float32(1.0), np.float32(1.0)
        ex.state.write_vreg(1, a)
        ex.state.write_vreg(2, b)
        ex.execute(vdpbf16(0, RegOperand(1), RegOperand(2)))
        expected = mac(mac(np.float32(0.0), a[0], b[0]), a[1], b[1])
        assert ex.state.read_vreg(0)[0] == expected

    def test_m32bcst_broadcast_pair(self):
        ex = fresh_executor()
        ex.state.memory.write(0x40, 2.0)
        ex.state.memory.write(0x42, 3.0)
        ex.state.write_vreg(2, bf16_round(np.ones(BF16_LANES, dtype=np.float32)))
        ex.execute(vdpbf16(0, MemOperand(0x40, broadcast=True, bf16=True), RegOperand(2)))
        assert np.array_equal(
            ex.state.read_vreg(0), np.full(FP32_LANES, 5.0, dtype=np.float32)
        )

    def test_write_mask(self):
        ex = fresh_executor()
        ex.state.write_vreg(1, bf16_round(np.ones(BF16_LANES, dtype=np.float32)))
        ex.state.write_vreg(2, bf16_round(np.ones(BF16_LANES, dtype=np.float32)))
        ex.execute(kmov(1, 0b1))
        ex.execute(vdpbf16(0, RegOperand(1), RegOperand(2), wmask=1))
        result = ex.state.read_vreg(0)
        assert result[0] == 2.0
        assert not result[1:].any()


class TestLoadsStores:
    def test_vload_vstore_roundtrip(self):
        ex = fresh_executor()
        values = np.arange(FP32_LANES, dtype=np.float32)
        ex.state.memory.write_vector(0x0, values, stride=4)
        ex.execute(vload(3, 0x0))
        ex.execute(vstore(3, 0x1000))
        assert np.array_equal(
            ex.state.memory.read_vector(0x1000, FP32_LANES, 4), values
        )

    def test_vbcast_fp32(self):
        ex = fresh_executor()
        ex.state.memory.write(0x44, 9.0)
        ex.execute(vbcast(5, 0x44))
        assert np.array_equal(
            ex.state.read_vreg(5), np.full(FP32_LANES, 9.0, dtype=np.float32)
        )

    def test_vbcast_bf16_pair(self):
        ex = fresh_executor()
        ex.state.memory.write(0x40, 1.0)
        ex.state.memory.write(0x42, 2.0)
        ex.execute(vbcast(5, 0x40, bf16=True))
        value = ex.state.read_vreg(5)
        assert value.shape == (BF16_LANES,)
        assert value[0] == 1.0 and value[1] == 2.0 and value[2] == 1.0

    def test_bf16_vload_width(self):
        ex = fresh_executor()
        ex.state.memory.write_array(0, range(BF16_LANES), stride=2, bf16=True)
        ex.execute(vload(4, 0, bf16=True))
        assert ex.state.read_vreg(4).shape == (BF16_LANES,)

    def test_vzero(self):
        ex = fresh_executor()
        ex.state.write_vreg(0, np.ones(FP32_LANES, dtype=np.float32))
        ex.execute(vzero(0))
        assert not ex.state.read_vreg(0).any()

    def test_scalar_op_is_noop(self):
        ex = fresh_executor()
        before = ex.state.registers_snapshot()
        ex.execute(scalar_op())
        after = ex.state.registers_snapshot()
        for reg in before:
            assert np.array_equal(before[reg], after[reg])


class TestExecuteTrace:
    def test_small_dot_product_program(self):
        mem = Memory()
        mem.write_array(0x0, [1.0] * FP32_LANES, stride=4)
        mem.write_array(0x100, [2.0] * FP32_LANES, stride=4)
        trace = [
            vzero(0),
            vload(1, 0x0),
            vload(2, 0x100),
            vfma(0, RegOperand(1), RegOperand(2)),
            vstore(0, 0x200),
        ]
        state = execute_trace(trace, ArchState(mem))
        assert np.array_equal(
            state.memory.read_vector(0x200, FP32_LANES, 4),
            np.full(FP32_LANES, 2.0, dtype=np.float32),
        )

    def test_fma_chain_accumulates(self):
        ex = fresh_executor()
        ex.state.write_vreg(1, np.ones(FP32_LANES, dtype=np.float32))
        ex.state.write_vreg(2, np.ones(FP32_LANES, dtype=np.float32))
        trace = [vzero(0)] + [vfma(0, RegOperand(1), RegOperand(2))] * 10
        ex.run(trace)
        assert np.array_equal(
            ex.state.read_vreg(0), np.full(FP32_LANES, 10.0, dtype=np.float32)
        )
