"""Tests for architectural state and memory."""

import numpy as np
import pytest

from repro.isa.datatypes import BF16_LANES, FP32_LANES
from repro.isa.registers import NUM_MASK_REGS, NUM_VREGS, ArchState, Memory


class TestMemory:
    def test_unwritten_reads_zero(self):
        mem = Memory()
        assert mem.read(0x1000) == 0.0

    def test_write_read_roundtrip(self):
        mem = Memory()
        mem.write(0x40, 3.5)
        assert mem.read(0x40) == np.float32(3.5)

    def test_write_quantises_to_fp32(self):
        mem = Memory()
        mem.write(0, 0.1)
        assert mem.read(0) == np.float32(0.1)

    def test_vector_roundtrip_fp32(self):
        mem = Memory()
        values = np.arange(16, dtype=np.float32)
        mem.write_vector(0x100, values, stride=4)
        assert np.array_equal(mem.read_vector(0x100, 16, 4), values)

    def test_vector_roundtrip_bf16_stride(self):
        mem = Memory()
        values = np.arange(32, dtype=np.float32)
        mem.write_vector(0x200, values, stride=2)
        assert np.array_equal(mem.read_vector(0x200, 32, 2), values)

    def test_write_array_bf16_rounds(self):
        mem = Memory()
        mem.write_array(0, [1.0 + 2**-12], stride=2, bf16=True)
        assert mem.read(0) == np.float32(1.0)

    def test_snapshot_is_copy(self):
        mem = Memory()
        mem.write(0, 1.0)
        snap = mem.snapshot()
        mem.write(0, 2.0)
        assert snap[0] == 1.0

    def test_len_counts_elements(self):
        mem = Memory()
        mem.write_array(0, range(10), stride=4)
        assert len(mem) == 10


class TestArchState:
    def test_initial_registers_zero(self):
        state = ArchState()
        assert len(state.vregs) == NUM_VREGS
        for reg in range(NUM_VREGS):
            assert not state.read_vreg(reg).any()

    def test_initial_masks_all_ones(self):
        state = ArchState()
        assert len(state.kregs) == NUM_MASK_REGS
        assert state.read_kreg(0) == (1 << FP32_LANES) - 1

    def test_vreg_write_read(self):
        state = ArchState()
        value = np.arange(FP32_LANES, dtype=np.float32)
        state.write_vreg(3, value)
        assert np.array_equal(state.read_vreg(3), value)

    def test_vreg_read_returns_copy(self):
        state = ArchState()
        state.write_vreg(0, np.ones(FP32_LANES, dtype=np.float32))
        view = state.read_vreg(0)
        view[0] = 99.0
        assert state.read_vreg(0)[0] == 1.0

    def test_vreg_accepts_bf16_payload_width(self):
        state = ArchState()
        state.write_vreg(1, np.zeros(BF16_LANES, dtype=np.float32))
        assert state.read_vreg(1).shape == (BF16_LANES,)

    def test_vreg_rejects_bad_width(self):
        state = ArchState()
        with pytest.raises(ValueError):
            state.write_vreg(0, np.zeros(7, dtype=np.float32))

    def test_kreg_write_read(self):
        state = ArchState()
        state.write_kreg(2, 0b1010)
        assert state.read_kreg(2) == 0b1010

    def test_registers_snapshot_is_deep(self):
        state = ArchState()
        state.write_vreg(0, np.ones(FP32_LANES, dtype=np.float32))
        snap = state.registers_snapshot()
        state.write_vreg(0, np.zeros(FP32_LANES, dtype=np.float32))
        assert snap[0][0] == 1.0
