"""Tests for BF16/FP32 datatype helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.datatypes import (
    BF16_LANES,
    FP32_LANES,
    VECTOR_BYTES,
    bf16_round,
    fp32_zeros,
    is_bf16_representable,
)


class TestConstants:
    def test_vector_geometry(self):
        assert FP32_LANES == 16
        assert BF16_LANES == 32
        assert VECTOR_BYTES == 64
        # 512-bit register holds exactly these lane counts.
        assert FP32_LANES * 4 == VECTOR_BYTES
        assert BF16_LANES * 2 == VECTOR_BYTES


class TestBf16Round:
    def test_exact_values_unchanged(self):
        # Powers of two and small integers are BF16-exact.
        values = np.array([0.0, 1.0, -2.0, 0.5, 4096.0], dtype=np.float32)
        assert np.array_equal(bf16_round(values), values)

    def test_rounding_drops_low_mantissa(self):
        value = np.array([1.0 + 2**-20], dtype=np.float32)
        rounded = bf16_round(value)
        assert rounded[0] == np.float32(1.0)

    def test_round_to_nearest_even_midpoint(self):
        # 1 + 2^-8 is exactly halfway between BF16 neighbours 1.0 and
        # 1 + 2^-7; round-to-even picks 1.0 (even mantissa).
        value = np.array([1.0 + 2**-8], dtype=np.float32)
        assert bf16_round(value)[0] == np.float32(1.0)

    def test_round_up_above_midpoint(self):
        value = np.array([1.0 + 2**-8 + 2**-12], dtype=np.float32)
        assert bf16_round(value)[0] == np.float32(1.0 + 2**-7)

    def test_nan_stays_nan(self):
        value = np.array([np.nan], dtype=np.float32)
        assert np.isnan(bf16_round(value)[0])

    def test_inf_stays_inf(self):
        value = np.array([np.inf, -np.inf], dtype=np.float32)
        out = bf16_round(value)
        assert out[0] == np.inf and out[1] == -np.inf

    def test_sign_preserved(self):
        values = np.array([-1.37, 1.37], dtype=np.float32)
        out = bf16_round(values)
        assert out[0] == -out[1]

    def test_shape_preserved(self):
        values = np.ones((4, 8), dtype=np.float32)
        assert bf16_round(values).shape == (4, 8)

    @given(
        st.lists(
            st.floats(
                min_value=-1e10, max_value=1e10, allow_nan=False, width=32
            ),
            min_size=1,
            max_size=64,
        )
    )
    def test_idempotent(self, values):
        arr = np.array(values, dtype=np.float32)
        once = bf16_round(arr)
        twice = bf16_round(once)
        assert np.array_equal(once, twice)

    @given(
        st.lists(
            st.floats(min_value=-1e10, max_value=1e10, allow_nan=False, width=32),
            min_size=1,
            max_size=64,
        )
    )
    def test_output_is_representable(self, values):
        arr = np.array(values, dtype=np.float32)
        assert is_bf16_representable(bf16_round(arr))

    @given(st.floats(min_value=0.0078125, max_value=1e10, allow_nan=False, width=32))
    def test_relative_error_bound(self, value):
        # BF16 has 8 mantissa bits: relative error <= 2^-8.
        rounded = float(bf16_round(np.array([value], dtype=np.float32))[0])
        assert abs(rounded - value) <= abs(value) * 2**-8


class TestIsBf16Representable:
    def test_detects_inexact(self):
        assert not is_bf16_representable(np.array([1.0 + 2**-12], dtype=np.float32))

    def test_zero_vector(self):
        assert is_bf16_representable(fp32_zeros())

    def test_nan_allowed(self):
        assert is_bf16_representable(np.array([np.nan], dtype=np.float32))


class TestFp32Zeros:
    def test_default_width(self):
        z = fp32_zeros()
        assert z.shape == (FP32_LANES,)
        assert z.dtype == np.float32
        assert not z.any()

    def test_custom_width(self):
        assert fp32_zeros(32).shape == (32,)
