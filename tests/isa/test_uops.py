"""Tests for µop record types and constructors."""

import pytest

from repro.isa.uops import (
    MemOperand,
    RegOperand,
    Uop,
    UopKind,
    kmov,
    scalar_op,
    vbcast,
    vdpbf16,
    vfma,
    vload,
    vstore,
    vzero,
)


class TestOperands:
    def test_mem_operand_element_bytes(self):
        assert MemOperand(0).element_bytes == 4
        assert MemOperand(0, bf16=True).element_bytes == 2

    def test_reg_operand_repr(self):
        assert repr(RegOperand(5)) == "zmm5"

    def test_mem_operand_repr_broadcast(self):
        assert "{1toN}" in repr(MemOperand(0x40, broadcast=True))


class TestConstructors:
    def test_vfma_dst_is_accumulator(self):
        uop = vfma(4, RegOperand(1), RegOperand(2))
        assert uop.kind == UopKind.VFMA
        assert uop.dst == 4 and uop.accum == 4
        assert not uop.bf16

    def test_vdpbf16_marks_bf16(self):
        uop = vdpbf16(0, RegOperand(1), RegOperand(2))
        assert uop.kind == UopKind.VDPBF16
        assert uop.bf16
        assert uop.is_fma()

    def test_vfma_with_write_mask(self):
        uop = vfma(0, RegOperand(1), RegOperand(2), wmask=3)
        assert uop.wmask == 3

    def test_vload(self):
        uop = vload(7, 0x80)
        assert uop.kind == UopKind.VLOAD
        assert uop.memory_operand().addr == 0x80
        assert not uop.memory_operand().broadcast

    def test_vbcast(self):
        uop = vbcast(7, 0x84)
        assert uop.kind == UopKind.VBCAST
        assert uop.memory_operand().broadcast

    def test_vstore_sources(self):
        uop = vstore(3, 0x100)
        assert uop.kind == UopKind.VSTORE
        assert uop.register_sources() == [3]
        assert uop.memory_operand().addr == 0x100

    def test_kmov(self):
        uop = kmov(1, 0xFFFF)
        assert uop.kind == UopKind.KMOV
        assert uop.imm == 0xFFFF

    def test_vzero(self):
        assert vzero(9).dst == 9

    def test_scalar_op_has_no_operands(self):
        uop = scalar_op()
        assert uop.register_sources() == []
        assert uop.memory_operand() is None


class TestUopIntrospection:
    def test_register_sources_fma_all_regs(self):
        uop = vfma(4, RegOperand(1), RegOperand(2))
        assert sorted(uop.register_sources()) == [1, 2, 4]

    def test_register_sources_fma_with_mem(self):
        uop = vfma(4, MemOperand(0x40, broadcast=True), RegOperand(2))
        assert sorted(uop.register_sources()) == [2, 4]

    def test_memory_operand_embedded_broadcast(self):
        uop = vfma(4, MemOperand(0x40, broadcast=True), RegOperand(2))
        mem = uop.memory_operand()
        assert mem is not None and mem.broadcast

    def test_memory_operand_none_for_reg_only(self):
        uop = vfma(4, RegOperand(1), RegOperand(2))
        assert uop.memory_operand() is None

    def test_is_fma(self):
        assert vfma(0, RegOperand(1), RegOperand(2)).is_fma()
        assert not vload(0, 0).is_fma()
        assert not scalar_op().is_fma()

    def test_tag_annotation(self):
        uop = vfma(0, RegOperand(1), RegOperand(2), tag="tile(0,0)")
        assert uop.tag == "tile(0,0)"
