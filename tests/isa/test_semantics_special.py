"""Special-value and consistency tests for the functional semantics."""

import numpy as np
import pytest

from repro.isa.datatypes import FP32_LANES, bf16_round
from repro.isa.registers import ArchState, Memory
from repro.isa.semantics import ReferenceExecutor, mac
from repro.isa.uops import RegOperand, vdpbf16, vfma, vzero


def executor():
    return ReferenceExecutor(ArchState(Memory()))


class TestZeroSemantics:
    """The x·0 = 0 axiom SAVE's skipping relies on (Sec. I)."""

    def test_zero_times_anything_leaves_accumulator(self):
        ex = executor()
        accum = np.arange(1, 17, dtype=np.float32)
        b = np.full(FP32_LANES, 1e30, dtype=np.float32)
        ex.state.write_vreg(0, accum)
        ex.state.write_vreg(1, np.zeros(FP32_LANES, dtype=np.float32))
        ex.state.write_vreg(2, b)
        ex.execute(vfma(0, RegOperand(1), RegOperand(2)))
        assert np.array_equal(ex.state.read_vreg(0), accum)

    def test_negative_zero_product_compares_equal(self):
        # 0 * -5 = -0.0; adding it leaves the accumulator ==-equal.
        c = mac(np.float32(3.0), np.float32(0.0), np.float32(-5.0))
        assert c == np.float32(3.0)

    def test_skipping_zero_product_is_value_exact(self):
        # The optimisation SAVE performs: dropping a zero-product MAC.
        for accum in (0.0, -0.0, 1.5, -2.25, 1e-30):
            with_mac = mac(np.float32(accum), np.float32(0.0), np.float32(7.0))
            assert with_mac == np.float32(accum)


class TestMacRounding:
    def test_large_small_cancellation(self):
        big = np.float32(2.0**25)
        one = np.float32(1.0)
        # (big + 1) absorbs the 1 in FP32.
        assert mac(big, one, one) == big

    def test_mac_not_fused(self):
        # Our MAC rounds the product before adding (documented model
        # choice); a fused FMA would differ here.
        a = np.float32(1.0 + 2**-12)
        product_rounded = np.float32(a * a)
        assert mac(np.float32(0.0), a, a) == product_rounded


class TestVdpbf16Consistency:
    def test_equals_two_fp32_macs(self):
        ex = executor()
        a = bf16_round(np.linspace(-2, 2, 32).astype(np.float32))
        b = bf16_round(np.linspace(1, 3, 32).astype(np.float32))
        ex.state.write_vreg(1, a)
        ex.state.write_vreg(2, b)
        ex.execute(vzero(0))
        ex.execute(vdpbf16(0, RegOperand(1), RegOperand(2)))
        result = ex.state.read_vreg(0)
        for lane in range(FP32_LANES):
            expected = mac(
                mac(np.float32(0.0), a[2 * lane], b[2 * lane]),
                a[2 * lane + 1],
                b[2 * lane + 1],
            )
            assert result[lane] == expected

    def test_mixed_rejects_fp32_width_sources(self):
        ex = executor()
        ex.state.write_vreg(1, np.ones(16, dtype=np.float32))
        ex.state.write_vreg(2, np.ones(32, dtype=np.float32))
        with pytest.raises(ValueError):
            ex.execute(vdpbf16(0, RegOperand(1), RegOperand(2)))

    def test_fp32_rejects_bf16_width_sources(self):
        ex = executor()
        ex.state.write_vreg(1, np.ones(32, dtype=np.float32))
        ex.state.write_vreg(2, np.ones(16, dtype=np.float32))
        with pytest.raises(ValueError):
            ex.execute(vfma(0, RegOperand(1), RegOperand(2)))
