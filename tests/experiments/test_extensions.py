"""Tests for the extension experiments (ablations, energy)."""

import pytest

from repro.experiments import ablations, energy
from repro.experiments.registry import EXPERIMENTS, RunContext


class TestRegistryExtensions:
    def test_extensions_registered(self):
        assert "ablations" in EXPERIMENTS
        assert "energy" in EXPERIMENTS


class TestAblations:
    @pytest.fixture(scope="class")
    def report(self):
        return ablations.run(RunContext(k_steps=8))

    def test_both_kernel_points_present(self, report):
        assert len(report.data) == 2

    def test_naive_flat_on_nbs_only(self, report):
        point = report.data["bwd-input (embedded, NBS=60%)"]
        assert point["naive lane-skip"] <= 1.1
        assert point["SAVE (full)"] > point["naive lane-skip"]

    def test_single_mgu_bottleneck(self, report):
        # The inverse of the paper's claim: with only ONE MGU, ELM
        # generation throttles the whole pipeline.
        for point in report.data.values():
            assert point["1 MGU"] < point["SAVE (full)"]

    def test_tiny_b_cache_hurts_embedded(self, report):
        point = report.data["bwd-input (embedded, NBS=60%)"]
        assert point["B$ 4 entries"] < point["SAVE (full)"]

    def test_rotation_off_hurts_embedded(self, report):
        point = report.data["bwd-input (embedded, NBS=60%)"]
        assert point["rotation off"] < point["SAVE (full)"]

    def test_issue_width_headroom(self, report):
        point = report.data["fwd (explicit, BS=40% NBS=40%)"]
        assert point["issue width 4"] <= point["SAVE (full)"]
        assert point["issue width 6"] >= point["SAVE (full)"]


class TestEnergyExperiment:
    @pytest.fixture(scope="class")
    def report(self):
        return energy.run(RunContext(k_steps=8))

    def test_three_sparsity_points(self, report):
        assert len(report.data) == 3

    def test_sparse_save_saves_energy(self, report):
        point = report.data["BS=80% NBS=80%"]
        assert point["SAVE 2 VPUs"] < point["baseline"]
        assert point["SAVE 1 VPU"] < point["SAVE 2 VPUs"]

    def test_dense_energy_comparable(self, report):
        point = report.data["BS=0% NBS=0%"]
        assert point["SAVE 2 VPUs"] == pytest.approx(point["baseline"], rel=0.1)


class TestScaling:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments import scaling

        return scaling.run(RunContext(k_steps=8))

    def test_conv_stays_compute_bound(self, report):
        assert report.data["conv"][28] < 0.5

    def test_lstm_near_dram_floor(self, report):
        assert report.data["lstm"][28] > 0.75

    def test_memory_pressure_grows_with_cores(self, report):
        conv = report.data["conv"]
        assert conv[28] >= conv[1]
