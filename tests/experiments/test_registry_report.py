"""Tests for the experiment registry, report formatting and CLI."""

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentReport


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {
            "table1", "table2", "table3",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "ablations", "energy", "validation", "scaling",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        report = run_experiment("table1")
        assert report.experiment == "table1"


class TestReport:
    def report(self):
        return ExperimentReport(
            experiment="figX",
            title="demo",
            headers=("a", "bb"),
            rows=[(1, 2.345), ("x", "y")],
            notes=["hello"],
        )

    def test_render_contains_everything(self):
        text = self.report().render()
        assert "figX" in text and "demo" in text
        assert "2.35" in text  # float formatting
        assert "note: hello" in text

    def test_render_aligns_columns(self):
        lines = self.report().render().splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)

    def test_show_prints(self, capsys):
        self.report().show()
        assert "figX" in capsys.readouterr().out

    def test_empty_rows_ok(self):
        report = ExperimentReport("t", "empty", ("h",), [])
        assert "empty" in report.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "table2" in out

    def test_run_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "2260B" in out

    def test_unknown_exits_2(self, capsys):
        assert main(["nope"]) == 2

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
