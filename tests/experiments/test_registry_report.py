"""Tests for the experiment registry, report formatting and CLI."""

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentReport


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        expected = {
            "table1", "table2", "table3",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "ablations", "energy", "validation", "scaling", "rivals",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    def test_run_experiment_dispatches(self):
        report = run_experiment("table1")
        assert report.experiment == "table1"


class TestReport:
    def report(self):
        return ExperimentReport(
            experiment="figX",
            title="demo",
            headers=("a", "bb"),
            rows=[(1, 2.345), ("x", "y")],
            notes=["hello"],
        )

    def test_render_contains_everything(self):
        text = self.report().render()
        assert "figX" in text and "demo" in text
        assert "2.35" in text  # float formatting
        assert "note: hello" in text

    def test_render_aligns_columns(self):
        lines = self.report().render().splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)

    def test_show_prints(self, capsys):
        self.report().show()
        assert "figX" in capsys.readouterr().out

    def test_empty_rows_ok(self):
        report = ExperimentReport("t", "empty", ("h",), [])
        assert "empty" in report.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out and "table2" in out

    def test_run_table(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "2260B" in out

    def test_unknown_exits_2(self, capsys):
        assert main(["nope"]) == 2

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestRunContextApi:
    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError, match="bogus"):
            run_experiment("table1", bogus=1)

    def test_typo_rejected_not_swallowed(self):
        # The old **_kwargs signatures silently ignored misspellings.
        with pytest.raises(TypeError, match="valid options"):
            run_experiment("fig15", kstep=4)

    def test_context_overrides(self):
        from repro.experiments.registry import RunContext

        ctx = RunContext(k_steps=4)
        report = run_experiment("fig15", ctx, levels=(0.0, 0.9))
        assert report.experiment == "fig15"

    def test_context_frozen(self):
        from repro.experiments.registry import RunContext

        ctx = RunContext()
        with pytest.raises(Exception):
            ctx.k_steps = 3

    def test_with_options(self):
        from repro.experiments.registry import RunContext

        ctx = RunContext(k_steps=4)
        derived = ctx.with_options(full_grid=True)
        assert derived.full_grid and derived.k_steps == 4
        assert not ctx.full_grid

    def test_resolve_k_steps(self):
        from repro.experiments.registry import RunContext

        assert RunContext().resolve_k_steps(24) == 24
        assert RunContext(k_steps=4).resolve_k_steps(24) == 4


class TestCliWarnings:
    def test_panel_warns_on_non_fig14(self, capsys):
        assert main(["table1", "--panel", "b"]) == 0
        assert "--panel only applies to fig14" in capsys.readouterr().err

    def test_chart_warns_on_unsupported(self, capsys):
        assert main(["table1", "--chart"]) == 0
        assert "--chart only applies to" in capsys.readouterr().err

    def test_no_warning_without_flags(self, capsys):
        assert main(["table1"]) == 0
        assert "warning" not in capsys.readouterr().err


class TestCliAll:
    def test_all_continues_past_failures(self, capsys, monkeypatch):
        import repro.cli as cli_mod
        import repro.experiments.registry as registry_mod
        from repro.experiments.report import ExperimentReport

        calls = []

        def fake_run(name, ctx=None, **options):
            calls.append(name)
            if name == "bad":
                raise RuntimeError("boom")
            return ExperimentReport(name, name, ("h",), [])

        fake_experiments = {"bad": None, "good": None, "worse": None}
        monkeypatch.setattr(registry_mod, "EXPERIMENTS", fake_experiments)
        monkeypatch.setattr(cli_mod, "EXPERIMENTS", fake_experiments)
        monkeypatch.setattr(cli_mod, "run_experiment", fake_run)
        assert main(["all"]) == 1
        err = capsys.readouterr().err
        assert calls == ["bad", "good", "worse"]  # kept going past 'bad'
        assert "bad FAILED" in err and "1 experiment(s) failed" in err

    def test_single_failure_propagates(self, monkeypatch):
        import repro.cli as cli_mod

        def fake_run(name, ctx=None, **options):
            raise RuntimeError("boom")

        monkeypatch.setattr(cli_mod, "EXPERIMENTS", {"solo": None})
        monkeypatch.setattr(cli_mod, "run_experiment", fake_run)
        with pytest.raises(RuntimeError):
            main(["solo"])


class TestCliObservability:
    def test_metrics_flag_prints_summary(self, capsys):
        assert main(["fig15", "--k-steps", "4", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "== metrics ==" in out
        assert "sim_runs" in out

    def test_trace_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import validate_event, read_jsonl

        path = tmp_path / "trace.jsonl"
        assert main(["fig15", "--k-steps", "4", "--trace", str(path)]) == 0
        events = list(read_jsonl(str(path)))
        assert events
        kinds = set()
        for event in events:
            validate_event(event)
            kinds.add(event["event"])
        assert "bs_skip" in kinds
        assert "merge" in kinds
        assert "bcache_hit" in kinds or "bcache_miss" in kinds


class TestCliProfiling:
    def test_profile_prints_phase_table(self, capsys):
        assert main(["fig15", "--k-steps", "4", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "== phases ==" in out
        assert "simulate" in out
        assert "report" in out

    def test_no_profile_no_phase_table(self, capsys):
        assert main(["fig15", "--k-steps", "4"]) == 0
        assert "== phases ==" not in capsys.readouterr().out

    def test_chrome_trace_with_events(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.jsonl"
        chrome = tmp_path / "c.json"
        assert main(
            [
                "fig15", "--k-steps", "4",
                "--trace", str(trace),
                "--chrome-trace", str(chrome),
            ]
        ) == 0
        document = json.loads(chrome.read_text())
        phases = {event["ph"] for event in document["traceEvents"]}
        # Host spans, simulator instants, counters and track metadata.
        assert {"X", "i", "C", "M"} <= phases


class TestCliSubcommands:
    def test_trace_report_dispatch(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["fig15", "--k-steps", "4", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace-report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "# Trace report" in out
        assert "B$ hit rate" in out

    def test_trace_report_missing_file(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_dispatch(self, tmp_path, capsys, monkeypatch):
        # Route the ledger into tmp and fake the suite: this tests the
        # dispatch seam, not the benchmark itself (see tests/obs/test_bench).
        from repro.obs import bench

        def fake_run_suite(quick=False, repeats=2, echo=None):
            return {
                "schema": bench.BENCH_SCHEMA_VERSION,
                "created_unix": 0.0,
                "quick": quick,
                "repeats": repeats,
                "python": "3",
                "platform": "t",
                "version": "0",
                "workloads": {
                    "w": {
                        "wall_s": 0.1,
                        "jobs": 1,
                        "points": 1,
                        "sim_cycles": 10,
                        "cycles_per_sec": 100.0,
                        "counters": {},
                    }
                },
            }

        monkeypatch.setattr(bench, "run_suite", fake_run_suite)
        assert main(["bench", "--quick", "--ledger", str(tmp_path)]) == 0
        assert "baseline recorded" in capsys.readouterr().out
        assert (tmp_path / "BENCH_0001.json").exists()

    def test_subcommand_help_is_its_own(self, capsys):
        # The subcommand's own parser handles its flags: --help names
        # the subcommand, not the experiment runner.
        with pytest.raises(SystemExit) as excinfo:
            main(["trace-report", "--help"])
        assert excinfo.value.code == 0
        assert "trace-report" in capsys.readouterr().out
