"""Tests for terminal chart rendering."""

import pytest

from repro.experiments.charts import (
    GLYPHS,
    SHADES,
    fig15_charts,
    fig18_charts,
    heatmap,
    line_chart,
)


class TestHeatmap:
    def grid(self):
        return {
            (0.0, 0.0): 1.0,
            (0.0, 0.9): 1.5,
            (0.9, 0.0): 1.4,
            (0.9, 0.9): 2.0,
        }

    def test_contains_values_and_title(self):
        text = heatmap(self.grid(), title="demo")
        assert "demo" in text
        assert "1.00" in text and "2.00" in text

    def test_extremes_get_extreme_shades(self):
        text = heatmap(self.grid())
        assert SHADES[-1] in text  # max shade present

    def test_axis_labels(self):
        text = heatmap(self.grid())
        assert "BS\\NBS" in text
        assert "90%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            heatmap({})

    def test_constant_grid_safe(self):
        text = heatmap({(0.0, 0.0): 1.0, (0.0, 0.9): 1.0})
        assert "1.00" in text


class TestLineChart:
    def series(self):
        return {
            "a": {0.0: 1.0, 0.5: 1.5, 0.9: 2.0},
            "b": {0.0: 0.8, 0.5: 1.0, 0.9: 1.2},
        }

    def test_legend_lists_series(self):
        text = line_chart(self.series())
        assert f"{GLYPHS[0]}=a" in text
        assert f"{GLYPHS[1]}=b" in text

    def test_y_axis_covers_range(self):
        text = line_chart(self.series())
        assert "2.00" in text
        assert "0.80" in text

    def test_glyphs_placed(self):
        text = line_chart({"only": {0.0: 1.0, 1.0: 2.0}})
        assert text.count(GLYPHS[0]) >= 2

    def test_overlap_marked(self):
        text = line_chart({"a": {0.0: 1.0}, "b": {0.0: 1.0}}, height=4)
        assert "!" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})


class TestFigureAdapters:
    def test_fig15_charts_shapes(self):
        data = {
            "2vpu": {(0.0, 0.0): 1.0, (0.0, 0.9): 1.5, (0.9, 0.0): 1.4, (0.9, 0.9): 1.5},
            "1vpu": {(0.0, 0.0): 0.7, (0.0, 0.9): 1.9, (0.9, 0.0): 1.9, (0.9, 0.9): 1.9},
        }
        text = fig15_charts(data)
        assert "2 VPUs" in text and "1 VPU" in text

    def test_fig18_charts_per_panel(self):
        data = {
            "a": {"VC": {(0.0, 0.0): 0.7, (0.0, 0.9): 1.6}},
            "b": {"VC": {(0.0, 0.0): 0.75, (0.0, 0.9): 2.2}},
        }
        text = fig18_charts(data)
        assert "Fig. 18 a" in text and "Fig. 18 b" in text

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["fig15", "--k-steps", "4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "BS\\NBS" in out
