"""Tests for report export and experiment determinism."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.experiments import fig13, fig15, table2
from repro.experiments.context import RunContext
from repro.experiments.export import export_all, export_report, load_exported
from repro.experiments.report import ExperimentReport


class TestExportReport:
    def test_writes_text_json_and_csv(self, tmp_path):
        paths = export_report(table2.run(), tmp_path)
        assert len(paths) == 3
        assert (tmp_path / "table2.txt").exists()
        assert (tmp_path / "table2.json").exists()
        assert (tmp_path / "table2.csv").exists()

    def test_csv_matches_report_rows(self, tmp_path):
        import csv

        report = table2.run()
        export_report(report, tmp_path)
        with (tmp_path / "table2.csv").open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == [str(h) for h in report.headers]
        assert len(rows) == len(report.rows) + 1
        assert rows[1][0] == str(report.rows[0][0])

    def test_json_roundtrip(self, tmp_path):
        export_report(table2.run(), tmp_path)
        payload = load_exported(tmp_path, "table2")
        assert payload["experiment"] == "table2"
        assert payload["data"]["b_data_bytes"] == 2260
        assert payload["version"]

    def test_numpy_data_serialised(self, tmp_path):
        report = ExperimentReport(
            experiment="demo",
            title="demo",
            headers=("a",),
            rows=[(np.float64(1.5),)],
            data={"array": np.arange(3), "tuple_key": {(0.0, 0.1): 2.0}},
        )
        export_report(report, tmp_path)
        payload = load_exported(tmp_path, "demo")
        assert payload["data"]["array"] == [0, 1, 2]

    def test_export_all_manifest(self, tmp_path):
        manifest = export_all([table2.run(), fig13.run()], tmp_path)
        assert set(manifest) == {"table2", "fig13"}
        index = json.loads((tmp_path / "index.json").read_text())
        assert "table2" in index["experiments"]

    def test_cli_export_flag(self, tmp_path, capsys):
        assert main(["table1", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table1.csv").exists()


class TestMetricsCsv:
    def _snapshot(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("sim_cycles").inc(100)
        reg.gauge("peak_inflight").set_max(7)
        reg.histogram("lanes_per_op").record(4)
        reg.histogram("lanes_per_op").record(8)
        return reg.snapshot()

    def test_rows_and_columns(self, tmp_path):
        import csv

        from repro.experiments.export import METRICS_CSV_COLUMNS, export_metrics_csv

        path = export_metrics_csv(self._snapshot(), tmp_path)
        with path.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == list(METRICS_CSV_COLUMNS)
        by_name = {(row[0], row[1]): row for row in rows[1:]}
        assert by_name[("counter", "sim_cycles")][2] == "100"
        assert by_name[("gauge", "peak_inflight")][2] == "7"
        hist = by_name[("histogram", "lanes_per_op")]
        assert hist[3] == "2"  # count
        assert float(hist[4]) == 6.0  # mean

    def test_deterministic_bytes(self, tmp_path):
        from repro.experiments.export import export_metrics_csv

        snapshot = self._snapshot()
        first = export_metrics_csv(snapshot, tmp_path / "a").read_bytes()
        second = export_metrics_csv(snapshot, tmp_path / "b").read_bytes()
        assert first == second

    def test_export_all_includes_metrics(self, tmp_path):
        manifest = export_all([table2.run()], tmp_path, metrics=self._snapshot())
        assert manifest["metrics"] == ["metrics.csv"]
        assert (tmp_path / "metrics.csv").exists()

    def test_cli_metrics_export(self, tmp_path, capsys):
        assert main(["table1", "--metrics", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "metrics.csv").exists()


class TestDeterminism:
    """Every experiment is seeded: back-to-back runs must agree exactly."""

    def test_fig13_identical_runs(self):
        a = fig13.run()
        b = fig13.run()
        assert a.data["resnet50"] == b.data["resnet50"]

    def test_fig15_identical_runs(self):
        a = fig15.run(RunContext(levels=(0.0, 0.9), k_steps=4))
        b = fig15.run(RunContext(levels=(0.0, 0.9), k_steps=4))
        assert a.data["2vpu"] == b.data["2vpu"]
        assert a.data["1vpu"] == b.data["1vpu"]

    def test_simulation_determinism(self):
        from repro.core import SAVE_2VPU, simulate
        from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
        from repro.kernels.tiling import BroadcastPattern, RegisterTile

        config = GemmKernelConfig(
            name="det",
            tile=RegisterTile(4, 4, BroadcastPattern.EXPLICIT),
            k_steps=12,
            broadcast_sparsity=0.3,
            nonbroadcast_sparsity=0.4,
            seed=5,
        )
        first = simulate(generate_gemm_trace(config), SAVE_2VPU, keep_state=False)
        second = simulate(generate_gemm_trace(config), SAVE_2VPU, keep_state=False)
        assert first.cycles == second.cycles
        assert first.vpu_ops == second.vpu_ops
