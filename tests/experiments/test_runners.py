"""Fast sanity tests of the experiment runners (tiny grids).

Deep shape checks live in ``benchmarks/``; these confirm every runner
produces a well-formed report quickly.
"""

import pytest

from repro.experiments import (
    fig12,
    fig13,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    table1,
    table2,
    table3,
)
from repro.experiments.context import RunContext
from repro.experiments.sweeps import sweep_kernel
from repro.core.config import SAVE_2VPU
from repro.kernels.library import get_kernel
from repro.model.surface import SurfaceStore

TINY = (0.0, 0.9)


class TestStaticRunners:
    def test_table1(self):
        report = table1.run()
        assert report.data["cores"] == 28

    def test_table2_sizes_exact(self):
        data = table2.run().data
        assert data["temp_fp32_bytes"] == 56
        assert data["b_data_bytes"] == 2260

    def test_table3_marks(self):
        data = table3.run().data
        assert data["dense ResNet-50"].count("X") == 2
        assert data["dense VGG16"].count("X") == 4

    def test_fig12_series_lengths(self):
        data = fig12.run().data
        assert len(data["dense VGG16"]) == 13
        assert len(data["dense ResNet-50"]) == 53

    def test_fig13_curves(self):
        data = fig13.run().data
        assert len(data["resnet50"]) == 103


class TestSweepRunners:
    def test_fig15_tiny(self):
        report = fig15.run(RunContext(levels=TINY, k_steps=4))
        assert len(report.data["2vpu"]) == 4

    def test_fig17_tiny(self):
        report = fig17.run(RunContext(levels=TINY, k_steps=4))
        assert set(report.data) == {"No B$", "B$ w/ masks", "B$ w/ data"}

    def test_fig18_tiny(self):
        report = fig18.run(RunContext(levels=TINY, k_steps=4))
        for panel in report.data.values():
            assert set(panel) == {"VC", "RVC", "VC+LWD", "RVC+LWD", "HC"}

    def test_fig19_tiny(self):
        report = fig19.run(RunContext(levels=TINY, k_steps=4))
        assert len(report.data["w/ MP technique"]) == 2

    def test_fig16_tiny(self, tmp_path):
        report = fig16.run(RunContext(store=SurfaceStore(tmp_path), k_steps=4))
        assert report.data["n_kernels"] > 60


class TestSweepHelper:
    def test_sweep_speedups_positive(self):
        spec = get_kernel("explicit_wide")
        results = sweep_kernel(
            spec, {"save": SAVE_2VPU}, bs_levels=(0.0,), nbs_levels=(0.0, 0.9), k_steps=4
        )
        sweep = results["save"]
        assert all(value > 0 for value in sweep.speedups.values())

    def test_series_extraction(self):
        spec = get_kernel("explicit_wide")
        results = sweep_kernel(
            spec, {"save": SAVE_2VPU}, bs_levels=(0.0,), nbs_levels=(0.0, 0.9), k_steps=4
        )
        assert len(results["save"].series(0.0)) == 2
