"""Tests for the execution layer: determinism, ordering, LRU memo.

The contract under test: a parallel run is *indistinguishable* from a
serial run — same speedup dicts, same surfaces, results always in job
order no matter how workers interleave.
"""

import numpy as np
import pytest

from repro.core.config import SAVE_1VPU, SAVE_2VPU
from repro.experiments import executor as executor_mod
from repro.experiments.executor import (
    JOBS_ENV_VAR,
    METRIC_NS_PER_FMA,
    PointJob,
    SimExecutor,
    merge_indexed,
    resolve_jobs,
)
from repro.experiments.sweeps import sweep_kernel
from repro.kernels.library import get_kernel
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.model.surface import (
    SparsitySurface,
    SurfaceStore,
    point_config,
    simulate_point,
)

TILE = RegisterTile(2, 2, BroadcastPattern.EXPLICIT)


class TestMergeIndexed:
    def test_out_of_order_chunks_restore_job_order(self):
        # Chunks complete in reverse and interleaved order.
        chunks = [[(3, 30.0)], [(0, 0.0), (2, 20.0)], [(1, 10.0)]]
        assert merge_indexed(chunks, 4) == [0.0, 10.0, 20.0, 30.0]

    def test_missing_result_raises(self):
        with pytest.raises(ValueError, match="missing"):
            merge_indexed([[(0, 1.0)]], 2)

    def test_duplicate_result_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            merge_indexed([[(0, 1.0)], [(0, 2.0)]], 1)

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError, match="outside"):
            merge_indexed([[(5, 1.0)]], 2)


class TestResolveJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "4")
        assert resolve_jobs(None) == 4

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "lots")
        with pytest.raises(ValueError):
            resolve_jobs(None)

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-3) == 1


def _jobs(n, machine=SAVE_2VPU, k_steps=4):
    return [
        PointJob(
            config=point_config(TILE, Precision.FP32, 0.0, 0.3 * (i % 3), k_steps, i),
            machine=machine,
            metric=METRIC_NS_PER_FMA,
        )
        for i in range(n)
    ]


class TestSimExecutor:
    def test_empty_batch(self):
        assert SimExecutor(jobs=2).map([]) == []

    def test_serial_never_touches_a_pool(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("jobs=1 must stay in-process")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", explode)
        results = SimExecutor(jobs=1).map(_jobs(3))
        assert len(results) == 3 and all(v > 0 for v in results)

    def test_single_job_short_circuits(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("a one-job batch must stay in-process")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", explode)
        assert len(SimExecutor(jobs=4).map(_jobs(1))) == 1

    def test_parallel_matches_serial_exactly(self):
        jobs = _jobs(5)
        serial = SimExecutor(jobs=1).map(jobs)
        parallel = SimExecutor(jobs=2, chunksize=2).map(jobs)
        assert parallel == serial

    def test_fast_engine_parallel_matches_serial(self):
        # The fast tier reads only the seeded config and the committed
        # calibration table, so worker processes must reproduce the
        # serial results bit for bit.
        from dataclasses import replace

        jobs = [replace(job, engine="fast") for job in _jobs(5)]
        serial = SimExecutor(jobs=1).map(jobs)
        parallel = SimExecutor(jobs=2, chunksize=2).map(jobs)
        assert parallel == serial
        assert all(value > 0 for value in serial)

    def test_point_job_matches_simulate_point(self):
        job = _jobs(1)[0]
        expected = simulate_point(
            TILE, Precision.FP32, SAVE_2VPU,
            job.config.broadcast_sparsity, job.config.nonbroadcast_sparsity,
            k_steps=job.config.k_steps, seed=job.config.seed,
        )
        assert job.run() == expected

    def test_chunksize_validation(self):
        with pytest.raises(ValueError):
            SimExecutor(jobs=2, chunksize=0)


class TestSweepDeterminism:
    def test_parallel_sweep_identical_to_serial(self):
        spec = get_kernel("explicit_wide")
        machines = {"2vpu": SAVE_2VPU, "1vpu": SAVE_1VPU}
        kwargs = dict(bs_levels=(0.0, 0.6), nbs_levels=(0.0, 0.6), k_steps=4)
        serial = sweep_kernel(spec, machines, **kwargs)
        parallel = sweep_kernel(
            spec, machines, executor=SimExecutor(jobs=2), **kwargs
        )
        for label in machines:
            assert parallel[label].speedups == serial[label].speedups

    def test_parallel_surface_identical_to_serial(self):
        serial = SparsitySurface.build(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4
        )
        parallel = SparsitySurface.build(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4,
            executor=SimExecutor(jobs=2),
        )
        assert np.array_equal(parallel.ns_per_fma, serial.ns_per_fma)


class TestSurfaceStoreLru:
    def test_memo_hit_skips_disk(self, tmp_path, monkeypatch):
        store = SurfaceStore(tmp_path)
        first = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4)

        import repro.model.surface as surface_mod

        def no_parse(*args, **kwargs):
            raise AssertionError("memo hit must not re-parse the JSON file")

        monkeypatch.setattr(surface_mod.json, "loads", no_parse)
        again = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4)
        assert again is first

    def test_eviction_beyond_capacity(self, tmp_path):
        store = SurfaceStore(tmp_path, memo_size=1)
        a1 = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4)
        store.get(TILE, Precision.FP32, SAVE_1VPU, levels=(0.0,), k_steps=4)
        # A was evicted: this reloads from disk (new object, same data).
        a2 = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4)
        assert a2 is not a1
        assert np.array_equal(a2.ns_per_fma, a1.ns_per_fma)

    def test_lru_order_refreshed_by_get(self, tmp_path):
        store = SurfaceStore(tmp_path, memo_size=2)
        a = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4)
        store.get(TILE, Precision.FP32, SAVE_1VPU, levels=(0.0,), k_steps=4)
        # Touch A so B is now the least recently used, then add C.
        assert store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4) is a
        store.get(TILE, Precision.MIXED, SAVE_2VPU, levels=(0.0,), k_steps=4)
        assert store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0,), k_steps=4) is a

    def test_memo_size_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SurfaceStore(tmp_path, memo_size=0)

    def test_parallel_store_fill_writes_once(self, tmp_path):
        store = SurfaceStore(tmp_path, executor=SimExecutor(jobs=2))
        store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestExecutorMetrics:
    def _run(self, jobs, **executor_kwargs):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        values = SimExecutor(jobs=jobs, metrics=registry, **executor_kwargs).map(
            _jobs(6)
        )
        return values, registry.snapshot()

    def test_parallel_metrics_identical_to_serial(self):
        import json

        serial_values, serial_snap = self._run(jobs=1)
        parallel_values, parallel_snap = self._run(jobs=2, chunksize=2)
        assert parallel_values == serial_values
        assert json.dumps(parallel_snap, sort_keys=True) == json.dumps(
            serial_snap, sort_keys=True
        )

    def test_metrics_populated(self):
        _, snap = self._run(jobs=1)
        assert snap["counters"]["sim_runs"] == 6
        assert snap["histograms"]["cw_occupancy"]["count"] > 0

    def test_uninstrumented_values_unchanged(self):
        values, _ = self._run(jobs=1)
        assert SimExecutor(jobs=1).map(_jobs(6)) == values

    def test_trace_sink_forces_in_process(self, monkeypatch):
        from repro.obs import ListSink

        def explode(*args, **kwargs):
            raise AssertionError("tracing must not use a process pool")

        monkeypatch.setattr(executor_mod, "ProcessPoolExecutor", explode)
        sink = ListSink()
        values = SimExecutor(jobs=4, trace_sink=sink).map(_jobs(3))
        assert len(values) == 3
        assert sink.events  # events flowed through the shared sink


class TestExecutorSpans:
    def test_map_records_simulate_span(self):
        from repro.obs import SpanRecorder

        spans = SpanRecorder()
        SimExecutor(jobs=1, spans=spans).map(_jobs(3))
        simulate_spans = [r for r in spans.records if r.name == "simulate"]
        assert len(simulate_spans) == 1
        assert simulate_spans[0].attrs == {"points": 3, "workers": 1}

    def test_instrumented_map_records_merge_span(self):
        from repro.obs import MetricsRegistry, SpanRecorder

        spans = SpanRecorder()
        registry = MetricsRegistry()
        SimExecutor(jobs=1, metrics=registry, spans=spans).map(_jobs(2))
        names = [r.name for r in spans.records]
        assert "simulate" in names and "merge" in names
        merge = spans.records[names.index("merge")]
        assert merge.parent == names.index("simulate")

    def test_default_is_unprofiled(self):
        executor = SimExecutor(jobs=1)
        assert executor.spans is None
        assert executor.map(_jobs(1))

    def test_surface_build_records_span(self):
        from repro.obs import SpanRecorder

        spans = SpanRecorder()
        executor = SimExecutor(jobs=1, spans=spans)
        SparsitySurface.build(
            TILE, Precision.FP32, SAVE_2VPU,
            levels=(0.0, 0.9), k_steps=4, executor=executor,
        )
        build_spans = [r for r in spans.records if r.name == "surface.build"]
        assert len(build_spans) == 1
        assert build_spans[0].attrs["grid"] == 4
        # The executor's simulate span nests inside the build span.
        names = [r.name for r in spans.records]
        simulate_idx = names.index("simulate")
        assert spans.records[simulate_idx].parent == spans.records.index(
            build_spans[0]
        )


class TestPersistentPool:
    """The long-lived-service mode: one pool reused across batches."""

    def test_persistent_parallel_matches_serial(self):
        jobs = _jobs(5)
        serial = SimExecutor(jobs=1).map(jobs)
        with SimExecutor(jobs=2, chunksize=2, persistent=True) as executor:
            assert executor.map(jobs) == serial

    def test_pool_survives_across_batches(self):
        with SimExecutor(jobs=2, chunksize=1, persistent=True) as executor:
            first = executor.map(_jobs(3))
            pool = executor._pool
            assert pool is not None
            second = executor.map(_jobs(3))
            assert executor._pool is pool  # same pool, not a fresh one
            assert second == first
        assert executor._pool is None  # context exit closed it

    def test_close_is_idempotent_and_safe_when_serial(self):
        executor = SimExecutor(jobs=1, persistent=True)
        executor.map(_jobs(1))
        executor.close()
        executor.close()
