"""Out-of-core streaming sweeps and their store-backed twins.

The acceptance contract: a streamed sweep's stored rows are identical
to direct per-point simulation, invariant under batch size, and the
surface path's store mirror is identical to the legacy in-memory JSON
surface on a shared grid.
"""

import numpy as np
import pytest

from repro.core.config import BASELINE_2VPU, SAVE_2VPU
from repro.experiments.streamsweep import stream_sweep
from repro.experiments.sweeps import sweep_kernel
from repro.fastsim import simulate_config
from repro.kernels.library import get_kernel
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.model.surface import SparsitySurface, machine_label
from repro.store import SweepStore

LEVELS = (0.0, 0.4, 0.8)


class TestStreamSweep:
    def test_rows_match_direct_simulation(self, tmp_path):
        spec = get_kernel("resnet2_2_fwd")
        summary = stream_sweep(
            "resnet2_2_fwd",
            SAVE_2VPU,
            LEVELS,
            LEVELS,
            tmp_path,
            engine="fast",
            metric="time_ns",
            k_steps=6,
        )
        assert summary["points"] == len(LEVELS) ** 2
        rows = list(SweepStore(tmp_path).query())
        assert len(rows) == len(LEVELS) ** 2
        for row in rows:
            config = spec.config(
                broadcast_sparsity=row["bs"],
                nonbroadcast_sparsity=row["nbs"],
                k_steps=6,
                seed=0,
            )
            expected = simulate_config(config, SAVE_2VPU, "fast").time_ns
            assert row["value"] == pytest.approx(expected)

    def test_batch_size_does_not_change_rows(self, tmp_path):
        kwargs = dict(engine="fast", metric="time_ns", k_steps=6)
        stream_sweep(
            "resnet2_2_fwd", SAVE_2VPU, LEVELS, LEVELS, tmp_path / "small",
            batch_points=2, segment_rows=3, **kwargs,
        )
        stream_sweep(
            "resnet2_2_fwd", SAVE_2VPU, LEVELS, LEVELS, tmp_path / "large",
            batch_points=1000, **kwargs,
        )
        small = list(SweepStore(tmp_path / "small").query())
        large = list(SweepStore(tmp_path / "large").query())
        assert small == large

    def test_row_major_grid_order(self, tmp_path):
        stream_sweep(
            "resnet2_2_fwd", SAVE_2VPU, (0.0, 0.5), (0.0, 0.5), tmp_path,
            engine="analytic", k_steps=4,
        )
        rows = list(SweepStore(tmp_path).query())
        assert [(r["bs"], r["nbs"]) for r in rows] == [
            (0.0, 0.0), (0.0, 0.5), (0.5, 0.0), (0.5, 0.5),
        ]

    def test_summary_identity(self, tmp_path):
        summary = stream_sweep(
            "resnet2_2_fwd", BASELINE_2VPU, (0.0,), (0.0,), tmp_path,
            engine="analytic", k_steps=4,
        )
        assert summary["kernel"] == "resnet2_2_fwd"
        assert summary["machine"] == machine_label(BASELINE_2VPU)
        assert summary["engine"] == "analytic"
        described = SweepStore(tmp_path).describe()
        assert described[0]["fingerprint"] == summary["fingerprint"]

    def test_rejects_nonpositive_batch(self, tmp_path):
        with pytest.raises(ValueError, match="batch_points"):
            stream_sweep(
                "resnet2_2_fwd", SAVE_2VPU, (0.0,), (0.0,), tmp_path,
                batch_points=0,
            )


class TestSurfaceStoreMirror:
    def test_store_rows_equal_legacy_surface_json(self, tmp_path):
        # The acceptance grid: the paper's 10%-step levels.  The store
        # mirror written by SparsitySurface.build must reproduce the
        # in-memory JSON surface exactly, row for row.
        levels = tuple(round(0.1 * i, 1) for i in range(10))
        tile = RegisterTile(2, 2, BroadcastPattern.EXPLICIT)
        surface = SparsitySurface.build(
            tile,
            Precision.FP32,
            SAVE_2VPU,
            levels=levels,
            k_steps=6,
            engine="fast",
            store_root=tmp_path,
        )
        payload = surface.to_json()
        rows = list(SweepStore(tmp_path).query(kernel="surface"))
        assert len(rows) == len(levels) ** 2
        for index, row in enumerate(rows):
            i, j = divmod(index, len(levels))
            assert row["bs"] == pytest.approx(levels[i])
            assert row["nbs"] == pytest.approx(levels[j])
            assert row["value"] == pytest.approx(
                payload["ns_per_fma"][i][j]
            )
        assert rows[0]["machine"] == payload["label"]
        assert rows[0]["engine"] == payload["engine"]

    def test_streamed_sweep_equals_surface_grid(self, tmp_path):
        # Same grid, same machine, same tier: the out-of-core path and
        # the in-memory surface must agree point for point.  The
        # explicit_wide library kernel shares the surface config's
        # tile/precision; only the trace's display name differs.
        levels = (0.0, 0.3, 0.6)
        tile = get_kernel("explicit_wide").tile
        surface = SparsitySurface.build(
            tile, Precision.FP32, SAVE_2VPU,
            levels=levels, k_steps=6, engine="fast",
        )
        stream_sweep(
            "explicit_wide", SAVE_2VPU, levels, levels, tmp_path,
            engine="fast", k_steps=6,
        )
        values = np.array(
            [r["value"] for r in SweepStore(tmp_path).query()]
        ).reshape(len(levels), len(levels))
        np.testing.assert_allclose(values, surface.ns_per_fma)


class TestSweepKernelStoreMirror:
    def test_point_times_recorded_per_machine(self, tmp_path):
        spec = get_kernel("resnet2_2_fwd")
        results = sweep_kernel(
            spec,
            {"save": SAVE_2VPU},
            (0.0, 0.6),
            (0.0, 0.6),
            k_steps=4,
            engine="analytic",
            store_root=tmp_path,
        )
        store = SweepStore(tmp_path)
        rows = list(store.query(kernel="resnet2_2_fwd", metric="time_ns"))
        assert len(rows) == 4
        speedups = results["save"].speedups
        base_time = None
        for row in rows:
            speedup = speedups[(round(row["bs"], 2), round(row["nbs"], 2))]
            reconstructed = speedup * row["value"]
            if base_time is None:
                base_time = reconstructed
            assert reconstructed == pytest.approx(base_time)
