"""The columnar sweep store: writer, manifest, query engine, export."""

import io
import json

import pytest

from repro.store import (
    QUERY_FIELDS,
    STORE_SCHEMA_VERSION,
    SWEEP_COLUMNS,
    SWEEP_META_FIELDS,
    StoreError,
    SweepStore,
    SweepWriter,
    sweep_fingerprint,
    validate_meta,
)
from repro.store.writer import read_manifest


def meta(**overrides):
    base = {
        "kernel": "resnet2_2_fwd",
        "machine": "save-2vpu@1.7",
        "engine": "fast",
        "metric": "time_ns",
        "precision": "fp32",
        "k_steps": 8,
        "seed": 0,
    }
    base.update(overrides)
    return base


def write_points(root, points, m=None, **writer_kwargs):
    with SweepWriter(root, m or meta(), **writer_kwargs) as writer:
        for bs, nbs, value in points:
            writer.append(bs, nbs, value)
    return writer


POINTS = [(0.0, 0.0, 10.0), (0.0, 0.5, 8.0), (0.5, 0.0, 6.5), (0.5, 0.5, 4.0)]


class TestSchema:
    def test_fingerprint_deterministic(self):
        assert sweep_fingerprint(meta()) == sweep_fingerprint(meta())
        assert len(sweep_fingerprint(meta())) == 24

    def test_fingerprint_covers_every_meta_field(self):
        base = sweep_fingerprint(meta())
        for field in SWEEP_META_FIELDS:
            changed = meta(**{field: "other" if field != "seed" else 99})
            assert sweep_fingerprint(changed) != base, field

    def test_validate_meta_missing_field(self):
        incomplete = meta()
        del incomplete["seed"]
        with pytest.raises(ValueError, match="missing fields: seed"):
            validate_meta(incomplete)

    def test_validate_meta_unknown_field(self):
        with pytest.raises(ValueError, match="unknown fields: extra"):
            validate_meta(meta(extra=1))

    def test_query_fields_cover_columns_and_identity(self):
        assert set(SWEEP_COLUMNS) <= set(QUERY_FIELDS)
        assert set(QUERY_FIELDS) - set(SWEEP_COLUMNS) <= set(SWEEP_META_FIELDS)


class TestWriter:
    def test_roundtrip(self, tmp_path):
        writer = write_points(tmp_path, POINTS)
        rows = list(SweepStore(tmp_path).query())
        assert [(r["bs"], r["nbs"], r["value"]) for r in rows] == POINTS
        assert all(r["kernel"] == "resnet2_2_fwd" for r in rows)
        assert writer.rows_written == len(POINTS)

    def test_manifest_complete_after_clean_close(self, tmp_path):
        writer = write_points(tmp_path, POINTS)
        manifest = read_manifest(tmp_path / writer.fingerprint)
        assert manifest["complete"] is True
        assert manifest["rows"] == len(POINTS)
        assert manifest["schema"] == STORE_SCHEMA_VERSION
        assert manifest["columns"] == list(SWEEP_COLUMNS)

    def test_exception_leaves_sweep_incomplete(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with SweepWriter(tmp_path, meta()) as writer:
                writer.append(0.1, 0.2, 3.0)
                raise RuntimeError("boom")
        manifest = read_manifest(tmp_path / writer.fingerprint)
        assert manifest["complete"] is False
        assert manifest["rows"] == 1  # the flushed tail is still queryable

    def test_segment_rollover(self, tmp_path):
        points = [(i * 0.01, i * 0.02, float(i)) for i in range(10)]
        writer = write_points(tmp_path, points, segment_rows=4)
        manifest = read_manifest(tmp_path / writer.fingerprint)
        assert [s["rows"] for s in manifest["segments"]] == [4, 4, 2]
        values = [r["value"] for r in SweepStore(tmp_path).query()]
        assert values == [float(i) for i in range(10)]

    def test_existing_sweep_refused_without_overwrite(self, tmp_path):
        write_points(tmp_path, POINTS)
        with pytest.raises(StoreError, match="already exists"):
            SweepWriter(tmp_path, meta())

    def test_overwrite_replaces_previous_run(self, tmp_path):
        write_points(tmp_path, POINTS, segment_rows=2)
        write_points(
            tmp_path, [(0.9, 0.9, 1.0)], overwrite=True, segment_rows=2
        )
        rows = list(SweepStore(tmp_path).query())
        assert [(r["bs"], r["nbs"], r["value"]) for r in rows] == [
            (0.9, 0.9, 1.0)
        ]

    def test_append_batch_matches_append(self, tmp_path):
        write_points(tmp_path / "one", POINTS)
        with SweepWriter(tmp_path / "two", meta()) as writer:
            writer.append_batch(
                [p[0] for p in POINTS],
                [p[1] for p in POINTS],
                [p[2] for p in POINTS],
            )
        assert list(SweepStore(tmp_path / "one").query()) == list(
            SweepStore(tmp_path / "two").query()
        )

    def test_append_batch_rejects_ragged_columns(self, tmp_path):
        with SweepWriter(tmp_path, meta()) as writer:
            with pytest.raises(ValueError, match="equal lengths"):
                writer.append_batch([0.1], [0.2, 0.3], [1.0])

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = write_points(tmp_path, POINTS)
        with pytest.raises(StoreError, match="closed"):
            writer.append(0.1, 0.1, 1.0)

    def test_version_mismatch_refused(self, tmp_path):
        writer = write_points(tmp_path, POINTS)
        manifest_path = tmp_path / writer.fingerprint / "manifest.json"
        payload = json.loads(manifest_path.read_text())
        payload["schema"] = STORE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="store schema"):
            list(SweepStore(tmp_path).query())


class TestQuery:
    @pytest.fixture()
    def store(self, tmp_path):
        write_points(tmp_path, POINTS)
        write_points(
            tmp_path,
            [(0.3, 0.3, 99.0)],
            meta(machine="baseline-2vpu@1.7", engine="exact"),
        )
        return SweepStore(tmp_path)

    def test_identity_filters(self, store):
        assert store.count(machine="baseline-2vpu@1.7") == 1
        assert store.count(engine="fast") == len(POINTS)
        assert store.count(kernel="resnet2_2_fwd") == len(POINTS) + 1
        assert store.count(kernel="absent") == 0

    def test_range_filters_inclusive(self, store):
        assert store.count(bs_range=(0.0, 0.0)) == 2
        assert store.count(bs_range=(0.5, 0.5), nbs_range=(0.5, 0.5)) == 1
        assert store.count(engine="fast", bs_range=(0.4, 1.0)) == 2

    def test_fingerprint_filter(self, store):
        fingerprint = sweep_fingerprint(meta())
        assert store.count(fingerprint=fingerprint) == len(POINTS)

    def test_describe_lists_both_sweeps(self, store):
        summaries = store.describe()
        assert len(summaries) == 2
        assert {s["engine"] for s in summaries} == {"fast", "exact"}
        assert all(s["complete"] for s in summaries)

    def test_empty_root_queries_empty(self, tmp_path):
        empty = SweepStore(tmp_path / "missing")
        assert list(empty.query()) == []
        assert empty.describe() == []


class TestAggregate:
    @pytest.fixture()
    def store(self, tmp_path):
        write_points(tmp_path, POINTS)
        write_points(
            tmp_path,
            [(0.0, 0.0, 20.0), (0.5, 0.5, 2.0)],
            meta(mechanism="sparce"),
        )
        return SweepStore(tmp_path)

    def test_mean_by_mechanism(self, store):
        rows = store.aggregate(("mechanism",), reduce="mean")
        by_mechanism = {row["mechanism"]: row["value"] for row in rows}
        assert by_mechanism["save"] == pytest.approx(28.5 / 4)
        assert by_mechanism["sparce"] == pytest.approx(11.0)
        assert all(row["reduce"] == "mean" for row in rows)

    def test_count_by_mechanism(self, store):
        rows = store.aggregate(("mechanism",), reduce="count")
        assert {(r["mechanism"], r["value"]) for r in rows} == {
            ("save", 4.0),
            ("sparce", 2.0),
        }

    def test_min_max(self, store):
        low = store.aggregate(("kernel",), reduce="min")
        high = store.aggregate(("kernel",), reduce="max")
        assert low[0]["value"] == 2.0
        assert high[0]["value"] == 20.0

    def test_multi_column_groups_sorted(self, store):
        rows = store.aggregate(("mechanism", "bs"), reduce="mean")
        keys = [(row["mechanism"], row["bs"]) for row in rows]
        assert keys == sorted(keys)
        assert len(keys) == 4  # two mechanisms x two bs levels

    def test_filters_apply_before_grouping(self, store):
        rows = store.aggregate(
            ("mechanism",), reduce="count", mechanism="sparce"
        )
        assert rows == [
            {"mechanism": "sparce", "reduce": "count", "value": 2.0}
        ]

    def test_unknown_column_rejected(self, store):
        with pytest.raises(ValueError, match="group-by column"):
            store.aggregate(("flavour",))

    def test_unknown_reduction_rejected(self, store):
        with pytest.raises(ValueError, match="reduction"):
            store.aggregate(("mechanism",), reduce="median")

    def test_empty_group_by_rejected(self, store):
        with pytest.raises(ValueError, match="at least one"):
            store.aggregate(())

    def test_empty_store_aggregates_empty(self, tmp_path):
        assert SweepStore(tmp_path / "none").aggregate(("kernel",)) == []


class TestExport:
    def test_csv_header_and_rows(self, tmp_path):
        write_points(tmp_path, POINTS)
        out = io.StringIO()
        count = SweepStore.write_csv(SweepStore(tmp_path).query(), out)
        lines = out.getvalue().strip().splitlines()
        assert lines[0] == ",".join(QUERY_FIELDS)
        assert count == len(POINTS)
        assert len(lines) == len(POINTS) + 1
        assert lines[1].startswith("resnet2_2_fwd,save-2vpu@1.7,fast,save,time_ns,")

    def test_json_field_order(self, tmp_path):
        write_points(tmp_path, POINTS)
        rows = json.loads(
            SweepStore.rows_to_json(SweepStore(tmp_path).query())
        )
        assert len(rows) == len(POINTS)
        assert list(rows[0]) == list(QUERY_FIELDS)
