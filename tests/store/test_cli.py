"""``repro sweep`` / ``repro query`` end-to-end through the CLI mains."""

import json

import pytest

from repro.store.cli import query_main, sweep_main


@pytest.fixture(scope="module")
def swept_store(tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    code = sweep_main(
        [
            "resnet2_2_fwd",
            "--store", str(root),
            "--grid", "4",
            "--k-steps", "4",
            "--engine", "analytic",
        ]
    )
    assert code == 0
    return root


class TestSweepMain:
    def test_unknown_kernel_exits_2(self, tmp_path, capsys):
        assert sweep_main(["nope", "--store", str(tmp_path)]) == 2
        assert "nope" in capsys.readouterr().err

    def test_existing_sweep_exits_1(self, swept_store, capsys):
        code = sweep_main(
            [
                "resnet2_2_fwd",
                "--store", str(swept_store),
                "--grid", "4",
                "--k-steps", "4",
                "--engine", "analytic",
            ]
        )
        assert code == 1
        assert "already exists" in capsys.readouterr().err

    def test_summary_line(self, swept_store, tmp_path, capsys):
        code = sweep_main(
            [
                "resnet2_2_fwd",
                "--store", str(tmp_path),
                "--grid", "2",
                "--k-steps", "4",
                "--engine", "analytic",
                "--machine", "baseline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "swept 4 points" in out
        assert "baseline-2vpu@1.7" in out


class TestQueryMain:
    def test_count(self, swept_store, capsys):
        assert query_main([str(swept_store), "--count"]) == 0
        assert capsys.readouterr().out.strip() == "16"

    def test_range_filter(self, swept_store, capsys):
        code = query_main(
            [str(swept_store), "--bs", "0.0:0.3", "--count"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "8"

    def test_bad_range_exits_2(self, swept_store, capsys):
        with pytest.raises(SystemExit) as excinfo:
            query_main([str(swept_store), "--bs", "wat"])
        assert excinfo.value.code == 2

    def test_csv_format(self, swept_store, capsys):
        assert query_main([str(swept_store), "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "kernel,machine,engine,mechanism,metric,bs,nbs,value"
        assert len(lines) == 17

    def test_json_format(self, swept_store, capsys):
        assert query_main([str(swept_store), "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 16
        assert rows[0]["kernel"] == "resnet2_2_fwd"

    def test_text_format_row_count_footer(self, swept_store, capsys):
        assert query_main([str(swept_store)]) == 0
        out = capsys.readouterr().out
        assert "(16 rows)" in out

    def test_list(self, swept_store, capsys):
        assert query_main([str(swept_store), "--list"]) == 0
        out = capsys.readouterr().out
        assert "resnet2_2_fwd" in out
        assert "rows=16" in out
        assert "complete" in out

    def test_no_match_filters(self, swept_store, capsys):
        assert query_main(
            [str(swept_store), "--kernel", "absent", "--count"]
        ) == 0
        assert capsys.readouterr().out.strip() == "0"


class TestQueryAggregation:
    def test_group_by_count(self, swept_store, capsys):
        code = query_main(
            [str(swept_store), "--group-by", "mechanism", "--reduce", "count"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mechanism=save  count=16" in out
        assert "(1 groups)" in out

    def test_group_by_two_columns_mean(self, swept_store, capsys):
        code = query_main(
            [str(swept_store), "--group-by", "kernel,bs"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[-1] == "(4 groups)"
        assert all("mean=" in line for line in lines[:-1])
        assert all(line.startswith("kernel=resnet2_2_fwd") for line in lines[:-1])

    def test_group_by_json(self, swept_store, capsys):
        code = query_main(
            [
                str(swept_store), "--group-by", "bs", "--reduce", "max",
                "--format", "json",
            ]
        )
        assert code == 0
        groups = json.loads(capsys.readouterr().out)
        assert len(groups) == 4
        assert all(group["reduce"] == "max" for group in groups)

    def test_group_by_respects_filters(self, swept_store, capsys):
        code = query_main(
            [
                str(swept_store), "--group-by", "bs", "--reduce", "count",
                "--bs", "0.0:0.3",
            ]
        )
        assert code == 0
        assert "(2 groups)" in capsys.readouterr().out

    def test_unknown_column_exits_2(self, swept_store, capsys):
        code = query_main([str(swept_store), "--group-by", "flavour"])
        assert code == 2
        assert "flavour" in capsys.readouterr().err
