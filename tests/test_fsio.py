"""Tests for the shared filesystem primitives (atomic writes, locks)."""

import threading

import pytest

from repro.fsio import FileLock, LockTimeout, atomic_write_text


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        target = tmp_path / "entry.json"
        atomic_write_text(target, "one")
        assert target.read_text() == "one"
        atomic_write_text(target, "two")
        assert target.read_text() == "two"

    def test_no_temp_files_left(self, tmp_path):
        target = tmp_path / "entry.json"
        atomic_write_text(target, "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["entry.json"]


class TestFileLock:
    def test_exclusion(self, tmp_path):
        path = tmp_path / "entry.lock"
        with FileLock(path):
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.1).acquire()

    def test_release_allows_reacquire(self, tmp_path):
        path = tmp_path / "entry.lock"
        lock = FileLock(path)
        with lock:
            assert lock.held
        assert not lock.held
        with FileLock(path, timeout=0.5):
            pass

    def test_reentry_rejected(self, tmp_path):
        lock = FileLock(tmp_path / "entry.lock")
        with lock:
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_waiter_proceeds_after_release(self, tmp_path):
        path = tmp_path / "entry.lock"
        held = threading.Event()
        order = []

        def holder():
            with FileLock(path):
                held.set()
                order.append("held")

        lock = FileLock(path, timeout=5.0)
        thread = threading.Thread(target=holder)
        thread.start()
        held.wait(5)
        thread.join(5)
        with lock:
            order.append("acquired")
        assert order == ["held", "acquired"]
