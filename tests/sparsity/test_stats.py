"""Tests for sparsity statistics."""

import numpy as np
import pytest

from repro.sparsity.generators import sparse_vector
from repro.sparsity.stats import (
    accumulator_lane_skip_probability,
    effectual_lane_fraction,
    expected_effectual_fraction,
    measured_sparsity,
)


class TestMeasuredSparsity:
    def test_dense(self):
        assert measured_sparsity(np.ones(10)) == 0.0

    def test_all_zero(self):
        assert measured_sparsity(np.zeros(10)) == 1.0

    def test_half(self):
        values = np.array([0, 1, 0, 1], dtype=np.float32)
        assert measured_sparsity(values) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            measured_sparsity(np.array([]))


class TestEffectualLaneFraction:
    def test_both_dense(self):
        a = np.ones(16)
        b = np.ones(16)
        assert effectual_lane_fraction(a, b) == 1.0

    def test_zero_in_either_kills_lane(self):
        a = np.array([1.0, 0.0, 1.0, 0.0])
        b = np.array([1.0, 1.0, 0.0, 0.0])
        assert effectual_lane_fraction(a, b) == 0.25

    def test_write_mask_kills_lane(self):
        a = np.ones(4)
        b = np.ones(4)
        mask = np.array([True, False, True, False])
        assert effectual_lane_fraction(a, b, mask) == 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            effectual_lane_fraction(np.ones(4), np.ones(5))

    def test_statistical_match_with_expected(self):
        rng = np.random.default_rng(0)
        a = sparse_vector(20000, 0.3, rng)
        b = sparse_vector(20000, 0.5, rng)
        measured = effectual_lane_fraction(a, b)
        assert measured == pytest.approx(expected_effectual_fraction(0.3, 0.5), abs=0.02)


class TestMixedPrecisionSkipProbability:
    def test_dense_never_skips(self):
        assert accumulator_lane_skip_probability(1.0) == 0.0

    def test_fully_sparse_always_skips(self):
        assert accumulator_lane_skip_probability(0.0) == 1.0

    def test_square_law(self):
        # Paper Sec. V: at 50% multiplicand sparsity only 25% of ALs skip.
        assert accumulator_lane_skip_probability(0.5) == pytest.approx(0.25)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            accumulator_lane_skip_probability(1.5)
