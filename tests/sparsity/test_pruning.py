"""Tests for pruning schedules and magnitude pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.pruning import (
    GNMT_PRUNING,
    RESNET50_PRUNING,
    PruningSchedule,
    magnitude_prune,
    pruning_write_mask,
)
from repro.sparsity.stats import measured_sparsity


class TestPruningSchedule:
    def test_zero_before_start(self):
        assert RESNET50_PRUNING.sparsity_at(0) == 0.0
        assert RESNET50_PRUNING.sparsity_at(32) == 0.0

    def test_target_after_end(self):
        assert RESNET50_PRUNING.sparsity_at(60) == pytest.approx(0.80)
        assert RESNET50_PRUNING.sparsity_at(102) == pytest.approx(0.80)

    def test_monotone_nondecreasing(self):
        curve = RESNET50_PRUNING.curve()
        assert (np.diff(curve) >= -1e-12).all()

    def test_cubic_shape_midpoint(self):
        # Zhu-Gupta is front-loaded: at the schedule midpoint sparsity
        # exceeds half the target.
        mid = (32 + 60) / 2
        assert RESNET50_PRUNING.sparsity_at(mid) > 0.40

    def test_gnmt_parameters(self):
        assert GNMT_PRUNING.sparsity_at(40_000) == 0.0
        assert GNMT_PRUNING.sparsity_at(190_000) == pytest.approx(0.90)
        assert GNMT_PRUNING.sparsity_at(340_000) == pytest.approx(0.90)
        assert GNMT_PRUNING.step_name == "iteration"

    def test_curve_length(self):
        assert len(RESNET50_PRUNING.curve()) == 103
        assert len(GNMT_PRUNING.curve(points=50)) == 50

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ValueError):
            PruningSchedule(start_step=10, end_step=5, target_sparsity=0.5, total_steps=20)
        with pytest.raises(ValueError):
            PruningSchedule(start_step=0, end_step=5, target_sparsity=1.5, total_steps=20)

    @given(st.floats(0, 102))
    @settings(max_examples=50)
    def test_bounded_by_target(self, step):
        value = RESNET50_PRUNING.sparsity_at(step)
        assert 0.0 <= value <= 0.80 + 1e-12


class TestMagnitudePrune:
    def test_prunes_smallest(self):
        weights = np.array([0.1, -5.0, 0.2, 3.0], dtype=np.float32)
        pruned = magnitude_prune(weights, 0.5)
        assert pruned[0] == 0 and pruned[2] == 0
        assert pruned[1] == -5.0 and pruned[3] == 3.0

    def test_exact_sparsity(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=1000).astype(np.float32)
        pruned = magnitude_prune(weights, 0.8)
        assert measured_sparsity(pruned) == pytest.approx(0.8)

    def test_zero_sparsity_identity(self):
        weights = np.array([1.0, 2.0], dtype=np.float32)
        assert np.array_equal(magnitude_prune(weights, 0.0), weights)

    def test_preserves_shape_and_input(self):
        weights = np.ones((4, 4), dtype=np.float32)
        pruned = magnitude_prune(weights, 0.25)
        assert pruned.shape == (4, 4)
        assert weights.all()

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            magnitude_prune(np.ones(4), 2.0)

    def test_threshold_property(self):
        # Every surviving weight must be >= every pruned weight in magnitude.
        rng = np.random.default_rng(1)
        weights = rng.normal(size=200).astype(np.float32)
        pruned = magnitude_prune(weights, 0.6)
        survivor_min = np.abs(pruned[pruned != 0]).min()
        dropped = np.abs(weights[pruned == 0])
        assert (dropped <= survivor_min + 1e-12).all()


class TestPruningWriteMask:
    def test_mask_marks_survivors(self):
        weights = np.array([0.0, 1.0, 0.0, -2.0])
        assert np.array_equal(pruning_write_mask(weights), [False, True, False, True])
