"""Tests for sparse tensor generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparsity.generators import sparse_matrix, sparse_vector, sparsify, zero_mask
from repro.sparsity.stats import measured_sparsity


class TestZeroMask:
    def test_exact_count(self):
        mask = zero_mask((100,), 0.3, rng=0)
        assert mask.sum() == 30

    def test_zero_sparsity(self):
        assert not zero_mask((64,), 0.0, rng=0).any()

    def test_full_sparsity(self):
        assert zero_mask((64,), 1.0, rng=0).all()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            zero_mask((10,), 1.5)
        with pytest.raises(ValueError):
            zero_mask((10,), -0.1)

    def test_deterministic_with_seed(self):
        a = zero_mask((256,), 0.5, rng=42)
        b = zero_mask((256,), 0.5, rng=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = zero_mask((256,), 0.5, rng=1)
        b = zero_mask((256,), 0.5, rng=2)
        assert not np.array_equal(a, b)

    def test_2d_shape(self):
        mask = zero_mask((16, 16), 0.25, rng=0)
        assert mask.shape == (16, 16)
        assert mask.sum() == 64

    @given(st.floats(0.0, 1.0), st.integers(1, 500))
    @settings(max_examples=30)
    def test_count_matches_rounding(self, sparsity, n):
        mask = zero_mask((n,), sparsity, rng=0)
        assert mask.sum() == int(round(sparsity * n))


class TestSparseGeneration:
    def test_vector_sparsity(self):
        vec = sparse_vector(1000, 0.4, rng=0)
        assert measured_sparsity(vec) == pytest.approx(0.4)

    def test_matrix_sparsity(self):
        mat = sparse_matrix((50, 40), 0.7, rng=0)
        assert measured_sparsity(mat) == pytest.approx(0.7)

    def test_nonzero_magnitudes_bounded(self):
        vec = sparse_vector(1000, 0.0, rng=0)
        mags = np.abs(vec)
        assert (mags >= 0.25).all() and (mags < 2.0).all()

    def test_both_signs_present(self):
        vec = sparse_vector(1000, 0.0, rng=0)
        assert (vec > 0).any() and (vec < 0).any()

    def test_dtype_is_float32(self):
        assert sparse_vector(16, 0.5, rng=0).dtype == np.float32

    def test_nonzeros_survive_bf16_rounding(self):
        from repro.isa.datatypes import bf16_round

        vec = sparse_vector(1000, 0.5, rng=0)
        rounded = bf16_round(vec)
        assert np.array_equal(rounded == 0, vec == 0)


class TestSparsify:
    def test_preserves_input(self):
        values = np.ones(100, dtype=np.float32)
        out = sparsify(values, 0.5, rng=0)
        assert values.all()  # original untouched
        assert measured_sparsity(out) == pytest.approx(0.5)

    def test_zero_rate_is_identity(self):
        values = np.arange(1, 11, dtype=np.float32)
        assert np.array_equal(sparsify(values, 0.0, rng=0), values)
