"""Tests for activation-sparsity profiles (Fig. 12 substrate)."""

import numpy as np
import pytest

from repro.sparsity.profiles import (
    gnmt_activation_profile,
    resnet50_dense_activation_profile,
    resnet50_pruned_activation_profile,
    vgg16_activation_profile,
)


class TestVgg16Profile:
    def test_layer_count(self):
        assert vgg16_activation_profile().n_layers == 13

    def test_first_layer_dense(self):
        profile = vgg16_activation_profile()
        assert profile.sparsity_at(1, 0) == 0.0
        assert profile.sparsity_at(1, 90) == 0.0

    def test_range_matches_relu_band(self):
        # Paper: ReLU networks see 40-90% activation sparsity.
        profile = vgg16_activation_profile()
        finals = [profile.final_sparsity(l) for l in range(2, 14)]
        assert min(finals) >= 0.35
        assert max(finals) <= 0.95

    def test_deeper_layers_sparser(self):
        profile = vgg16_activation_profile()
        assert profile.final_sparsity(13) > profile.final_sparsity(2)

    def test_sparsity_grows_during_training(self):
        profile = vgg16_activation_profile()
        assert profile.sparsity_at(7, 90) >= profile.sparsity_at(7, 1)

    def test_table_shape(self):
        table = vgg16_activation_profile().table()
        assert table.shape[0] == 13

    def test_bounds_validation(self):
        profile = vgg16_activation_profile()
        with pytest.raises(ValueError):
            profile.sparsity_at(0, 10)
        with pytest.raises(ValueError):
            profile.sparsity_at(14, 10)
        with pytest.raises(ValueError):
            profile.sparsity_at(5, 1000)


class TestResnet50Profiles:
    def test_layer_count(self):
        assert resnet50_dense_activation_profile().n_layers == 53

    def test_lower_than_vgg16(self):
        vgg = vgg16_activation_profile()
        res = resnet50_dense_activation_profile()
        vgg_mean = np.mean([vgg.final_sparsity(l) for l in range(2, 14)])
        res_mean = np.mean([res.final_sparsity(l) for l in range(2, 54)])
        assert res_mean < vgg_mean

    def test_residual_consumers_dip(self):
        profile = resnet50_dense_activation_profile()
        # Layer with (layer-1) % 3 == 1 consumes a residual-add output.
        assert profile.final_sparsity(5) < profile.final_sparsity(4)

    def test_pruned_uplift_after_pruning_starts(self):
        dense = resnet50_dense_activation_profile(102)
        pruned = resnet50_pruned_activation_profile(102)
        assert pruned.sparsity_at(30, 90) > dense.sparsity_at(30, 90)

    def test_pruned_matches_dense_before_pruning(self):
        dense = resnet50_dense_activation_profile(102)
        pruned = resnet50_pruned_activation_profile(102)
        assert pruned.sparsity_at(30, 10) == pytest.approx(dense.sparsity_at(30, 10))

    def test_all_values_clamped(self):
        table = resnet50_pruned_activation_profile().table()
        assert (table >= 0).all() and (table <= 0.95).all()


class TestGnmtProfile:
    def test_constant_twenty_percent(self):
        profile = gnmt_activation_profile()
        for layer in (1, 4, 8):
            for step in (0, 100_000, 340_000):
                assert profile.sparsity_at(layer, step) == pytest.approx(0.20)

    def test_no_dense_first_layer(self):
        # GNMT's first cell also sees dropout sparsity.
        assert gnmt_activation_profile().sparsity_at(1, 0) == pytest.approx(0.20)
