"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; these tests keep them from
bit-rotting.  Each runs in-process via runpy (sharing the surface
cache) with stdout captured.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_discovered():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES
