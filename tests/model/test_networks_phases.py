"""Tests for the network zoo and the Table III phase mapping."""

import pytest

from repro.kernels.conv import ConvShape, Phase
from repro.kernels.lstm import LstmShape
from repro.kernels.tiling import BroadcastPattern
from repro.model.networks import GNMT, RESNET50_DENSE, RESNET50_PRUNED, VGG16, NetworkModel
from repro.model.phases import kernel_tile_for_phase, phase_sparsity
from repro.sparsity.profiles import vgg16_activation_profile


class TestNetworkZoo:
    def test_vgg16_has_13_convs(self):
        assert VGG16.n_layers == 13
        assert all(isinstance(layer, ConvShape) for layer in VGG16.layers)

    def test_resnet50_has_53_convs(self):
        assert RESNET50_DENSE.n_layers == 53

    def test_gnmt_has_8_cells(self):
        assert GNMT.n_layers == 8
        assert all(isinstance(layer, LstmShape) for layer in GNMT.layers)

    def test_vgg16_first_layer_rgb(self):
        assert VGG16.layers[0].in_channels == 3

    def test_resnet50_stem_is_7x7_stride2(self):
        stem = RESNET50_DENSE.layers[0]
        assert stem.kernel == 7 and stem.stride == 2

    def test_resnet50_total_weights_plausible(self):
        # ResNet-50 has ~23.5M conv weights (25.6M incl. FC).
        total = sum(layer.weight_count for layer in RESNET50_DENSE.layers)
        assert 20e6 < total < 28e6

    def test_vgg16_conv_weights_plausible(self):
        # VGG16 has ~14.7M conv weights.
        total = sum(layer.weight_count for layer in VGG16.layers)
        assert 13e6 < total < 16e6

    def test_pruning_bindings(self):
        assert VGG16.pruning is None
        assert RESNET50_PRUNED.pruning is not None
        assert GNMT.pruning is not None

    def test_weight_sparsity_progression(self):
        assert RESNET50_PRUNED.weight_sparsity_at(0) == 0.0
        assert RESNET50_PRUNED.weight_sparsity_at(102) == pytest.approx(0.80)
        assert RESNET50_DENSE.weight_sparsity_at(90) == 0.0

    def test_gradient_sources(self):
        # VGG16: ReLU gradients are sparse; ResNet-50: BatchNorm kills
        # gradient sparsity; GNMT: dropout.
        assert VGG16.output_gradient_sparsity(5, 90) > 0
        assert RESNET50_DENSE.output_gradient_sparsity(5, 90) == 0.0
        assert GNMT.output_gradient_sparsity(3, 100_000) == pytest.approx(0.20)

    def test_layer_profile_length_validated(self):
        with pytest.raises(ValueError):
            NetworkModel(
                name="bad",
                layers=VGG16.layers[:5],
                activation_profile=vgg16_activation_profile(),
            )

    def test_unknown_gradient_source_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(
                name="bad",
                layers=VGG16.layers,
                activation_profile=vgg16_activation_profile(),
                gradient_source="magic",
            )


class TestPhaseSparsity:
    """The mapping must reproduce Table III's check marks."""

    def test_dense_vgg16_row(self):
        step = 45
        fwd = phase_sparsity(VGG16, 5, Phase.FORWARD, step)
        bwd_in = phase_sparsity(VGG16, 5, Phase.BACKWARD_INPUT, step)
        bwd_w = phase_sparsity(VGG16, 5, Phase.BACKWARD_WEIGHT, step)
        assert fwd[0] > 0 and fwd[1] == 0  # BS only
        assert bwd_in[0] > 0 and bwd_in[1] == 0  # BS only
        assert bwd_w[0] > 0 and bwd_w[1] > 0  # BS and NBS

    def test_dense_resnet50_row(self):
        step = 45
        fwd = phase_sparsity(RESNET50_DENSE, 5, Phase.FORWARD, step)
        bwd_in = phase_sparsity(RESNET50_DENSE, 5, Phase.BACKWARD_INPUT, step)
        bwd_w = phase_sparsity(RESNET50_DENSE, 5, Phase.BACKWARD_WEIGHT, step)
        assert fwd[0] > 0 and fwd[1] == 0
        assert bwd_in == (0.0, 0.0)  # no sparsity at all (paper note)
        assert bwd_w[0] > 0 and bwd_w[1] == 0

    def test_pruned_resnet50_row(self):
        step = 90  # pruning complete
        fwd = phase_sparsity(RESNET50_PRUNED, 5, Phase.FORWARD, step)
        bwd_in = phase_sparsity(RESNET50_PRUNED, 5, Phase.BACKWARD_INPUT, step)
        bwd_w = phase_sparsity(RESNET50_PRUNED, 5, Phase.BACKWARD_WEIGHT, step)
        assert fwd[0] > 0 and fwd[1] == pytest.approx(0.80)
        # Fig. 18's premise: NBS present while BS is not.
        assert bwd_in[0] == 0.0 and bwd_in[1] == pytest.approx(0.80)
        assert bwd_w[0] > 0 and bwd_w[1] == 0

    def test_pruned_gnmt_row(self):
        step = 300_000
        fwd = phase_sparsity(GNMT, 3, Phase.FORWARD, step)
        bwd = phase_sparsity(GNMT, 3, Phase.BACKWARD_INPUT, step)
        assert fwd[0] == pytest.approx(0.20) and fwd[1] == pytest.approx(0.90)
        assert bwd[0] == pytest.approx(0.20) and bwd[1] == pytest.approx(0.90)

    def test_first_layer_has_no_activation_sparsity(self):
        fwd = phase_sparsity(VGG16, 0, Phase.FORWARD, 90)
        assert fwd[0] == 0.0


class TestKernelTiles:
    def test_forward_is_explicit(self):
        tile = kernel_tile_for_phase(Phase.FORWARD)
        assert tile.pattern == BroadcastPattern.EXPLICIT

    def test_backward_input_matches_fig18a(self):
        tile = kernel_tile_for_phase(Phase.BACKWARD_INPUT)
        assert tile.accumulators == 28
        assert tile.effective_cw == 1
        assert tile.pattern == BroadcastPattern.EMBEDDED

    def test_backward_weight_embedded(self):
        tile = kernel_tile_for_phase(Phase.BACKWARD_WEIGHT)
        assert tile.pattern == BroadcastPattern.EMBEDDED

    def test_lstm_tile(self):
        tile = kernel_tile_for_phase(Phase.BACKWARD_INPUT, lstm=True)
        assert tile.pattern == BroadcastPattern.EXPLICIT
