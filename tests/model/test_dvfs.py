"""Tests for the DVFS switching-overhead check."""

import pytest

from repro.kernels.conv import Phase
from repro.kernels.tiling import Precision
from repro.model.dvfs import DvfsModel
from repro.model.estimator import ONE_VPU, TWO_VPUS, KernelEstimate, NetworkEstimator
from repro.model.networks import RESNET50_PRUNED
from repro.model.surface import SurfaceStore


def estimate(t2, t1, name="k"):
    return KernelEstimate(
        layer_name=name,
        phase=Phase.FORWARD,
        category="forward",
        times_ns={"baseline": max(t2, t1) * 1.5, TWO_VPUS: t2, ONE_VPU: t1},
    )


class TestSchedule:
    def test_picks_faster_config(self):
        model = DvfsModel()
        choices, total, transitions = model.schedule(
            [estimate(10.0, 20.0), estimate(30.0, 5.0)]
        )
        assert choices == [TWO_VPUS, ONE_VPU]
        assert total == 15.0
        assert transitions == 1

    def test_no_transitions_when_stable(self):
        model = DvfsModel()
        _c, _t, transitions = model.schedule([estimate(1.0, 2.0)] * 5)
        assert transitions == 0

    def test_alternating_maximises_transitions(self):
        model = DvfsModel()
        stream = [estimate(1.0, 2.0), estimate(2.0, 1.0)] * 3
        _c, _t, transitions = model.schedule(stream)
        assert transitions == 5

    def test_overhead_fraction(self):
        model = DvfsModel(transition_ns=100.0)
        stream = [estimate(1000.0, 2000.0), estimate(2000.0, 1000.0)]
        assert model.overhead_fraction(stream) == pytest.approx(100.0 / 2000.0)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            DvfsModel().overhead_fraction([])


class TestPaperClaim:
    def test_overhead_negligible_for_resnet_training(self):
        # Paper: ~10 us transitions vs tens-of-milliseconds kernels ->
        # neglecting the overhead is justified.
        estimator = NetworkEstimator(
            RESNET50_PRUNED,
            Precision.FP32,
            store=SurfaceStore(),
            levels=(0.0, 0.45, 0.9),
            k_steps=8,
        )
        estimates = estimator.step_estimates(80, training=True)
        model = DvfsModel()
        assert model.overhead_fraction(estimates) < 0.02
        assert model.is_negligible(estimates)
