"""Invariant tests on the whole-network estimator's aggregation."""

import pytest

from repro.kernels.conv import Phase
from repro.kernels.tiling import Precision
from repro.model.estimator import (
    BASELINE,
    DYNAMIC,
    ONE_VPU,
    STATIC,
    TWO_VPUS,
    KernelEstimate,
    aggregate,
)


def estimate(category, base, two, one, name="layer"):
    return KernelEstimate(
        layer_name=name,
        phase=Phase.FORWARD,
        category=category,
        times_ns={BASELINE: base, TWO_VPUS: two, ONE_VPU: one},
    )


class TestAggregate:
    def test_breakdown_sums_to_total(self):
        steps = [
            [estimate("forward", 10, 8, 9), estimate("backward weight", 20, 15, 18)],
            [estimate("forward", 12, 9, 10), estimate("backward weight", 22, 16, 19)],
        ]
        configs = aggregate(steps, include_static=True)
        for result in configs.values():
            assert sum(result.breakdown_ns.values()) == pytest.approx(result.total_ns)

    def test_dynamic_never_slower_than_fixed(self):
        steps = [[estimate("forward", 10, 8, 12), estimate("forward", 10, 12, 8)]]
        configs = aggregate(steps, include_static=True)
        assert configs[DYNAMIC].total_ns <= configs[TWO_VPUS].total_ns + 1e-12
        assert configs[DYNAMIC].total_ns <= configs[ONE_VPU].total_ns + 1e-12

    def test_static_between_fixed_and_dynamic(self):
        steps = [
            [estimate("forward", 10, 8, 12), estimate("forward", 10, 12, 8)],
            [estimate("forward", 10, 9, 20)],
        ]
        configs = aggregate(steps, include_static=True)
        best_fixed = min(configs[TWO_VPUS].total_ns, configs[ONE_VPU].total_ns)
        assert configs[DYNAMIC].total_ns <= configs[STATIC].total_ns + 1e-12
        assert configs[STATIC].total_ns <= best_fixed + 1e-12

    def test_dynamic_equals_per_kernel_min(self):
        steps = [[estimate("forward", 10, 8, 12), estimate("forward", 10, 12, 8)]]
        configs = aggregate(steps, include_static=False)
        assert configs[DYNAMIC].total_ns == pytest.approx(16.0)

    def test_step_averaging(self):
        steps = [[estimate("forward", 10, 10, 10)], [estimate("forward", 30, 30, 30)]]
        configs = aggregate(steps, include_static=False)
        assert configs[BASELINE].total_ns == pytest.approx(20.0)

    def test_static_excluded_for_inference(self):
        configs = aggregate([[estimate("forward", 1, 1, 1)]], include_static=False)
        assert STATIC not in configs

    def test_speedup_normalisation(self):
        configs = aggregate([[estimate("forward", 10, 5, 8)]], include_static=False)
        base = configs[BASELINE].total_ns
        assert configs[TWO_VPUS].speedup(base) == pytest.approx(2.0)
        assert configs[TWO_VPUS].normalized(base) == pytest.approx(0.5)
