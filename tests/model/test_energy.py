"""Tests for the kernel energy model."""

import pytest

from repro.core import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, simulate
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile
from repro.model.energy import EnergyBreakdown, EnergyModel, EnergyParams


def run(machine, bs=0.0, nbs=0.0, k_steps=16):
    trace = generate_gemm_trace(
        GemmKernelConfig(
            name="e",
            tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
            k_steps=k_steps,
            broadcast_sparsity=bs,
            nonbroadcast_sparsity=nbs,
            seed=0,
        )
    )
    return simulate(trace, machine, keep_state=False)


MODEL = EnergyModel()


class TestEnergyBreakdown:
    def test_total_sums_components(self):
        breakdown = EnergyBreakdown(1.0, 2.0, 0.5, 3.0)
        assert breakdown.total_nj == pytest.approx(6.5)

    def test_relative(self):
        a = EnergyBreakdown(1.0, 0.0, 0.0, 0.0)
        b = EnergyBreakdown(2.0, 0.0, 0.0, 0.0)
        assert a.relative_to(b) == pytest.approx(0.5)


class TestKernelEnergy:
    def test_components_positive(self):
        result = run(BASELINE_2VPU)
        energy = MODEL.kernel_energy(result, BASELINE_2VPU)
        assert energy.vpu_dynamic_nj > 0
        assert energy.memory_dynamic_nj > 0
        assert energy.static_nj > 0

    def test_baseline_has_no_mgu_energy(self):
        result = run(BASELINE_2VPU)
        assert MODEL.kernel_energy(result, BASELINE_2VPU).mgu_nj == 0.0

    def test_save_sparse_cheaper_than_baseline(self):
        base = MODEL.kernel_energy(run(BASELINE_2VPU, bs=0.5, nbs=0.5), BASELINE_2VPU)
        save = MODEL.kernel_energy(run(SAVE_2VPU, bs=0.5, nbs=0.5), SAVE_2VPU)
        assert save.total_nj < base.total_nj

    def test_save_dense_costs_about_the_same(self):
        base = MODEL.kernel_energy(run(BASELINE_2VPU), BASELINE_2VPU)
        save = MODEL.kernel_energy(run(SAVE_2VPU), SAVE_2VPU)
        assert save.total_nj == pytest.approx(base.total_nj, rel=0.1)

    def test_vpu_gating_saves_leakage_at_high_sparsity(self):
        two = MODEL.kernel_energy(run(SAVE_2VPU, bs=0.8, nbs=0.8), SAVE_2VPU)
        one = MODEL.kernel_energy(run(SAVE_1VPU, bs=0.8, nbs=0.8), SAVE_1VPU)
        assert one.total_nj < two.total_nj

    def test_vpu_gating_wastes_energy_dense(self):
        # Dense: the 1-VPU run takes much longer, so its static energy
        # dominates the saved leakage.
        two = MODEL.kernel_energy(run(SAVE_2VPU), SAVE_2VPU)
        one = MODEL.kernel_energy(run(SAVE_1VPU), SAVE_1VPU)
        assert one.total_nj > two.total_nj

    def test_energy_per_mac(self):
        result = run(BASELINE_2VPU)
        per_mac = MODEL.energy_per_mac(result, BASELINE_2VPU)
        # Skylake-class ballpark: tenths of a nJ per MAC.
        assert 0.05 < per_mac < 2.0

    def test_custom_params(self):
        hot = EnergyModel(EnergyParams(vpu_leakage_w=10.0))
        result = run(SAVE_2VPU)
        assert (
            hot.kernel_energy(result, SAVE_2VPU).static_nj
            > MODEL.kernel_energy(result, SAVE_2VPU).static_nj
        )
