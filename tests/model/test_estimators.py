"""Tests for the whole-network estimators (Fig. 14 machinery).

These use tiny grids and short kernels via a tmp-dir SurfaceStore, so
they validate the plumbing and orderings rather than absolute numbers.
"""

import pytest

from repro.kernels.conv import Phase
from repro.kernels.tiling import Precision
from repro.model.estimator import (
    BASELINE,
    DYNAMIC,
    ONE_VPU,
    STATIC,
    TWO_VPUS,
    NetworkEstimator,
)
from repro.model.inference import evaluate_inference
from repro.model.networks import GNMT, RESNET50_PRUNED, VGG16
from repro.model.surface import SurfaceStore
from repro.model.training import evaluate_training, sampled_steps

LEVELS = (0.0, 0.45, 0.9)
K_STEPS = 8


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return SurfaceStore(tmp_path_factory.mktemp("surfaces"))


@pytest.fixture(scope="module")
def vgg_inference(store):
    return evaluate_inference(
        VGG16, Precision.FP32, store=store, levels=LEVELS, k_steps=K_STEPS
    )


class TestSampledSteps:
    def test_covers_run(self):
        steps = sampled_steps(100, 5)
        assert steps[0] == 0 and steps[-1] == 100

    def test_single_sample_midpoint(self):
        assert sampled_steps(100, 1) == [50]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sampled_steps(100, 0)


class TestInferenceEvaluation:
    def test_configs_present(self, vgg_inference):
        assert set(vgg_inference.configs) == {BASELINE, TWO_VPUS, ONE_VPU, DYNAMIC}

    def test_baseline_normalised_to_one(self, vgg_inference):
        assert vgg_inference.configs[BASELINE].normalized(
            vgg_inference.baseline_ns
        ) == pytest.approx(1.0)

    def test_save_beats_baseline(self, vgg_inference):
        assert vgg_inference.speedup(TWO_VPUS) > 1.1
        assert vgg_inference.speedup(DYNAMIC) > 1.1

    def test_dynamic_at_least_best_fixed(self, vgg_inference):
        best_fixed = max(
            vgg_inference.speedup(TWO_VPUS), vgg_inference.speedup(ONE_VPU)
        )
        assert vgg_inference.speedup(DYNAMIC) >= best_fixed - 1e-9

    def test_first_layer_separated(self, vgg_inference):
        breakdown = vgg_inference.configs[BASELINE].breakdown_ns
        assert "1st layer" in breakdown
        assert "forward" in breakdown

    def test_first_layer_gains_nothing(self, vgg_inference):
        # No activation sparsity and dense weights: the 1st layer's
        # 2-VPU SAVE time matches the baseline's.
        base = vgg_inference.configs[BASELINE].breakdown_ns["1st layer"]
        save = vgg_inference.configs[TWO_VPUS].breakdown_ns["1st layer"]
        assert save == pytest.approx(base, rel=0.05)

    def test_rows_structure(self, vgg_inference):
        rows = vgg_inference.rows()
        assert len(rows) == 4
        labels = [row[0] for row in rows]
        assert labels[0] == BASELINE


class TestTrainingEvaluation:
    @pytest.fixture(scope="class")
    def resnet_training(self, store):
        return evaluate_training(
            RESNET50_PRUNED,
            Precision.FP32,
            store=store,
            levels=LEVELS,
            k_steps=K_STEPS,
            samples=3,
        )

    def test_static_present(self, resnet_training):
        assert STATIC in resnet_training.configs

    def test_dynamic_at_least_static(self, resnet_training):
        assert (
            resnet_training.speedup(DYNAMIC) >= resnet_training.speedup(STATIC) - 1e-9
        )

    def test_static_at_least_best_fixed(self, resnet_training):
        best_fixed = max(
            resnet_training.speedup(TWO_VPUS), resnet_training.speedup(ONE_VPU)
        )
        assert resnet_training.speedup(STATIC) >= best_fixed - 1e-9

    def test_phase_breakdown(self, resnet_training):
        breakdown = resnet_training.configs[BASELINE].breakdown_ns
        assert {"forward", "backward input", "backward weight", "1st layer"} <= set(
            breakdown
        )

    def test_training_beats_baseline(self, resnet_training):
        assert resnet_training.speedup(DYNAMIC) > 1.05


class TestEstimatorPhases:
    def test_first_conv_skips_backward_input(self, store):
        estimator = NetworkEstimator(
            VGG16, store=store, levels=LEVELS, k_steps=K_STEPS
        )
        assert Phase.BACKWARD_INPUT not in estimator.phases_for(0, training=True)
        assert Phase.BACKWARD_INPUT in estimator.phases_for(1, training=True)

    def test_inference_only_forward(self, store):
        estimator = NetworkEstimator(
            VGG16, store=store, levels=LEVELS, k_steps=K_STEPS
        )
        assert estimator.phases_for(3, training=False) == [Phase.FORWARD]

    def test_lstm_merged_backward(self, store):
        estimator = NetworkEstimator(
            GNMT, store=store, levels=LEVELS, k_steps=K_STEPS
        )
        phases = estimator.phases_for(0, training=True)
        assert len(phases) == 3

    def test_mixed_precision_halves_fma_count(self, store):
        fp32 = NetworkEstimator(VGG16, Precision.FP32, store=store)
        mixed = NetworkEstimator(VGG16, Precision.MIXED, store=store)
        assert mixed.macs_per_fma == 2 * fp32.macs_per_fma


class TestGnmtMemoryBound:
    def test_gnmt_capped_below_cnn(self, store):
        gnmt = evaluate_inference(
            GNMT, Precision.FP32, store=store, levels=LEVELS, k_steps=K_STEPS
        )
        resnet = evaluate_inference(
            RESNET50_PRUNED, Precision.FP32, store=store, levels=LEVELS, k_steps=K_STEPS
        )
        # GNMT's memory boundedness caps it below pruned ResNet-50
        # despite 90% weight sparsity (paper Sec. VII-A).
        assert gnmt.speedup(DYNAMIC) <= resnet.speedup(DYNAMIC) + 0.15
