"""Tests for the closed-form bottleneck model, including cross-validation
against the cycle-level simulator."""

import math

import pytest

from repro.core.config import BASELINE_2VPU, SAVE_1VPU, SAVE_2VPU, CoalescingScheme
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.model.analytic import (
    expected_max_binomial,
    predicted_speedup,
    predicted_time_per_fma_ns,
    step_bottlenecks,
)
from repro.model.surface import simulate_point

EXPLICIT = RegisterTile(4, 6, BroadcastPattern.EXPLICIT)
EMBEDDED = RegisterTile(28, 1, BroadcastPattern.EMBEDDED)


class TestExpectedMaxBinomial:
    def test_degenerate_cases(self):
        assert expected_max_binomial(0, 0.5) == 0.0
        assert expected_max_binomial(5, 0.0) == 0.0

    def test_certain_success(self):
        # d=1: every slot sees exactly m.
        assert expected_max_binomial(7, 1.0) == pytest.approx(7.0)

    def test_max_at_least_mean(self):
        mean = 10 * 0.4
        assert expected_max_binomial(10, 0.4) >= mean

    def test_max_at_most_m(self):
        assert expected_max_binomial(10, 0.4) <= 10

    def test_monotone_in_d(self):
        values = [expected_max_binomial(10, d) for d in (0.1, 0.4, 0.7, 1.0)]
        assert values == sorted(values)

    def test_single_slot_is_mean(self):
        assert expected_max_binomial(10, 0.3, slots=1) == pytest.approx(3.0, abs=1e-9)


class TestBottlenecks:
    def test_dense_baseline_vpu_bound(self):
        bn = step_bottlenecks(EXPLICIT, BASELINE_2VPU)
        assert bn.binding == "vpu"
        assert bn.vpu == pytest.approx(24 / 2)

    def test_high_sparsity_not_vpu_bound(self):
        bn = step_bottlenecks(EXPLICIT, SAVE_2VPU, bs=0.9, nbs=0.9)
        assert bn.binding != "vpu"

    def test_frontend_count(self):
        bn = step_bottlenecks(EXPLICIT, BASELINE_2VPU)
        # 24 FMAs + 6 loads + 4 broadcasts + 2 scalar = 36 µops / 5.
        assert bn.frontend == pytest.approx(36 / 5)

    def test_embedded_l1_relief_from_b_cache(self):
        with_b = step_bottlenecks(EMBEDDED, SAVE_2VPU)
        without_b = step_bottlenecks(EMBEDDED, BASELINE_2VPU)
        assert with_b.l1 < without_b.l1

    def test_rvc_packs_better_than_vc(self):
        vc = SAVE_2VPU.with_save(coalescing=CoalescingScheme.VERTICAL)
        rvc = SAVE_2VPU
        assert (
            step_bottlenecks(EMBEDDED, rvc, nbs=0.5).vpu
            < step_bottlenecks(EMBEDDED, vc, nbs=0.5).vpu
        )

    def test_hc_is_perfect_packing(self):
        hc = SAVE_2VPU.with_save(coalescing=CoalescingScheme.HORIZONTAL)
        bn = step_bottlenecks(EMBEDDED, hc, nbs=0.5)
        assert bn.vpu == pytest.approx(28 * 0.5 / 2, rel=0.01)

    def test_mixed_square_law_without_technique(self):
        off = SAVE_2VPU.with_save(mixed_precision_technique=False)
        bn = step_bottlenecks(EXPLICIT, off, Precision.MIXED, nbs=0.5)
        d_al = 1 - (1 - 0.5) ** 2  # 0.75 of ALs stay effectual
        assert bn.vpu >= 24 * 0.70 / 2 * 0.9

    def test_mixed_technique_helps(self):
        on = step_bottlenecks(EXPLICIT, SAVE_2VPU, Precision.MIXED, nbs=0.5)
        off = step_bottlenecks(
            EXPLICIT,
            SAVE_2VPU.with_save(mixed_precision_technique=False),
            Precision.MIXED,
            nbs=0.5,
        )
        assert on.vpu <= off.vpu


class TestPredictedSpeedup:
    def test_dense_near_one(self):
        assert predicted_speedup(EXPLICIT, BASELINE_2VPU, SAVE_2VPU) == pytest.approx(
            1.0, abs=0.05
        )

    def test_speedup_grows_with_sparsity(self):
        low = predicted_speedup(EXPLICIT, BASELINE_2VPU, SAVE_2VPU, bs=0.2)
        high = predicted_speedup(EXPLICIT, BASELINE_2VPU, SAVE_2VPU, bs=0.8)
        assert high > low > 1.0

    def test_one_vpu_dense_slowdown(self):
        speedup = predicted_speedup(EXPLICIT, BASELINE_2VPU, SAVE_1VPU)
        assert 0.55 < speedup < 0.85

    def test_one_vpu_overtakes_at_high_sparsity(self):
        two = predicted_speedup(EXPLICIT, BASELINE_2VPU, SAVE_2VPU, bs=0.9, nbs=0.9)
        one = predicted_speedup(EXPLICIT, BASELINE_2VPU, SAVE_1VPU, bs=0.9, nbs=0.9)
        assert one > two


class TestCrossValidation:
    """The closed-form model must track the simulator within tolerance."""

    @pytest.mark.parametrize("bs,nbs", [(0.0, 0.0), (0.4, 0.0), (0.0, 0.6), (0.6, 0.6)])
    def test_explicit_kernel_fp32(self, bs, nbs):
        simulated = simulate_point(
            EXPLICIT, Precision.FP32, SAVE_2VPU, bs, nbs, k_steps=16
        )
        predicted = predicted_time_per_fma_ns(EXPLICIT, SAVE_2VPU, Precision.FP32, bs, nbs)
        assert predicted == pytest.approx(simulated, rel=0.45)

    def test_baseline_explicit(self):
        simulated = simulate_point(
            EXPLICIT, Precision.FP32, BASELINE_2VPU, 0.0, 0.0, k_steps=16
        )
        predicted = predicted_time_per_fma_ns(EXPLICIT, BASELINE_2VPU)
        assert predicted == pytest.approx(simulated, rel=0.25)

    def test_ordering_matches_simulator(self):
        # VC vs RVC ordering on the CW~1 kernel, both worlds.
        vc_cfg = SAVE_2VPU.with_save(
            coalescing=CoalescingScheme.VERTICAL, lane_wise_dependence=False
        )
        sim_vc = simulate_point(EMBEDDED, Precision.FP32, vc_cfg, 0.0, 0.5, k_steps=16)
        sim_rvc = simulate_point(EMBEDDED, Precision.FP32, SAVE_2VPU, 0.0, 0.5, k_steps=16)
        ana_vc = predicted_time_per_fma_ns(EMBEDDED, vc_cfg, nbs=0.5)
        ana_rvc = predicted_time_per_fma_ns(EMBEDDED, SAVE_2VPU, nbs=0.5)
        assert (sim_vc > sim_rvc) == (ana_vc > ana_rvc)


class TestPredictedSurface:
    def test_shape_and_label(self):
        from repro.model.analytic import predicted_surface

        surface = predicted_surface(EXPLICIT, SAVE_2VPU, levels=(0.0, 0.5, 0.9))
        assert surface.ns_per_fma.shape == (3, 3)
        assert surface.label == "analytic"

    def test_monotone_nonincreasing_under_save(self):
        from repro.model.analytic import predicted_surface

        surface = predicted_surface(EXPLICIT, SAVE_2VPU, levels=(0.0, 0.3, 0.6, 0.9))
        grid = surface.ns_per_fma
        # Time never grows with more broadcast sparsity.
        assert (grid[1:, :] <= grid[:-1, :] + 1e-12).all()

    def test_correlates_with_simulated_surface(self):
        import numpy as np

        from repro.model.analytic import predicted_surface
        from repro.model.surface import SparsitySurface

        levels = (0.0, 0.45, 0.9)
        analytic = predicted_surface(EXPLICIT, SAVE_2VPU, levels=levels)
        simulated = SparsitySurface.build(
            EXPLICIT, Precision.FP32, SAVE_2VPU, levels=levels, k_steps=12
        )
        a = analytic.ns_per_fma.ravel()
        s = simulated.ns_per_fma.ravel()
        corr = np.corrcoef(a, s)[0, 1]
        assert corr > 0.8
