"""Tests for the roofline traffic model and multicore split."""

import pytest

from repro.kernels.conv import ConvShape, Phase
from repro.kernels.lstm import LstmShape
from repro.model.multicore import MulticoreSplit
from repro.model.roofline import layer_memory_time_ns, layer_traffic_bytes


CONV = ConvShape("c", 64, 128, 28, 28, kernel=3, stride=1, padding=1)
LSTM = LstmShape("l", hidden=1024, input_size=1024, seq_len=30)


class TestTraffic:
    def test_conv_forward_traffic_components(self):
        traffic = layer_traffic_bytes(CONV, Phase.FORWARD, batch=1)
        expected = CONV.weight_bytes() + CONV.activation_bytes() + CONV.output_bytes()
        assert traffic == expected

    def test_batch_scales_activations_not_weights(self):
        t1 = layer_traffic_bytes(CONV, Phase.FORWARD, batch=1)
        t2 = layer_traffic_bytes(CONV, Phase.FORWARD, batch=2)
        delta = t2 - t1
        assert delta == CONV.activation_bytes() + CONV.output_bytes()

    def test_element_bytes_halve_traffic(self):
        fp32 = layer_traffic_bytes(CONV, Phase.FORWARD, batch=1, element_bytes=4)
        bf16 = layer_traffic_bytes(CONV, Phase.FORWARD, batch=1, element_bytes=2)
        assert bf16 == fp32 / 2

    def test_lstm_weights_dominate(self):
        traffic = layer_traffic_bytes(LSTM, Phase.FORWARD, batch=84)
        weights = LSTM.weight_count * 4 * LSTM.seq_len
        assert traffic / weights < 1.2  # weight stream dominates

    def test_lstm_backward_heavier(self):
        fwd = layer_traffic_bytes(LSTM, Phase.FORWARD, batch=84)
        bwd = layer_traffic_bytes(LSTM, Phase.BACKWARD_INPUT, batch=84)
        assert bwd > fwd

    def test_memory_time_positive_bandwidth_required(self):
        with pytest.raises(ValueError):
            layer_memory_time_ns(CONV, Phase.FORWARD, 1, 0.0)

    def test_memory_time_scales_inverse_bandwidth(self):
        slow = layer_memory_time_ns(CONV, Phase.FORWARD, 1, 10.0)
        fast = layer_memory_time_ns(CONV, Phase.FORWARD, 1, 20.0)
        assert slow == pytest.approx(2 * fast)


class TestMulticoreSplit:
    def test_compute_divides_by_cores(self):
        split = MulticoreSplit(cores=28)
        assert split.compute_time_ns(28e6, 1.0) == pytest.approx(1e6)

    def test_roofline_takes_max(self):
        split = MulticoreSplit(cores=1)
        compute_bound = split.layer_time_ns(1e9, 1.0, 1.0)
        assert compute_bound == pytest.approx(1e9)
        memory_bound = split.layer_time_ns(1.0, 1.0, 1e9)
        assert memory_bound > 1e7

    def test_memory_time_uses_efficiency(self):
        full = MulticoreSplit(bandwidth_efficiency=1.0)
        derated = MulticoreSplit(bandwidth_efficiency=0.5)
        assert derated.memory_time_ns(1e6) == pytest.approx(2 * full.memory_time_ns(1e6))

    def test_validation(self):
        with pytest.raises(ValueError):
            MulticoreSplit(cores=0)
        with pytest.raises(ValueError):
            MulticoreSplit(bandwidth_efficiency=0.0)

    def test_lstm_memory_bound_cnn_compute_bound(self):
        # The paper's Sec. VII-A contrast, at realistic rates.
        split = MulticoreSplit()
        ns_per_fma = 0.3  # ~2 FMAs/cycle at 1.7 GHz, 28 cores
        conv_fmas = CONV.macs(Phase.FORWARD, batch=28) / 16
        conv_traffic = layer_traffic_bytes(CONV, Phase.FORWARD, batch=28)
        assert split.compute_time_ns(conv_fmas, ns_per_fma) > split.memory_time_ns(
            conv_traffic
        )
        lstm_fmas = LSTM.macs(Phase.FORWARD, batch=84) / 16
        lstm_traffic = layer_traffic_bytes(LSTM, Phase.FORWARD, batch=84)
        # LSTM compute headroom over memory is thin: under 3x.
        ratio = split.compute_time_ns(lstm_fmas, ns_per_fma) / split.memory_time_ns(
            lstm_traffic
        )
        assert ratio < 3.0
