"""Tests for sparsity surfaces, interpolation and the disk store."""

import json
import threading

import numpy as np
import pytest

from repro.core.config import BASELINE_2VPU, SAVE_2VPU
from repro.fsio import FileLock
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.model.surface import (
    COARSE_LEVELS,
    PAPER_LEVELS,
    SURFACE_SCHEMA_VERSION,
    SparsitySurface,
    SurfaceStore,
    machine_label,
    simulate_point,
)

TILE = RegisterTile(2, 2, BroadcastPattern.EXPLICIT)


class TestGrids:
    def test_paper_levels(self):
        assert PAPER_LEVELS == (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

    def test_coarse_levels_subset_range(self):
        assert COARSE_LEVELS[0] == 0.0 and COARSE_LEVELS[-1] == 0.9


class TestInterpolation:
    def surface(self):
        levels = (0.0, 0.5)
        grid = np.array([[1.0, 2.0], [3.0, 4.0]])
        return SparsitySurface(levels=levels, ns_per_fma=grid)

    def test_exact_grid_points(self):
        surface = self.surface()
        assert surface.interpolate(0.0, 0.0) == 1.0
        assert surface.interpolate(0.0, 0.5) == 2.0
        assert surface.interpolate(0.5, 0.0) == 3.0
        assert surface.interpolate(0.5, 0.5) == 4.0

    def test_midpoint(self):
        assert self.surface().interpolate(0.25, 0.25) == pytest.approx(2.5)

    def test_clamps_outside_grid(self):
        surface = self.surface()
        assert surface.interpolate(0.9, 0.9) == 4.0
        assert surface.interpolate(-1.0, 0.0) == 1.0

    def test_single_point_grid(self):
        surface = SparsitySurface(levels=(0.0,), ns_per_fma=np.array([[7.0]]))
        assert surface.interpolate(0.5, 0.9) == 7.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SparsitySurface(levels=(0.0, 0.5), ns_per_fma=np.zeros((3, 3)))

    def test_json_roundtrip(self):
        surface = self.surface()
        clone = SparsitySurface.from_json(surface.to_json())
        assert np.array_equal(clone.ns_per_fma, surface.ns_per_fma)
        assert clone.interpolate(0.25, 0.25) == surface.interpolate(0.25, 0.25)


class TestSimulatedSurfaces:
    def test_simulate_point_positive(self):
        value = simulate_point(TILE, Precision.FP32, BASELINE_2VPU, 0.0, 0.0, k_steps=4)
        assert value > 0

    def test_save_surface_monotone_in_bs(self):
        surface = SparsitySurface.build(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=8
        )
        assert surface.ns_per_fma[1, 0] <= surface.ns_per_fma[0, 0] * 1.05

    def test_build_shape(self):
        surface = SparsitySurface.build(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4
        )
        assert surface.ns_per_fma.shape == (2, 2)
        assert surface.label == machine_label(SAVE_2VPU)


class TestSurfaceStore:
    def test_roundtrip_and_disk_hit(self, tmp_path):
        store = SurfaceStore(tmp_path)
        s1 = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        # Fresh store instance: must load from disk, not re-simulate.
        store2 = SurfaceStore(tmp_path)
        s2 = store2.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        assert np.array_equal(s1.ns_per_fma, s2.ns_per_fma)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_distinct_keys(self, tmp_path):
        store = SurfaceStore(tmp_path)
        store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        store.get(TILE, Precision.FP32, BASELINE_2VPU, levels=(0.0,), k_steps=4)
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_memory_cache(self, tmp_path):
        store = SurfaceStore(tmp_path)
        a = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        b = store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        assert a is b


class TestMachineLabel:
    def test_baseline_label(self):
        assert machine_label(BASELINE_2VPU) == "baseline-2vpu@1.7"

    def test_save_label_mentions_features(self):
        label = machine_label(SAVE_2VPU)
        assert "rvc" in label and "lwd" in label and "2vpu@1.7" in label


class TestSurfaceStoreDurability:
    """Atomic writes, advisory locking, schema-version invalidation."""

    def entry_path(self, tmp_path):
        store = SurfaceStore(tmp_path)
        store.get(TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4)
        (path,) = tmp_path.glob("*.json")
        return path

    def test_entries_carry_schema_envelope(self, tmp_path):
        payload = json.loads(self.entry_path(tmp_path).read_text())
        assert payload["schema"] == SURFACE_SCHEMA_VERSION
        assert "surface" in payload

    def test_stale_schema_entry_is_rebuilt(self, tmp_path):
        path = self.entry_path(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["schema"] = SURFACE_SCHEMA_VERSION - 1
        path.write_text(json.dumps(envelope))
        fresh = SurfaceStore(tmp_path)
        surface = fresh.get(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4
        )
        assert surface.ns_per_fma.shape == (2, 2)
        assert json.loads(path.read_text())["schema"] == SURFACE_SCHEMA_VERSION

    def test_torn_entry_is_rebuilt_not_fatal(self, tmp_path):
        path = self.entry_path(tmp_path)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        surface = SurfaceStore(tmp_path).get(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4
        )
        assert surface.ns_per_fma.shape == (2, 2)
        # The damaged file was replaced by a valid envelope.
        assert json.loads(path.read_text())["schema"] == SURFACE_SCHEMA_VERSION

    def test_no_temp_files_left_behind(self, tmp_path):
        self.entry_path(tmp_path)
        stray = [p.name for p in tmp_path.iterdir()
                 if p.suffix not in (".json", ".lock")]
        assert stray == []

    def test_waiting_builder_reuses_winners_entry(self, tmp_path, monkeypatch):
        """A second process blocked on the lock must not re-simulate."""
        first = SurfaceStore(tmp_path)
        surface = first.get(
            TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4
        )
        (path,) = tmp_path.glob("*.json")
        envelope = path.read_text()
        path.unlink()

        def forbidden_build(*args, **kwargs):
            raise AssertionError("waiter must read the winner's entry")

        monkeypatch.setattr(SparsitySurface, "build", forbidden_build)
        second = SurfaceStore(tmp_path)
        lock = FileLock(path.with_suffix(".lock")).acquire()
        done = []

        def waiter():
            got = second.get(
                TILE, Precision.FP32, SAVE_2VPU, levels=(0.0, 0.9), k_steps=4
            )
            done.append(got)

        thread = threading.Thread(target=waiter)
        thread.start()
        try:
            thread.join(timeout=0.3)
            assert thread.is_alive()  # blocked on the advisory lock
            path.write_text(envelope)  # the "winner" publishes its build
        finally:
            lock.release()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert np.array_equal(done[0].ns_per_fma, surface.ns_per_fma)
