"""Schema-drift rule: both directions, for events and for metrics."""

from repro.check import run_checks


def _drift(result):
    return [d for d in result.diagnostics if d.rule == "schema-drift"]


def test_emitted_event_not_in_schema_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    messages = [d.message for d in _drift(result)]
    assert any("'unknown_event'" in m and "not in the trace schema" in m
               for m in messages)


def test_schema_event_never_emitted_flagged_at_schema_line(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    phantom = [d for d in _drift(result) if "'phantom'" in d.message]
    assert len(phantom) == 1
    assert phantom[0].path == "repro/obs/trace.py"
    assert phantom[0].line == 6
    assert "never emitted" in phantom[0].message


def test_missing_required_field_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    missing = [d for d in _drift(result) if "missing required field" in d.message]
    assert [(d.path, d.line) for d in missing] == [("repro/core/emitters.py", 5)]
    assert "'seq'" in missing[0].message


def test_common_field_override_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    override = [d for d in _drift(result) if "common field" in d.message]
    assert [(d.path, d.line) for d in override] == [("repro/core/emitters.py", 7)]


def test_consumed_event_not_in_schema_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    ghost = [d for d in _drift(result) if "'ghost_event'" in d.message]
    assert [(d.path, d.line) for d in ghost] == [("repro/obs/analyze.py", 5)]


def test_consumed_metric_without_producer_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    ghost = [d for d in _drift(result) if "'ghost_metric'" in d.message]
    assert [(d.path, d.line) for d in ghost] == [("repro/obs/analyze.py", 10)]
    assert "no MetricsRegistry" in ghost[0].message


def test_clean_fixture_has_no_drift(fixtures_dir):
    # The clean tree exercises every resolution path that must NOT
    # fire: conditional event names, f-string metric prefixes,
    # consumed names that all exist.
    result = run_checks(fixtures_dir / "clean")
    assert not _drift(result)


def test_unresolved_emit_reported_and_skips_never_emitted(fixtures_dir):
    result = run_checks(fixtures_dir / "unresolved")
    drift = _drift(result)
    assert [(d.path, d.line) for d in drift] == [("repro/core/emitters.py", 6)]
    assert "could not be resolved" in drift[0].message
    # 'maybe_dynamic' is never visibly emitted, but with an unresolved
    # emit site in the tree the never-emitted direction must not fire.
    assert not any("maybe_dynamic" in d.message for d in drift)


def test_no_schema_file_no_drift_checks(tmp_path):
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "e.py").write_text(
        "def f(obs, cycle):\n    obs.emit(cycle, 'whatever', a=1)\n"
    )
    result = run_checks(tmp_path, rule_ids=["schema-drift"])
    assert result.ok


def test_real_tree_cross_checks_hold():
    # The repo itself must satisfy both directions: every event in
    # repro.obs.trace.EVENT_FIELDS is emitted by the simulator and
    # every consumed event/metric resolves.  This is the acceptance
    # check that the rule actually reads the real schema.
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    result = run_checks(src, rule_ids=["schema-drift"])
    assert result.ok, [d.format() for d in result.diagnostics]


def test_real_tree_drift_is_caught(tmp_path):
    # Renaming an event in a copy of the real tree must fail both
    # directions: the new name is not in the schema, the old name is
    # no longer emitted.
    import shutil
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    work = tmp_path / "src"
    shutil.copytree(
        src, work, ignore=shutil.ignore_patterns("__pycache__", "check")
    )
    pipeline = work / "repro" / "core" / "pipeline.py"
    text = pipeline.read_text()
    assert '"bs_skip"' in text
    pipeline.write_text(text.replace('"bs_skip"', '"bs_skipped"'))
    result = run_checks(work, rule_ids=["schema-drift"])
    messages = [d.message for d in result.diagnostics]
    assert any(
        "'bs_skipped'" in m and "not in the trace schema" in m
        for m in messages
    )
    assert any(
        "'bs_skip'" in m and "never emitted" in m for m in messages
    )


# ---------------------------------------------------------------------------
# Sweep-store contract tables (SWEEP_COLUMNS / QUERY_FIELDS)
# ---------------------------------------------------------------------------

_STORE_SCHEMA = """\
SWEEP_COLUMNS: dict[str, str] = {
    "bs": "float64",
    "nbs": "float64",
    "value": "float64",
}
SWEEP_META_FIELDS = ("kernel",)
QUERY_FIELDS = ("kernel", "bs", "nbs", "value")
"""

_STORE_CONSUMER = """\
def read(segment, row):
    return segment["bs"], segment["nbs"], segment["value"], row["kernel"]
"""


def _store_tree(tmp_path, schema_text, consumer_text):
    pkg = tmp_path / "repro" / "store"
    pkg.mkdir(parents=True)
    (pkg / "schema.py").write_text(schema_text)
    (pkg / "query.py").write_text(consumer_text)
    return run_checks(tmp_path, rule_ids=["schema-drift"])


def test_consistent_store_tables_pass(tmp_path):
    result = _store_tree(tmp_path, _STORE_SCHEMA, _STORE_CONSUMER)
    assert not _drift(result)


def test_unknown_segment_column_read_flagged(tmp_path):
    consumer = _STORE_CONSUMER + "\n\ndef bad(segment):\n    return segment['typo']\n"
    result = _store_tree(tmp_path, _STORE_SCHEMA, consumer)
    messages = [d.message for d in _drift(result)]
    assert any("'typo'" in m and "not in SWEEP_COLUMNS" in m for m in messages)


def test_dead_segment_column_flagged_at_declaration(tmp_path):
    consumer = 'def read(segment, row):\n    return segment["bs"], segment["nbs"]\n'
    result = _store_tree(tmp_path, _STORE_SCHEMA, consumer)
    dead = [d for d in _drift(result) if "never read" in d.message]
    assert len(dead) == 1
    assert "'value'" in dead[0].message
    assert dead[0].path == "repro/store/schema.py"
    assert dead[0].line == 4  # the "value" key's line


def test_column_missing_from_query_fields_flagged(tmp_path):
    schema = _STORE_SCHEMA.replace(
        'QUERY_FIELDS = ("kernel", "bs", "nbs", "value")',
        'QUERY_FIELDS = ("kernel", "bs", "nbs")',
    )
    consumer = 'def read(segment):\n    return segment["bs"], segment["nbs"], segment["value"]\n'
    result = _store_tree(tmp_path, schema, consumer)
    messages = [d.message for d in _drift(result)]
    assert any(
        "'value'" in m and "missing from QUERY_FIELDS" in m for m in messages
    )


def test_phantom_query_field_flagged(tmp_path):
    schema = _STORE_SCHEMA.replace(
        'QUERY_FIELDS = ("kernel", "bs", "nbs", "value")',
        'QUERY_FIELDS = ("kernel", "bs", "nbs", "value", "phantom")',
    )
    result = _store_tree(tmp_path, schema, _STORE_CONSUMER)
    messages = [d.message for d in _drift(result)]
    assert any(
        "'phantom'" in m and "neither a SWEEP_COLUMNS column nor" in m
        for m in messages
    )


def test_unknown_row_field_read_flagged(tmp_path):
    consumer = _STORE_CONSUMER + "\n\ndef bad(row):\n    return row['nope']\n"
    result = _store_tree(tmp_path, _STORE_SCHEMA, consumer)
    messages = [d.message for d in _drift(result)]
    assert any("'nope'" in m and "not in QUERY_FIELDS" in m for m in messages)


def test_row_subscripts_outside_store_files_ignored(tmp_path):
    pkg = tmp_path / "repro" / "store"
    pkg.mkdir(parents=True)
    (pkg / "schema.py").write_text(_STORE_SCHEMA)
    (pkg / "query.py").write_text(_STORE_CONSUMER)
    obs = tmp_path / "repro" / "obs"
    obs.mkdir(parents=True)
    # A non-store file's row["..."] (the span profiler's table rows)
    # must not be misread as a query-row access.
    (obs / "spans.py").write_text(
        'def table(row):\n    return row["count"] + row["total_s"]\n'
    )
    result = run_checks(tmp_path, rule_ids=["schema-drift"])
    assert not _drift(result)


def test_real_tree_store_drift_is_caught(tmp_path):
    # Renaming a segment-column read in a copy of the real tree must
    # fail both directions: the new name is unknown, the old column is
    # no longer consumed anywhere.
    import shutil
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    work = tmp_path / "src"
    shutil.copytree(
        src, work, ignore=shutil.ignore_patterns("__pycache__", "check")
    )
    query = work / "repro" / "store" / "query.py"
    text = query.read_text()
    assert 'segment["value"]' in text
    query.write_text(text.replace('segment["value"]', 'segment["val"]'))
    result = run_checks(work, rule_ids=["schema-drift"])
    messages = [d.message for d in result.diagnostics]
    assert any("'val'" in m and "not in SWEEP_COLUMNS" in m for m in messages)
    assert any("'value'" in m and "never read" in m for m in messages)
