"""Schema-drift rule: both directions, for events and for metrics."""

from repro.check import run_checks


def _drift(result):
    return [d for d in result.diagnostics if d.rule == "schema-drift"]


def test_emitted_event_not_in_schema_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    messages = [d.message for d in _drift(result)]
    assert any("'unknown_event'" in m and "not in the trace schema" in m
               for m in messages)


def test_schema_event_never_emitted_flagged_at_schema_line(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    phantom = [d for d in _drift(result) if "'phantom'" in d.message]
    assert len(phantom) == 1
    assert phantom[0].path == "repro/obs/trace.py"
    assert phantom[0].line == 6
    assert "never emitted" in phantom[0].message


def test_missing_required_field_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    missing = [d for d in _drift(result) if "missing required field" in d.message]
    assert [(d.path, d.line) for d in missing] == [("repro/core/emitters.py", 5)]
    assert "'seq'" in missing[0].message


def test_common_field_override_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    override = [d for d in _drift(result) if "common field" in d.message]
    assert [(d.path, d.line) for d in override] == [("repro/core/emitters.py", 7)]


def test_consumed_event_not_in_schema_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    ghost = [d for d in _drift(result) if "'ghost_event'" in d.message]
    assert [(d.path, d.line) for d in ghost] == [("repro/obs/analyze.py", 5)]


def test_consumed_metric_without_producer_flagged(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    ghost = [d for d in _drift(result) if "'ghost_metric'" in d.message]
    assert [(d.path, d.line) for d in ghost] == [("repro/obs/analyze.py", 10)]
    assert "no MetricsRegistry" in ghost[0].message


def test_clean_fixture_has_no_drift(fixtures_dir):
    # The clean tree exercises every resolution path that must NOT
    # fire: conditional event names, f-string metric prefixes,
    # consumed names that all exist.
    result = run_checks(fixtures_dir / "clean")
    assert not _drift(result)


def test_unresolved_emit_reported_and_skips_never_emitted(fixtures_dir):
    result = run_checks(fixtures_dir / "unresolved")
    drift = _drift(result)
    assert [(d.path, d.line) for d in drift] == [("repro/core/emitters.py", 6)]
    assert "could not be resolved" in drift[0].message
    # 'maybe_dynamic' is never visibly emitted, but with an unresolved
    # emit site in the tree the never-emitted direction must not fire.
    assert not any("maybe_dynamic" in d.message for d in drift)


def test_no_schema_file_no_drift_checks(tmp_path):
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "e.py").write_text(
        "def f(obs, cycle):\n    obs.emit(cycle, 'whatever', a=1)\n"
    )
    result = run_checks(tmp_path, rule_ids=["schema-drift"])
    assert result.ok


def test_real_tree_cross_checks_hold():
    # The repo itself must satisfy both directions: every event in
    # repro.obs.trace.EVENT_FIELDS is emitted by the simulator and
    # every consumed event/metric resolves.  This is the acceptance
    # check that the rule actually reads the real schema.
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    result = run_checks(src, rule_ids=["schema-drift"])
    assert result.ok, [d.format() for d in result.diagnostics]


def test_real_tree_drift_is_caught(tmp_path):
    # Renaming an event in a copy of the real tree must fail both
    # directions: the new name is not in the schema, the old name is
    # no longer emitted.
    import shutil
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src"
    work = tmp_path / "src"
    shutil.copytree(
        src, work, ignore=shutil.ignore_patterns("__pycache__", "check")
    )
    pipeline = work / "repro" / "core" / "pipeline.py"
    text = pipeline.read_text()
    assert '"bs_skip"' in text
    pipeline.write_text(text.replace('"bs_skip"', '"bs_skipped"'))
    result = run_checks(work, rule_ids=["schema-drift"])
    messages = [d.message for d in result.diagnostics]
    assert any(
        "'bs_skipped'" in m and "not in the trace schema" in m
        for m in messages
    )
    assert any(
        "'bs_skip'" in m and "never emitted" in m for m in messages
    )
