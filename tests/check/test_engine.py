"""Engine mechanics: suppressions, file collection, rule scoping."""

import ast

import pytest

from repro.check import ALL_RULES, UnknownRuleError, run_checks
from repro.check.engine import (
    Diagnostic,
    Rule,
    Suppressions,
    collect_files,
    dotted_call_name,
    import_map,
)


class TestSuppressions:
    def test_line_all_rules(self):
        sup = Suppressions.parse("x = 1  # repro: no-check\n")
        assert sup.covers("anything", 1)
        assert not sup.covers("anything", 2)

    def test_line_specific_rules(self):
        sup = Suppressions.parse("x = 1  # repro: no-check[a, b]\n")
        assert sup.covers("a", 1)
        assert sup.covers("b", 1)
        assert not sup.covers("c", 1)

    def test_file_scoped_specific(self):
        sup = Suppressions.parse("# repro: no-check-file[no-float-eq]\nx = 1\n")
        assert sup.covers("no-float-eq", 99)
        assert not sup.covers("no-wallclock", 99)

    def test_file_scoped_all(self):
        sup = Suppressions.parse("# repro: no-check-file\n")
        assert sup.covers("anything", 123)

    def test_trailing_justification_allowed(self):
        sup = Suppressions.parse("x  # repro: no-check[r] -- because reasons\n")
        assert sup.covers("r", 1)
        assert sup.count == 1

    def test_non_marker_comments_ignored(self):
        sup = Suppressions.parse("# just a comment\nx = 1  # noqa\n")
        assert sup.count == 0


class TestRuleScoping:
    def test_include_prefix(self):
        rule = Rule()
        rule.include = ("repro/core/",)
        assert rule.matches("repro/core/pipeline.py")
        assert not rule.matches("repro/serve/service.py")

    def test_exclude_wins(self):
        rule = Rule()
        rule.include = ("repro/obs/",)
        rule.exclude = ("repro/obs/spans.py",)
        assert rule.matches("repro/obs/trace.py")
        assert not rule.matches("repro/obs/spans.py")

    def test_empty_include_matches_all(self):
        assert Rule().matches("anything/at/all.py")


class TestCollectFiles:
    def test_src_prefix_stripped_for_scoping(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core"
        target.mkdir(parents=True)
        (target / "x.py").write_text("a = 1\n")
        files, errors = collect_files(tmp_path)
        assert not errors
        assert files[0].rel == "src/repro/core/x.py"
        assert files[0].mod == "repro/core/x.py"

    def test_package_root_gains_prefix(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "core").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "core" / "x.py").write_text("a = 1\n")
        files, _ = collect_files(pkg)
        mods = {f.mod for f in files}
        assert "repro/core/x.py" in mods

    def test_syntax_error_becomes_diagnostic(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        files, errors = collect_files(tmp_path)
        assert not files
        assert errors[0].rule == "parse-error"
        assert errors[0].path == "broken.py"

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "x.py").write_text("a = 1\n")
        (tmp_path / "y.py").write_text("b = 2\n")
        files, _ = collect_files(tmp_path)
        assert [f.rel for f in files] == ["y.py"]


class TestRunChecks:
    def test_unknown_rule_id_raises(self, tmp_path):
        (tmp_path / "x.py").write_text("a = 1\n")
        with pytest.raises(UnknownRuleError):
            run_checks(tmp_path, rule_ids=["no-such-rule"])

    def test_rule_filter_limits_diagnostics(self, fixtures_dir):
        result = run_checks(
            fixtures_dir / "violations", rule_ids=["lock-discipline"]
        )
        assert result.diagnostics
        assert {d.rule for d in result.diagnostics} == {"lock-discipline"}

    def test_parse_error_fails_the_gate(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = run_checks(tmp_path)
        assert not result.ok

    def test_diagnostics_sorted_and_deterministic(self, fixtures_dir):
        first = run_checks(fixtures_dir / "violations")
        second = run_checks(fixtures_dir / "violations")
        assert first.diagnostics == second.diagnostics
        assert first.diagnostics == sorted(first.diagnostics)

    def test_all_rules_have_unique_ids(self):
        ids = [rule.id for rule in ALL_RULES]
        assert len(ids) == len(set(ids))
        assert all(ids)


class TestAstHelpers:
    def test_import_map_aliases(self):
        tree = ast.parse(
            "import numpy as np\n"
            "import time\n"
            "from time import perf_counter as pc\n"
        )
        names = import_map(tree)
        assert names["np"] == "numpy"
        assert names["time"] == "time"
        assert names["pc"] == "time.perf_counter"

    def test_dotted_call_name_resolution(self):
        tree = ast.parse("import numpy as np\nnp.random.default_rng()\n")
        names = import_map(tree)
        call = tree.body[1].value
        assert dotted_call_name(call.func, names) == "numpy.random.default_rng"

    def test_dotted_call_name_unknown_base(self):
        tree = ast.parse("rng.random()\n")
        call = tree.body[0].value
        assert dotted_call_name(call.func, import_map(tree)) is None


def test_diagnostic_format():
    diag = Diagnostic(
        path="a/b.py", line=3, col=7, rule="r", message="m", severity="error"
    )
    assert diag.format() == "a/b.py:3:7: r: m"
