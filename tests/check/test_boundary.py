"""Process-boundary rule: frozen payloads, picklable callables."""

from repro.check import run_checks
from tests.check.conftest import SRC

EXECUTOR = '''\
from concurrent.futures import ProcessPoolExecutor

POOL_PAYLOAD_TYPES = ("Job",)
POOL_PAYLOAD_PICKLABLE = ()


def work(job):
    return job


class SimExecutor:
    def run(self, jobs):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(work, job) for job in jobs]
'''

FROZEN_JOB = '''\
from dataclasses import dataclass


@dataclass(frozen=True)
class Job:
    name: str
    inner: "Inner"


@dataclass(frozen=True)
class Inner:
    value: int
'''


def _tree(tmp_path, executor=EXECUTOR, job=FROZEN_JOB):
    root = tmp_path / "tree"
    (root / "repro").mkdir(parents=True)
    (root / "repro" / "executor.py").write_text(executor)
    (root / "repro" / "job.py").write_text(job)
    return root


def _boundary(result):
    return [d for d in result.diagnostics if d.rule == "process-boundary"]


def test_frozen_closure_is_clean(tmp_path):
    result = run_checks(_tree(tmp_path), rule_ids=["process-boundary"])
    assert _boundary(result) == []


def test_unfrozen_payload_flagged(tmp_path):
    job = FROZEN_JOB.replace("@dataclass(frozen=True)\nclass Job", "@dataclass\nclass Job")
    result = run_checks(_tree(tmp_path, job=job), rule_ids=["process-boundary"])
    diags = _boundary(result)
    assert len(diags) == 1
    assert diags[0].path == "repro/job.py"
    assert "Job crosses the SimExecutor process-pool boundary" in diags[0].message
    assert "not a frozen dataclass" in diags[0].message


def test_transitive_field_class_must_be_frozen(tmp_path):
    job = FROZEN_JOB.replace("@dataclass(frozen=True)\nclass Inner", "@dataclass\nclass Inner")
    result = run_checks(_tree(tmp_path, job=job), rule_ids=["process-boundary"])
    diags = _boundary(result)
    assert len(diags) == 1
    assert "Inner crosses" in diags[0].message
    assert "field Job.inner" in diags[0].message


def test_picklable_allowlist_exempts(tmp_path):
    executor = EXECUTOR.replace(
        'POOL_PAYLOAD_PICKLABLE = ()', 'POOL_PAYLOAD_PICKLABLE = ("Job",)'
    )
    job = FROZEN_JOB.replace("@dataclass(frozen=True)\nclass Job", "@dataclass\nclass Job")
    result = run_checks(
        _tree(tmp_path, executor=executor, job=job),
        rule_ids=["process-boundary"],
    )
    assert _boundary(result) == []


def test_enum_payload_exempt(tmp_path):
    job = FROZEN_JOB + '''

from enum import Enum


class Kind(str, Enum):
    A = "a"
'''
    job = job.replace('inner: "Inner"', 'inner: "Inner"\n    kind: "Kind"')
    result = run_checks(_tree(tmp_path, job=job), rule_ids=["process-boundary"])
    assert _boundary(result) == []


def test_missing_registry_flagged(tmp_path):
    executor = EXECUTOR.replace('POOL_PAYLOAD_TYPES = ("Job",)\n', "")
    result = run_checks(
        _tree(tmp_path, executor=executor), rule_ids=["process-boundary"]
    )
    diags = _boundary(result)
    assert len(diags) == 1
    assert "declares no POOL_PAYLOAD_TYPES" in diags[0].message


def test_registry_naming_unknown_class_flagged(tmp_path):
    executor = EXECUTOR.replace('("Job",)', '("Job", "Ghost")')
    result = run_checks(
        _tree(tmp_path, executor=executor), rule_ids=["process-boundary"]
    )
    diags = _boundary(result)
    assert any("'Ghost'" in d.message and "no class of that name" in d.message
               for d in diags)


def test_lambda_submit_flagged(tmp_path):
    executor = EXECUTOR.replace(
        "pool.submit(work, job)", "pool.submit(lambda: job)"
    )
    result = run_checks(
        _tree(tmp_path, executor=executor), rule_ids=["process-boundary"]
    )
    diags = _boundary(result)
    assert len(diags) == 1
    assert "passes a lambda" in diags[0].message
    assert "do not pickle" in diags[0].message


def test_closure_submit_flagged(tmp_path):
    executor = EXECUTOR.replace(
        "        with ProcessPoolExecutor() as pool:\n"
        "            return [pool.submit(work, job) for job in jobs]",
        "        def local(job):\n"
        "            return job\n"
        "        with ProcessPoolExecutor() as pool:\n"
        "            return [pool.submit(local, job) for job in jobs]",
    )
    result = run_checks(
        _tree(tmp_path, executor=executor), rule_ids=["process-boundary"]
    )
    diags = _boundary(result)
    assert len(diags) == 1
    assert "locally-defined local()" in diags[0].message


def test_real_tree_boundary_rule_is_clean():
    result = run_checks(SRC, rule_ids=["process-boundary"])
    assert _boundary(result) == []
