"""Schema-drift coverage of the request-log telemetry contract.

Each test copies the real source tree, injects one realistic drift
(renamed emit, narrowed consumer tuple, diverged phase list) and
asserts the ``schema-drift`` rule catches it — the negative tests the
static cross-checks need to be trusted.
"""

import shutil
from pathlib import Path

import pytest

from repro.check import run_checks

SRC = Path(__file__).resolve().parents[2] / "src"


def _drift(result):
    return [d for d in result.diagnostics if d.rule == "schema-drift"]


@pytest.fixture
def work_tree(tmp_path):
    work = tmp_path / "src"
    shutil.copytree(
        SRC, work, ignore=shutil.ignore_patterns("__pycache__", "check")
    )
    return work


def _rewrite(path, old, new):
    text = path.read_text()
    assert old in text, f"expected {old!r} in {path}"
    path.write_text(text.replace(old, new))


def test_clean_tree_passes_the_telemetry_checks():
    result = run_checks(SRC, rule_ids=["schema-drift"])
    assert result.ok, [d.format() for d in result.diagnostics]


def test_renamed_request_event_fails_both_directions(work_tree):
    _rewrite(
        work_tree / "repro" / "serve" / "service.py",
        '"ingress", trace_id=trace_id',
        '"ingres", trace_id=trace_id',
    )
    drift = _drift(run_checks(work_tree, rule_ids=["schema-drift"]))
    assert any(
        "'ingres'" in d.message and "not in the request-log schema" in d.message
        for d in drift
    )
    assert any(
        "'ingress'" in d.message and "never logged" in d.message
        for d in drift
    )


def test_missing_required_field_on_emit_is_caught(work_tree):
    _rewrite(
        work_tree / "repro" / "serve" / "service.py",
        '"ingress", trace_id=trace_id, key=key, outcome=outcome',
        '"ingress", trace_id=trace_id, outcome=outcome',
    )
    drift = _drift(run_checks(work_tree, rule_ids=["schema-drift"]))
    assert any(
        "'ingress'" in d.message and "missing required" in d.message
        and "'key'" in d.message
        for d in drift
    )


def test_consumer_field_tuple_drift_is_caught(work_tree):
    _rewrite(
        work_tree / "repro" / "obs" / "servereport.py",
        '"ingress": ("trace_id", "key", "outcome"),',
        '"ingress": ("trace_id", "outcome"),',
    )
    drift = _drift(run_checks(work_tree, rule_ids=["schema-drift"]))
    assert any(
        "REQLOG_CONSUMED_EVENTS['ingress']" in d.message
        and "but the schema requires" in d.message
        for d in drift
    )


def test_schema_event_missing_from_consumers_is_caught(work_tree):
    _rewrite(
        work_tree / "repro" / "obs" / "servereport.py",
        '    "snapshot": ("queue_depth", "active", "oldest_age_s", "counters"),\n',
        "",
    )
    drift = _drift(run_checks(work_tree, rule_ids=["schema-drift"]))
    assert any(
        "'snapshot'" in d.message
        and "missing from REQLOG_CONSUMED_EVENTS" in d.message
        for d in drift
    )


def test_report_phase_divergence_fails_both_directions(work_tree):
    path = work_tree / "repro" / "obs" / "servereport.py"
    # Drop a real phase and add a phantom one in a single edit.
    _rewrite(path, '    "store_write",\n', '    "warp_drive",\n')
    drift = _drift(run_checks(work_tree, rule_ids=["schema-drift"]))
    assert any(
        "'warp_drive'" in d.message and "not in LATENCY_PHASES" in d.message
        for d in drift
    )
    assert any(
        "'store_write'" in d.message
        and "missing from REPORT_LATENCY_PHASES" in d.message
        for d in drift
    )


def test_common_field_override_is_caught(work_tree):
    _rewrite(
        work_tree / "repro" / "serve" / "service.py",
        '"ingress", trace_id=trace_id, key=key, outcome=outcome',
        '"ingress", ts=0.0, trace_id=trace_id, key=key, outcome=outcome',
    )
    drift = _drift(run_checks(work_tree, rule_ids=["schema-drift"]))
    assert any(
        "'ts'" in d.message and "RequestLog stamps it" in d.message
        for d in drift
    )
