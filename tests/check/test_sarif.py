"""SARIF rendering: byte stability, structure, golden round-trip."""

import json

from repro.check import ALL_RULES, run_checks
from repro.check.cli import check_main
from repro.check.sarif import render_sarif, to_sarif
from tests.check.conftest import FIXTURES

GOLDEN = FIXTURES.parent / "golden_violations.sarif"


def _violations_result():
    return run_checks(FIXTURES / "violations")


def test_render_is_byte_stable():
    result = _violations_result()
    first = render_sarif(result, ALL_RULES)
    second = render_sarif(_violations_result(), ALL_RULES)
    assert first == second
    assert first.endswith("\n")
    # Sorted keys: serialising the parsed document the same way is a
    # fixed point.
    assert json.dumps(json.loads(first), indent=2, sort_keys=True) + "\n" == first


def test_document_structure_round_trips():
    result = _violations_result()
    document = to_sarif(result, ALL_RULES)
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    results = run["results"]
    assert len(results) == len(result.diagnostics)
    rules = run["tool"]["driver"]["rules"]
    ids = [entry["id"] for entry in rules]
    assert ids == sorted(ids)
    for sarif_result, diag in zip(results, result.diagnostics):
        assert sarif_result["ruleId"] == diag.rule
        assert rules[sarif_result["ruleIndex"]]["id"] == diag.rule
        location = sarif_result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == diag.path
        assert location["region"]["startLine"] == max(diag.line, 1)
        assert sarif_result["message"]["text"] == diag.message


def test_every_reported_rule_is_in_the_driver_catalogue(tmp_path):
    # parse-error has no Rule object; the driver must still list it.
    (tmp_path / "broken.py").write_text("def broken(:\n")
    result = run_checks(tmp_path)
    document = to_sarif(result, ALL_RULES)
    ids = {r["id"] for r in document["runs"][0]["tool"]["driver"]["rules"]}
    assert "parse-error" in ids


def test_golden_round_trip():
    # The committed golden pins the exact SARIF document for the
    # violations fixture (minus the machine-dependent URI base).
    document = to_sarif(_violations_result(), ALL_RULES)
    document["runs"][0].pop("originalUriBaseIds")
    golden = json.loads(GOLDEN.read_text())
    assert document == golden


def test_cli_sarif_format(capsys):
    exit_code = check_main(
        [str(FIXTURES / "violations"), "--format", "sarif", "--no-cache"]
    )
    assert exit_code == 1
    out = capsys.readouterr().out
    document = json.loads(out)
    assert document["runs"][0]["results"]
    assert out.endswith("\n")
