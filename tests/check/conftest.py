"""Shared fixtures for the repro.check tests."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="session")
def fixtures_dir() -> Path:
    return FIXTURES
