"""Shared fixtures for the repro.check tests."""

import shutil
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(scope="session")
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture()
def src_copy(tmp_path) -> Path:
    """A mutable copy of the real src tree (checker package included,
    so the contract snapshot and identity config travel with it)."""
    work = tmp_path / "src"
    shutil.copytree(SRC, work, ignore=shutil.ignore_patterns("__pycache__"))
    return work
