"""Unused-suppression diagnostics and --prune-suppressions."""

from repro.check import UNUSED_SUPPRESSION_ID, run_checks
from repro.check.cli import check_main
from repro.check.engine import Suppressions


def _unused(result):
    return [d for d in result.diagnostics if d.rule == UNUSED_SUPPRESSION_ID]


def _tree(tmp_path, text):
    root = tmp_path / "tree"
    (root / "repro" / "core").mkdir(parents=True)
    (root / "repro" / "core" / "mod.py").write_text(text)
    return root


def test_marker_that_fires_is_not_flagged(tmp_path, fixtures_dir):
    result = run_checks(fixtures_dir / "suppressed")
    assert result.suppressed > 0
    assert _unused(result) == []


def test_stale_marker_flagged_at_its_line(tmp_path):
    root = _tree(
        tmp_path,
        "import math\n"
        "\n"
        "\n"
        "def f():\n"
        "    return math.pi  # repro: no-check[no-wallclock]\n",
    )
    result = run_checks(root)
    diags = _unused(result)
    assert len(diags) == 1
    assert diags[0].path == "repro/core/mod.py"
    assert diags[0].line == 5
    assert "no longer matches any diagnostic" in diags[0].message
    assert not result.ok  # stale markers gate


def test_blanket_marker_cannot_hide_its_own_staleness(tmp_path):
    root = _tree(
        tmp_path,
        "# repro: no-check-file\n"
        "import math\n"
        "\n"
        "\n"
        "def f():\n"
        "    return math.pi\n",
    )
    result = run_checks(root)
    assert len(_unused(result)) == 1


def test_marker_mentions_in_docstrings_are_not_markers():
    suppressions = Suppressions.parse(
        '"""Docs: suppress with ``# repro: no-check[rule]``."""\n'
        "X = 1  # repro: no-check[real-rule]\n"
    )
    assert suppressions.count == 1
    assert suppressions.markers[0].line == 2


def test_rule_filter_suppresses_staleness_reporting(tmp_path):
    # Under --rule, a marker for an unselected rule is not decidable.
    root = _tree(
        tmp_path,
        "import math\n"
        "\n"
        "\n"
        "def f():\n"
        "    return math.pi  # repro: no-check[no-wallclock]\n",
    )
    result = run_checks(root, rule_ids=["lock-discipline"])
    assert _unused(result) == []
    # Explicitly selecting the unused-suppression rule re-enables it.
    result = run_checks(
        root, rule_ids=["lock-discipline", UNUSED_SUPPRESSION_ID]
    )
    assert len(_unused(result)) == 1


def test_prune_suppressions_lists_stale_markers(tmp_path, capsys):
    root = _tree(
        tmp_path,
        "import math\n"
        "X = 1  # repro: no-check[no-wallclock]\n",
    )
    assert check_main([str(root), "--prune-suppressions", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "repro/core/mod.py:2: # repro: no-check[no-wallclock]" in out


def test_prune_suppressions_clean_tree(tmp_path, capsys):
    root = _tree(tmp_path, "X = 1\n")
    assert check_main([str(root), "--prune-suppressions", "--no-cache"]) == 0
    assert "no stale suppressions" in capsys.readouterr().out


def test_used_markers_are_recorded(fixtures_dir):
    result = run_checks(fixtures_dir / "suppressed")
    assert result.used_markers
    assert all(len(record) == 3 for record in result.used_markers)
