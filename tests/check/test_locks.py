"""Lock-discipline rule: unlocked writes, conventions, exemptions."""

from repro.check import run_checks


def _locks(result):
    return [
        (d.path, d.line)
        for d in result.diagnostics
        if d.rule == "lock-discipline"
    ]


def test_fixture_lines(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    assert _locks(result) == [
        ("repro/serve/service.py", 12),
        ("repro/serve/service.py", 20),
    ]


def _write(tmp_path, body):
    serve = tmp_path / "repro" / "serve"
    serve.mkdir(parents=True)
    (serve / "svc.py").write_text(body)
    return run_checks(tmp_path, rule_ids=["lock-discipline"])


def test_init_exempt(tmp_path):
    result = _write(
        tmp_path,
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.state = 0\n",
    )
    assert result.ok


def test_locked_suffix_exempt(tmp_path):
    result = _write(
        tmp_path,
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.state = 0\n"
        "    def bump_locked(self):\n"
        "        self.state += 1\n",
    )
    assert result.ok


def test_nested_with_covers_writes(tmp_path):
    result = _write(
        tmp_path,
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._cv = threading.Condition()\n"
        "        self.state = 0\n"
        "    def bump(self):\n"
        "        with self._cv:\n"
        "            if self.state < 3:\n"
        "                self.state += 1\n",
    )
    assert result.ok


def test_write_in_try_outside_lock_flagged(tmp_path):
    result = _write(
        tmp_path,
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.state = 0\n"
        "    def bump(self):\n"
        "        try:\n"
        "            self.state += 1\n"
        "        except ValueError:\n"
        "            self.state = 0\n",
    )
    assert [d.line for d in result.diagnostics] == [8, 10]


def test_subscript_write_through_attr_flagged(tmp_path):
    result = _write(
        tmp_path,
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.memo = {}\n"
        "    def put(self, k, v):\n"
        "        self.memo[k] = v\n",
    )
    assert [d.line for d in result.diagnostics] == [7]


def test_lockless_class_ignored(tmp_path):
    result = _write(
        tmp_path,
        "class Plain:\n"
        "    def set(self, v):\n"
        "        self.value = v\n",
    )
    assert result.ok


def test_non_threading_lock_ignored(tmp_path):
    # FileLock and friends are not threading primitives; classes that
    # hold only those are out of this rule's scope.
    result = _write(
        tmp_path,
        "import threading\n"
        "class S:\n"
        "    def __init__(self):\n"
        "        self._event = threading.Event()\n"
        "        self.state = 0\n"
        "    def set(self):\n"
        "        self.state = 1\n",
    )
    assert result.ok
