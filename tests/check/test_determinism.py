"""Determinism rules: each seeded violation flagged at the right line."""

from repro.check import run_checks


def _lines(result, rule, path):
    return [
        d.line
        for d in result.diagnostics
        if d.rule == rule and d.path == path
    ]


def test_violation_lines(fixtures_dir):
    result = run_checks(fixtures_dir / "violations")
    path = "repro/core/bad_determinism.py"
    assert _lines(result, "no-wallclock", path) == [10]
    assert _lines(result, "no-unseeded-random", path) == [14, 15]
    assert _lines(result, "no-unstable-order", path) == [21, 22, 23]
    assert _lines(result, "no-float-eq", path) == [28]


def test_clean_tree_passes(fixtures_dir):
    result = run_checks(fixtures_dir / "clean")
    assert result.ok
    assert not result.diagnostics


def test_suppressions_silence_and_count(fixtures_dir):
    result = run_checks(fixtures_dir / "suppressed")
    assert result.ok
    assert not result.diagnostics
    assert result.suppressed == 4


def test_rules_scoped_to_sim_paths(tmp_path):
    # The same wall-clock read outside the simulation scope is fine:
    # serve/cli/fsio legitimately use host time.
    serve = tmp_path / "repro" / "serve"
    serve.mkdir(parents=True)
    (serve / "timing.py").write_text(
        "import time\n\ndef now():\n    return time.time()\n"
    )
    result = run_checks(tmp_path)
    assert result.ok


def test_seeded_rng_not_flagged(tmp_path):
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "rng.py").write_text(
        "import numpy as np\n\nrng = np.random.default_rng(42)\n"
    )
    result = run_checks(tmp_path)
    assert result.ok


def test_fastsim_scope_covered(tmp_path):
    # The fast engine tier feeds reported cycle counts, so it sits in
    # the determinism scope like the exact pipeline does.
    fastsim = tmp_path / "repro" / "fastsim"
    fastsim.mkdir(parents=True)
    (fastsim / "bad.py").write_text(
        "import time\n"
        "import numpy as np\n"
        "\n"
        "def jitter():\n"
        "    return time.perf_counter()\n"
        "\n"
        "rng = np.random.default_rng()\n"
    )
    result = run_checks(tmp_path)
    assert not result.ok
    rules = sorted(d.rule for d in result.diagnostics)
    assert rules == ["no-unseeded-random", "no-wallclock"]


def test_aliased_import_still_caught(tmp_path):
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "t.py").write_text(
        "from time import perf_counter as pc\n\ndef f():\n    return pc()\n"
    )
    result = run_checks(tmp_path)
    assert [d.rule for d in result.diagnostics] == ["no-wallclock"]
