"""Program facts and index: extraction, call graph, reverse paths."""

import ast

from repro.check.program import (
    ProgramIndex,
    extract_program_facts,
    literal_value,
)

SOURCE = '''
import threading
from repro.fsio import FileLock

SWEEP_FIELDS = ("kernel", "machine")
COMPUTED = tuple(x for x in SWEEP_FIELDS)
SCHEMA_VERSION = 2


def module_fn():
    return {"a": 1, "b": 2}


class Widget:
    name: str
    count: int = 0

    def __init__(self):
        self._lock = threading.Lock()

    def entry(self):
        self.middle()

    def middle(self):
        self.leaf_locked()

    def safe(self):
        with self._lock:
            self.leaf_locked()

    def factory_held(self):
        with self._dir_lock():
            self.leaf_locked()

    def leaf_locked(self):
        pass

    def manual(self):
        self._lock.acquire()
        try:
            pass
        finally:
            self._lock.release()

    def manual_bad(self):
        self._lock.acquire()

    def submitter(self, pool):
        def closure():
            pass
        pool.submit(closure, 1)
        pool.map(lambda x: x, [1])
'''


def _facts():
    tree = ast.parse(SOURCE)
    return extract_program_facts("widget.py", "widget.py", tree)


def test_assign_extraction_literal_and_computed():
    facts = _facts()
    fields = facts.assign("SWEEP_FIELDS")
    assert fields.is_literal and fields.literal == ("kernel", "machine")
    computed = facts.assign("COMPUTED")
    assert not computed.is_literal and computed.literal is None
    assert computed.dump_sha and computed.dump_sha != fields.dump_sha
    assert facts.assign("SCHEMA_VERSION").literal == 2


def test_dump_sha_tracks_declaration_text():
    a = extract_program_facts("a.py", "a.py", ast.parse("X_FIELDS = (1, 2)"))
    b = extract_program_facts("b.py", "b.py", ast.parse("X_FIELDS = (1, 3)"))
    c = extract_program_facts("c.py", "c.py", ast.parse("X_FIELDS = (1, 2)"))
    assert a.assign("X_FIELDS").dump_sha != b.assign("X_FIELDS").dump_sha
    assert a.assign("X_FIELDS").dump_sha == c.assign("X_FIELDS").dump_sha


def test_literal_value_containers_are_order_stable():
    value, ok = literal_value(ast.parse("{'b': 2, 'a': 1}", mode="eval").body)
    assert ok and value == (("a", 1), ("b", 2))
    value, ok = literal_value(ast.parse("{3, 1, 2}", mode="eval").body)
    assert ok and value == (1, 2, 3)
    _, ok = literal_value(ast.parse("f(1)", mode="eval").body)
    assert not ok


def test_class_fields_and_methods():
    facts = _facts()
    cls = facts.cls("Widget")
    assert cls.field_names() == ("name", "count")
    assert "leaf_locked" in cls.methods
    assert not cls.is_frozen_dataclass()


def test_returned_dict_keys():
    facts = _facts()
    assert facts.function("module_fn").returned_dict_keys == ("a", "b")


def test_call_sites_record_held_contexts():
    facts = _facts()
    safe = facts.function("safe", cls="Widget")
    call = next(c for c in safe.calls if c.callee == "self.leaf_locked")
    assert "_lock" in call.held
    # Factory form ``with self._dir_lock():`` pins the attribute too.
    factory = facts.function("factory_held", cls="Widget")
    call = next(c for c in factory.calls if c.callee == "self.leaf_locked")
    assert "_dir_lock" in call.held
    # No lock held on the bare path.
    middle = facts.function("middle", cls="Widget")
    call = next(c for c in middle.calls if c.callee == "self.leaf_locked")
    assert call.held == ()


def test_call_sites_record_try_finally():
    facts = _facts()
    manual = facts.function("manual", cls="Widget")
    acquire = next(
        c for c in manual.calls if c.callee == "self._lock.acquire"
    )
    assert not acquire.in_try_finally  # the acquire itself sits before try
    release = next(
        c for c in manual.calls if c.callee == "self._lock.release"
    )
    assert release.in_try_finally


def test_call_arg_shapes_and_nested_defs():
    facts = _facts()
    submitter = facts.function("submitter", cls="Widget")
    assert "closure" in submitter.nested_defs
    submit = next(c for c in submitter.calls if c.callee == "pool.submit")
    assert submit.arg_shapes[0] == "name:closure"
    mapped = next(c for c in submitter.calls if c.callee == "pool.map")
    assert mapped.arg_shapes[0] == "lambda"


def test_import_resolution_in_callees():
    source = "import numpy as np\n\ndef f():\n    np.random.seed(1)\n"
    facts = extract_program_facts("f.py", "f.py", ast.parse(source))
    call = facts.function("f").calls[0]
    assert call.callee == "numpy.random.seed"


def test_index_reverse_call_paths():
    facts = _facts()
    index = ProgramIndex.build([facts])
    chains = index.call_paths_to("leaf_locked", "Widget", facts)
    assert ("entry", "middle") in chains
    # Callers of middle: entry only.
    callers = [fn.name for fn, _ in index.callers_of("middle", "Widget", facts)]
    assert callers == ["entry"]


def test_index_lookups_sorted_by_rel():
    a = extract_program_facts("b.py", "b.py", ast.parse("NAME_FIELDS = (1,)"))
    b = extract_program_facts("a.py", "a.py", ast.parse("NAME_FIELDS = (2,)"))
    index = ProgramIndex.build([a, b])
    rels = [f.rel for f, _ in index.find_assign("NAME_FIELDS")]
    assert rels == ["a.py", "b.py"]
