"""Mini trace schema, fully emitted and consumed."""

EVENT_FIELDS = {
    "dispatch": ("seq",),
    "retire": ("seq",),
}

COMMON_FIELDS = ("cycle", "event", "kernel")
