"""Consumers that agree with the schema and the producers."""

_WINDOW_FIELD = {
    "dispatch": "dispatches",
    "retire": "retires",
}


def summarize(event_counts, counters):
    total = event_counts.get("dispatch", 0)
    vpu = counters.get("vpu_ops_add", 0)
    return total + counters.get("sim_cycles", 0) + vpu
