"""Deterministic simulation code: nothing to flag."""

import numpy as np


def run(obs, cycle, seq, done):
    rng = np.random.default_rng(1234)
    obs.emit(cycle, "dispatch", seq=seq)
    name = "retire" if done else "dispatch"
    obs.emit(cycle, name, seq=seq)
    obs.metrics.counter("sim_cycles").inc()
    obs.metrics.counter(f"vpu_ops_{name}").inc()
    return rng.random()


def near(a, b):
    return abs(a - b) < 1e-9


def ordered(ops):
    return sorted({op.seq for op in ops})
