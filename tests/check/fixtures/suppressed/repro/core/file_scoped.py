"""File-scoped suppression of one rule id."""
# repro: no-check-file[no-float-eq] -- fixture: exact comparisons intended

def exact(a):
    return a == 0.0 or a != 1.0
