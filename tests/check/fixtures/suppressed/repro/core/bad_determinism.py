"""The same violations, each silenced by a suppression comment."""

import time


def timestamped_cycle(cycle):
    return cycle + time.time()  # repro: no-check[no-wallclock] -- fixture


def is_done(acc):
    return acc == 1.0  # repro: no-check -- fixture: all rules on this line
