"""Schema with an event that *looks* never-emitted."""

EVENT_FIELDS = {
    "dispatch": ("seq",),
    "maybe_dynamic": ("seq",),
}

COMMON_FIELDS = ("cycle", "event", "kernel")
