"""An emit site whose event name defeats static resolution."""


def run(obs, cycle, picker):
    obs.emit(cycle, "dispatch", seq=1)
    obs.emit(cycle, picker(), seq=2)  # line 6: unresolvable event name
