"""Lock-discipline violations."""

import threading


class MiniService:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = 0

    def submit(self):
        self.jobs += 1  # line 12: lock-discipline (unlocked write)
        with self._lock:
            self.jobs += 1  # locked: clean

    def reset_locked(self):
        self.jobs = 0  # exempt: *_locked convention

    def rebind(self):
        self._lock = threading.Lock()  # line 20: lock-discipline (rebind)
