"""Seeded determinism violations; tests assert the exact lines."""

import random
import time

import numpy as np


def timestamped_cycle(cycle):
    return cycle + time.time()  # line 10: no-wallclock


def jitter():
    rng = np.random.default_rng()  # line 14: no-unseeded-random
    return rng.random() + random.random()  # line 15: no-unseeded-random


def dedup(ops):
    seen = {}
    for op in ops:
        seen[id(op)] = op  # line 21: no-unstable-order
    for op in {ops[0], ops[-1]}:  # line 22: no-unstable-order
        seen.pop(id(op), None)  # line 23: no-unstable-order
    return seen


def is_done(acc):
    return acc == 1.0  # line 28: no-float-eq
