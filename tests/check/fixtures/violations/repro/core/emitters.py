"""Emit-site violations against the fixture schema."""


def run(obs, cycle):
    obs.emit(cycle, "dispatch")  # line 5: schema-drift (missing 'seq')
    obs.emit(cycle, "unknown_event", seq=1)  # line 6: schema-drift
    obs.emit(cycle, "retire", seq=2, kernel="x")  # line 7: schema-drift
    obs.metrics.counter("real_metric").inc()
