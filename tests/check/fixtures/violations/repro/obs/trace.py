"""Mini trace schema for the schema-drift fixtures."""

EVENT_FIELDS = {
    "dispatch": ("seq",),
    "retire": ("seq",),
    "phantom": ("x",),  # line 6: schema-drift (never emitted)
}

COMMON_FIELDS = ("cycle", "event", "kernel")
