"""Consumer-side violations against the fixture schema."""

_WINDOW_FIELD = {
    "dispatch": "dispatches",
    "ghost_event": "ghosts",  # line 5: schema-drift (not in schema)
}


def summarize(counters):
    return counters.get("ghost_metric", 0)  # line 10: schema-drift
