"""Incremental analysis cache: content keys, memo, edge cases."""

import os

from repro.check import run_checks
from repro.check.cache import AnalysisCache, checker_fingerprint


def _tree(tmp_path, **files):
    root = tmp_path / "tree"
    root.mkdir(exist_ok=True)
    for name, text in files.items():
        path = root / name.replace(".", "/", name.count(".") - 1)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


GOOD = "import math\n\n\ndef f() -> float:\n    return math.pi\n"
BAD = "def broken(:\n"


def test_cold_then_memo_hit(tmp_path):
    root = _tree(tmp_path, **{"mod.py": GOOD})
    cache = tmp_path / "cache"
    cold = run_checks(root, cache_dir=cache)
    assert cold.parsed_files == 1 and not cold.from_memo
    warm = run_checks(root, cache_dir=cache)
    assert warm.from_memo and warm.parsed_files == 0
    assert warm.diagnostics == cold.diagnostics
    assert warm.files_checked == cold.files_checked


def test_mtime_change_without_content_change_stays_cached(tmp_path):
    root = _tree(tmp_path, **{"mod.py": GOOD})
    cache = tmp_path / "cache"
    run_checks(root, cache_dir=cache)
    # Bump mtime far into the future; the content hash is unchanged.
    path = root / "mod.py"
    os.utime(path, (path.stat().st_atime + 3600, path.stat().st_mtime + 3600))
    warm = run_checks(root, cache_dir=cache)
    assert warm.from_memo and warm.parsed_files == 0


def test_content_change_reparses_only_the_changed_file(tmp_path):
    root = _tree(tmp_path, **{"a.py": GOOD, "b.py": GOOD.replace("f", "g")})
    cache = tmp_path / "cache"
    run_checks(root, cache_dir=cache)
    (root / "a.py").write_text(GOOD + "\n\nX = 1\n")
    after = run_checks(root, cache_dir=cache)
    assert not after.from_memo
    assert after.parsed_files == 1
    assert after.cached_files == 1


def test_syntax_error_file_is_cached_and_replayed(tmp_path):
    root = _tree(tmp_path, **{"ok.py": GOOD, "broken.py": BAD})
    cache = tmp_path / "cache"
    cold = run_checks(root, cache_dir=cache)
    assert [d.rule for d in cold.diagnostics] == ["parse-error"]
    assert cold.files_checked == 2
    # Force a memo miss so the per-file entry (not the run memo) must
    # replay the parse-error diagnostic.
    (root / "ok.py").write_text(GOOD + "\nY = 2\n")
    warm = run_checks(root, cache_dir=cache)
    assert not warm.from_memo
    assert warm.parsed_files == 1  # only ok.py; broken.py replays from cache
    assert [d.rule for d in warm.diagnostics] == ["parse-error"]
    assert warm.diagnostics == cold.diagnostics


def test_rule_selection_gets_its_own_memo(tmp_path):
    root = _tree(tmp_path, **{"mod.py": GOOD})
    cache = tmp_path / "cache"
    subset = run_checks(root, rule_ids=["lock-discipline"], cache_dir=cache)
    full = run_checks(root, cache_dir=cache)
    assert not full.from_memo  # the subset memo must not answer a full run
    again = run_checks(root, rule_ids=["lock-discipline"], cache_dir=cache)
    assert again.from_memo
    assert again.diagnostics == subset.diagnostics


def test_corrupt_cache_entries_are_misses(tmp_path):
    root = _tree(tmp_path, **{"mod.py": GOOD})
    cache = tmp_path / "cache"
    run_checks(root, cache_dir=cache)
    corrupted = 0
    for path in cache.rglob("*.pkl"):
        path.write_bytes(b"not a pickle")
        corrupted += 1
    assert corrupted
    result = run_checks(root, cache_dir=cache)
    assert not result.from_memo
    assert result.parsed_files == 1
    assert result.ok


def test_no_cache_dir_means_no_cache_io(tmp_path):
    root = _tree(tmp_path, **{"mod.py": GOOD})
    result = run_checks(root)
    assert result.parsed_files == 1 and result.cached_files == 0
    assert not list(tmp_path.glob("**/*.pkl"))


def test_checker_fingerprint_is_stable_and_folded_into_keys():
    assert checker_fingerprint() == checker_fingerprint()


def test_file_key_depends_on_content(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    assert cache.file_key(b"a") != cache.file_key(b"b")
    assert cache.file_key(b"a") == cache.file_key(b"a")


def test_run_key_depends_on_selection_and_external_state(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    hashes = [("a.py", "h1")]
    base = cache.run_key(hashes, None, "")
    assert cache.run_key(hashes, ("lock-discipline",), "") != base
    assert cache.run_key(hashes, None, "contracts=sha") != base
    assert cache.run_key([("a.py", "h2")], None, "") != base
    assert cache.run_key(hashes, None, "") == base


def test_cache_survives_unpicklable_store(tmp_path, monkeypatch):
    # A cache directory that cannot be written must degrade to
    # cache-less behaviour, not crash the run.
    root = _tree(tmp_path, **{"mod.py": GOOD})
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a directory")
    result = run_checks(root, cache_dir=blocked / "sub")
    assert result.ok and result.parsed_files == 1
