"""``repro check`` CLI: exit codes, formats, the JSON golden file."""

import json
from pathlib import Path

import pytest

from repro.check.cli import check_main
from repro.cli import main as repro_main

GOLDEN = Path(__file__).parent / "golden_violations.json"


def test_exit_zero_on_clean(fixtures_dir, capsys):
    assert check_main([str(fixtures_dir / "clean")]) == 0
    out = capsys.readouterr().out
    assert out.startswith("OK")


def test_exit_one_on_violations(fixtures_dir, capsys):
    assert check_main([str(fixtures_dir / "violations")]) == 1
    out = capsys.readouterr().out
    assert "no-wallclock" in out
    assert "error(s)" in out


def test_exit_two_on_missing_root(tmp_path, capsys):
    assert check_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_exit_two_on_unknown_rule(fixtures_dir, capsys):
    assert check_main([str(fixtures_dir / "clean"), "--rule", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_rule_filter(fixtures_dir, capsys):
    assert (
        check_main(
            [str(fixtures_dir / "violations"), "--rule", "no-float-eq"]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "no-float-eq" in out
    assert "no-wallclock" not in out


def test_list_rules(capsys):
    assert check_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "no-wallclock",
        "no-unseeded-random",
        "no-unstable-order",
        "no-float-eq",
        "schema-drift",
        "lock-discipline",
    ):
        assert rule_id in out


def test_json_golden(fixtures_dir, capsys):
    assert check_main([str(fixtures_dir / "violations"), "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    document.pop("root")
    golden = json.loads(GOLDEN.read_text())
    assert document == golden


def test_json_clean_shape(fixtures_dir, capsys):
    assert check_main([str(fixtures_dir / "clean"), "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["diagnostics"] == []
    assert document["files_checked"] == 3


def test_repro_cli_dispatches_check(fixtures_dir, capsys):
    assert repro_main(["check", str(fixtures_dir / "clean")]) == 0
    assert capsys.readouterr().out.startswith("OK")


@pytest.mark.parametrize("tree,code", [("clean", 0), ("violations", 1)])
def test_exit_codes_parametrized(fixtures_dir, tree, code, capsys):
    assert check_main([str(fixtures_dir / tree)]) == code
    capsys.readouterr()
