"""Identity-axis completeness over the real tree and seeded mutations."""

from repro.check import run_checks
from tests.check.conftest import SRC


def _identity(result):
    return [
        d for d in result.diagnostics if d.rule == "identity-completeness"
    ]


def test_real_tree_is_complete():
    result = run_checks(SRC, rule_ids=["identity-completeness"])
    assert _identity(result) == []


def test_axis_removed_from_canonical_flagged(src_copy):
    schema = src_copy / "repro" / "serve" / "schema.py"
    text = schema.read_text()
    assert '"mechanism": self.mechanism,' in text
    schema.write_text(text.replace('"mechanism": self.mechanism,', "", 1))
    result = run_checks(src_copy, rule_ids=["identity-completeness"])
    diags = _identity(result)
    assert len(diags) == 1
    assert diags[0].path == "repro/serve/schema.py"
    assert "'mechanism'" in diags[0].message
    assert "canonical()" in diags[0].message


def test_axis_removed_from_sweep_meta_flagged(src_copy):
    schema = src_copy / "repro" / "store" / "schema.py"
    text = schema.read_text()
    assert '"mechanism",' in text
    schema.write_text(text.replace('"mechanism",', "", 1))
    result = run_checks(src_copy, rule_ids=["identity-completeness"])
    diags = _identity(result)
    assert any(
        d.path == "repro/store/schema.py"
        and "'mechanism'" in d.message
        and "SWEEP_META_FIELDS" in d.message
        for d in diags
    )


def test_batch_key_popping_an_axis_flagged(src_copy):
    schema = src_copy / "repro" / "serve" / "schema.py"
    text = schema.read_text()
    anchor = 'payload.pop("points")'
    assert anchor in text
    schema.write_text(
        text.replace(anchor, anchor + '\n        payload.pop("engine")', 1)
    )
    result = run_checks(src_copy, rule_ids=["identity-completeness"])
    diags = _identity(result)
    assert any(
        "batch_key() pops identity axis 'engine'" in d.message for d in diags
    )


def test_stale_exemption_flagged(src_copy):
    # SimResult is exempt from the ``machine`` axis; give it a machine
    # field and the exemption itself must be reported as stale.
    pipeline = src_copy / "repro" / "core" / "pipeline.py"
    text = pipeline.read_text()
    anchor = '    mechanism: str = "save"'
    assert anchor in text
    pipeline.write_text(
        text.replace(anchor, anchor + '\n    machine: str = "save"', 1)
    )
    result = run_checks(src_copy, rule_ids=["identity-completeness"])
    diags = _identity(result)
    assert any(
        "stale exemption" in d.message and "'machine'" in d.message
        for d in diags
    )


def test_unclassified_runcontext_field_flagged(src_copy):
    context = src_copy / "repro" / "experiments" / "context.py"
    text = context.read_text()
    anchor = "    full_grid: bool = False"
    assert anchor in text
    context.write_text(
        text.replace(anchor, "    mystery_knob: int = 3\n" + anchor, 1)
    )
    result = run_checks(src_copy, rule_ids=["identity-completeness"])
    diags = _identity(result)
    assert any(
        "'mystery_knob'" in d.message and "NON_AXIS_RUNCONTEXT" in d.message
        for d in diags
    )


def test_fixture_subset_without_pointjob_is_silent(fixtures_dir):
    result = run_checks(
        fixtures_dir / "clean", rule_ids=["identity-completeness"]
    )
    assert _identity(result) == []
