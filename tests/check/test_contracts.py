"""Contract-version coupling: snapshot, bump enforcement, staleness."""

import json

from repro.check import run_checks
from repro.check.contracts import (
    find_snapshot,
    generate_snapshot,
    write_snapshot,
)
from tests.check.conftest import SRC

MODULE = '''\
STORE_SCHEMA_VERSION = 1

ROW_FIELDS = (
    "kernel",
    "machine",
)
'''


def _tree(tmp_path, module_text=MODULE, snapshot=True):
    root = tmp_path / "tree"
    (root / "repro" / "store").mkdir(parents=True)
    (root / "repro" / "check").mkdir(parents=True)
    (root / "repro" / "store" / "schema.py").write_text(module_text)
    if snapshot:
        path = root / "repro" / "check" / "contracts.json"
        path.write_text("{}")
        write_snapshot(root, path)
    return root


def _contract(result):
    return [d for d in result.diagnostics if d.rule == "contract-version"]


def test_snapshot_roundtrip_is_clean(tmp_path):
    root = _tree(tmp_path)
    result = run_checks(root, rule_ids=["contract-version"])
    assert _contract(result) == []


def test_no_snapshot_is_silent(tmp_path):
    root = _tree(tmp_path, snapshot=False)
    result = run_checks(root, rule_ids=["contract-version"])
    assert _contract(result) == []
    assert find_snapshot(root) is None


def test_table_edit_without_bump_flagged(tmp_path):
    root = _tree(tmp_path)
    schema = root / "repro" / "store" / "schema.py"
    schema.write_text(schema.read_text().replace('"machine",', '"machine",\n    "extra",'))
    result = run_checks(root, rule_ids=["contract-version"])
    diags = _contract(result)
    assert len(diags) == 1
    assert diags[0].path == "repro/store/schema.py"
    assert "ROW_FIELDS changed but STORE_SCHEMA_VERSION=1 did not" in diags[0].message
    assert "bump the schema version" in diags[0].message


def test_table_edit_with_bump_requires_regeneration(tmp_path):
    root = _tree(tmp_path)
    schema = root / "repro" / "store" / "schema.py"
    text = schema.read_text()
    text = text.replace('"machine",', '"machine",\n    "extra",')
    text = text.replace("STORE_SCHEMA_VERSION = 1", "STORE_SCHEMA_VERSION = 2")
    schema.write_text(text)
    result = run_checks(root, rule_ids=["contract-version"])
    diags = _contract(result)
    assert len(diags) == 1
    assert "with a version bump" in diags[0].message
    assert "--write-contracts" in diags[0].message
    # Regenerating clears it.
    write_snapshot(root)
    result = run_checks(root, rule_ids=["contract-version"])
    assert _contract(result) == []


def test_new_table_not_in_snapshot_flagged(tmp_path):
    root = _tree(tmp_path)
    schema = root / "repro" / "store" / "schema.py"
    schema.write_text(schema.read_text() + '\nEXTRA_COLUMNS = ("a",)\n')
    result = run_checks(root, rule_ids=["contract-version"])
    diags = _contract(result)
    assert any("EXTRA_COLUMNS is not in the snapshot" in d.message for d in diags)


def test_removed_module_flagged_at_snapshot(tmp_path):
    root = _tree(tmp_path)
    (root / "repro" / "store" / "schema.py").write_text("X = 1\n")
    result = run_checks(root, rule_ids=["contract-version"])
    diags = _contract(result)
    assert any(
        "no longer declares any" in d.message and d.path == "contracts.json"
        for d in diags
    )


def test_unreadable_snapshot_flagged(tmp_path):
    root = _tree(tmp_path)
    (root / "repro" / "check" / "contracts.json").write_text("{broken")
    result = run_checks(root, rule_ids=["contract-version"])
    diags = _contract(result)
    assert len(diags) == 1
    assert "unreadable or not valid JSON" in diags[0].message


def test_module_without_version_constant_tracked_for_staleness(tmp_path):
    root = _tree(tmp_path, module_text='ROW_FIELDS = ("a",)\n')
    schema = root / "repro" / "store" / "schema.py"
    schema.write_text('ROW_FIELDS = ("a", "b")\n')
    result = run_checks(root, rule_ids=["contract-version"])
    diags = _contract(result)
    assert any("no *_SCHEMA_VERSION to couple to" in d.message for d in diags)


def test_committed_snapshot_matches_the_tree():
    # The committed src/repro/check/contracts.json must be current —
    # this is the test-suite mirror of the CI gate.
    committed = find_snapshot(SRC)
    assert committed is not None
    assert json.loads(committed.read_text()) == json.loads(
        json.dumps(generate_snapshot(SRC))
    )


def test_real_tree_contract_rule_is_clean():
    result = run_checks(SRC, rule_ids=["contract-version"])
    assert _contract(result) == []
