"""Lock-discipline v2: call-graph awareness and manual acquire shape."""

from repro.check import run_checks

SERVICE = '''\
import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.jobs = []

    def direct_bad(self):
        self._drain_locked()

    def entry(self):
        self._middle()

    def _middle(self):
        self._drain_locked()

    def safe(self):
        with self._lock:
            self._drain_locked()

    def _other_locked(self):
        self._drain_locked()

    def _drain_locked(self):
        return list(self.jobs)
'''


def _tree(tmp_path, text=SERVICE, name="service.py"):
    root = tmp_path / "tree"
    (root / "repro" / "serve").mkdir(parents=True)
    (root / "repro" / "serve" / name).write_text(text)
    return root


def _lock(result):
    return [d for d in result.diagnostics if d.rule == "lock-discipline"]


def test_direct_and_indirect_unlocked_calls_flagged(tmp_path):
    result = run_checks(_tree(tmp_path), rule_ids=["lock-discipline"])
    diags = _lock(result)
    messages = [d.message for d in diags]
    assert any("direct_bad() calls self._drain_locked()" in m for m in messages)
    assert any("_middle() calls self._drain_locked()" in m for m in messages)
    # The indirect finding names an example path through the graph.
    indirect = next(m for m in messages if "_middle()" in m)
    assert "example unlocked path: entry -> _middle" in indirect
    # Holding callers and *_locked-to-*_locked calls stay clean.
    assert not any("safe()" in m for m in messages)
    assert not any("_other_locked() calls" in m for m in messages)
    assert len(diags) == 2


def test_locked_suffix_requires_a_lock_attribute(tmp_path):
    # A class with no lock attribute is out of scope for the v2 check.
    text = SERVICE.replace("self._lock = threading.Lock()\n        ", "")
    text = text.replace("with self._lock:", "if True:")
    result = run_checks(_tree(tmp_path, text=text), rule_ids=["lock-discipline"])
    assert _lock(result) == []


def test_bare_acquire_outside_try_finally_flagged(tmp_path):
    text = '''\
import threading


class Service:
    def __init__(self):
        self._lock = threading.Lock()

    def bad(self):
        self._lock.acquire()
        return 1

    def good(self):
        self._lock.acquire()
        try:
            return 1
        finally:
            self._lock.release()
'''
    result = run_checks(_tree(tmp_path, text=text), rule_ids=["lock-discipline"])
    diags = _lock(result)
    assert len(diags) == 1
    assert "bad() calls self._lock.acquire() outside try/finally" in diags[0].message


def test_outside_graph_scope_is_ignored(tmp_path):
    root = tmp_path / "tree"
    (root / "repro" / "core").mkdir(parents=True)
    (root / "repro" / "core" / "service.py").write_text(SERVICE)
    result = run_checks(root, rule_ids=["lock-discipline"])
    assert _lock(result) == []
