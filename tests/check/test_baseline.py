"""Baseline gating: CI fails on new diagnostics only."""

import json

from repro.check.baseline import (
    filter_new,
    load_baseline,
    render_baseline,
)
from repro.check.cli import check_main
from repro.check.engine import Diagnostic
from tests.check.conftest import FIXTURES


def _diag(rule="lock-discipline", path="a.py", line=3, message="boom"):
    return Diagnostic(path=path, line=line, col=1, rule=rule, message=message)


def test_render_load_round_trip(tmp_path):
    diags = [_diag(), _diag(line=9), _diag(rule="schema-drift", message="x")]
    path = tmp_path / "baseline.json"
    path.write_text(render_baseline(diags))
    known = load_baseline(path)
    new, matched = filter_new(diags, known)
    assert new == [] and matched == 3


def test_line_insensitive_matching(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(render_baseline([_diag(line=3)]))
    known = load_baseline(path)
    # Same rule/path/message at a different line is still known.
    new, matched = filter_new([_diag(line=40)], known)
    assert new == [] and matched == 1


def test_counts_gate_extra_occurrences(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(render_baseline([_diag(line=3)]))
    known = load_baseline(path)
    new, matched = filter_new([_diag(line=3), _diag(line=9)], known)
    assert matched == 1
    assert len(new) == 1  # the second occurrence is new


def test_changed_message_is_new(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(render_baseline([_diag(message="old")]))
    new, matched = filter_new([_diag(message="new")], load_baseline(path))
    assert matched == 0 and len(new) == 1


def test_bad_baseline_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{nope")
    try:
        load_baseline(path)
    except ValueError as error:
        assert "not valid JSON" in str(error)
    else:
        raise AssertionError("expected ValueError")
    path.write_text(json.dumps({"schema": 99, "entries": []}))
    try:
        load_baseline(path)
    except ValueError as error:
        assert "schema=1" in str(error)
    else:
        raise AssertionError("expected ValueError")


def test_cli_baseline_gates_on_new_only(tmp_path, capsys):
    violations = str(FIXTURES / "violations")
    baseline = tmp_path / "baseline.json"
    # Record the current findings, then gate against them: exit 0.
    assert check_main(
        [violations, "--write-baseline", "--baseline", str(baseline),
         "--no-cache"]
    ) == 0
    capsys.readouterr()
    assert check_main(
        [violations, "--baseline", str(baseline), "--no-cache"]
    ) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "known (baseline)" in out


def test_cli_baseline_with_rule_filter(tmp_path, capsys):
    # --rule + --baseline compose: the baseline recorded from a full
    # run still matches the filtered subset's findings.
    violations = str(FIXTURES / "violations")
    baseline = tmp_path / "baseline.json"
    check_main(
        [violations, "--write-baseline", "--baseline", str(baseline),
         "--no-cache"]
    )
    capsys.readouterr()
    assert check_main(
        [violations, "--baseline", str(baseline),
         "--rule", "lock-discipline", "--no-cache"]
    ) == 0


def test_cli_baseline_json_reports_matches(tmp_path, capsys):
    violations = str(FIXTURES / "violations")
    baseline = tmp_path / "baseline.json"
    check_main(
        [violations, "--write-baseline", "--baseline", str(baseline),
         "--no-cache"]
    )
    capsys.readouterr()
    assert check_main(
        [violations, "--baseline", str(baseline), "--format", "json",
         "--no-cache"]
    ) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert document["diagnostics"] == []
    assert document["baseline_matched"] == 15


def test_cli_bad_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    assert check_main(
        [str(FIXTURES / "clean"), "--baseline", str(bad), "--no-cache"]
    ) == 2
    assert "error" in capsys.readouterr().err
