"""The repo's own source tree must pass its own analyzer.

This is the programmatic twin of the CI ``check`` job: if a change
introduces a violation (or drifts the trace schema), this test fails
locally before CI does.
"""

from pathlib import Path

from repro.check import run_checks

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_clean():
    result = run_checks(SRC)
    assert result.ok, "\n".join(d.format() for d in result.diagnostics)
    # Well over the package count; guards against scanning the wrong dir.
    assert result.files_checked > 50


def test_known_suppressions_are_counted():
    # The exact-zero sparsity test in the broadcast cache is the one
    # intentional float-eq in the tree; it must be suppressed, not
    # silently absent.
    result = run_checks(SRC)
    assert result.suppressed >= 1
