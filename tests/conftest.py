"""Test-suite configuration: hypothesis profiles."""

from hypothesis import HealthCheck, settings

# Simulation-backed property tests legitimately take longer than
# hypothesis's default deadline; disable it suite-wide and keep example
# counts modest (individual tests override where they need more).
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
