"""Benchmarks for the extension experiments and the simulator itself."""

import pytest

from repro.core import BASELINE_2VPU, SAVE_2VPU, simulate
from repro.experiments import ablations, energy
from repro.kernels.gemm import GemmKernelConfig, generate_gemm_trace
from repro.kernels.tiling import BroadcastPattern, RegisterTile


@pytest.mark.experiment("ablations")
def test_ablations(run_once):
    report = run_once(ablations.run, k_steps=16)
    report.show()
    embedded = report.data["bwd-input (embedded, NBS=60%)"]
    assert embedded["SAVE (full)"] > embedded["naive lane-skip"]
    assert embedded["SAVE (full)"] > embedded["rotation off"]


@pytest.mark.experiment("energy")
def test_energy(run_once):
    report = run_once(energy.run, k_steps=16)
    report.show()
    sparse = report.data["BS=80% NBS=80%"]
    assert sparse["SAVE 1 VPU"] < sparse["baseline"]


class TestSimulatorThroughput:
    """Microbenchmarks of the pipeline simulator itself."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate_gemm_trace(
            GemmKernelConfig(
                name="perf",
                tile=RegisterTile(4, 6, BroadcastPattern.EXPLICIT),
                k_steps=32,
                nonbroadcast_sparsity=0.5,
                seed=0,
            )
        )

    def test_baseline_simulation_rate(self, benchmark, trace):
        result = benchmark.pedantic(
            simulate,
            args=(trace, BASELINE_2VPU),
            kwargs={"keep_state": False},
            rounds=3,
            iterations=1,
        )
        assert result.fma_count == 768

    def test_save_simulation_rate(self, benchmark, trace):
        result = benchmark.pedantic(
            simulate,
            args=(trace, SAVE_2VPU),
            kwargs={"keep_state": False},
            rounds=3,
            iterations=1,
        )
        assert result.vpu_ops < result.fma_count
