"""Benchmark regenerating Fig. 15 — kernel speedup over the sparsity grid."""

import pytest

from repro.experiments import fig15
from repro.experiments.context import RunContext


@pytest.fixture(scope="module")
def report():
    return fig15.run(RunContext(k_steps=24))


@pytest.mark.experiment("fig15")
def test_fig15_regenerates(run_once):
    report = run_once(fig15.run, k_steps=24)
    report.show()
    assert report.data["2vpu"] and report.data["1vpu"]


class TestFig15Shape:
    def test_dense_two_vpus_match_baseline(self, report):
        assert report.data["2vpu"][(0.0, 0.0)] == pytest.approx(1.0, abs=0.1)

    def test_dense_one_vpu_slowdown(self, report):
        # Paper: 29% slowdown at 0% total sparsity.
        assert 0.6 <= report.data["1vpu"][(0.0, 0.0)] <= 0.8

    def test_two_vpu_cap_near_paper(self, report):
        # Paper: benefit capped at ~1.49x around 60% of either type.
        top = max(report.data["levels"])
        cap = report.data["2vpu"][(top, top)]
        assert 1.3 <= cap <= 1.75

    def test_one_vpu_reaches_higher(self, report):
        # Paper: up to 1.96x with one VPU.
        top = max(report.data["levels"])
        assert report.data["1vpu"][(top, top)] > report.data["2vpu"][(top, top)]
        assert 1.7 <= report.data["1vpu"][(top, top)] <= 2.2

    def test_one_vpu_wins_beyond_70pct(self, report):
        # Paper: when either sparsity type exceeds ~70%, 1 VPU wins.
        top = max(report.data["levels"])
        assert report.data["1vpu"][(top, 0.0)] >= report.data["2vpu"][(top, 0.0)] - 0.05

    def test_speedup_monotone_in_bs(self, report):
        levels = report.data["levels"]
        series = [report.data["2vpu"][(bs, 0.0)] for bs in levels]
        for earlier, later in zip(series, series[1:]):
            assert later >= earlier - 0.08
