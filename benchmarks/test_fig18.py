"""Benchmark regenerating Fig. 18 — lane-balancing techniques."""

import pytest

from repro.experiments import fig18
from repro.experiments.context import RunContext

PANEL_A = "a (ResNet3_2, eff. CW~1)"
PANEL_B = "b (ResNet5_1a, eff. CW~3)"


@pytest.fixture(scope="module")
def report():
    return fig18.run(RunContext(k_steps=24))


def series(report, panel, technique):
    speedups = report.data[panel][technique]
    return {nbs: value for (_bs, nbs), value in speedups.items()}


@pytest.mark.experiment("fig18")
def test_fig18_regenerates(run_once):
    report = run_once(fig18.run, k_steps=24)
    report.show()
    assert set(report.data) == {PANEL_A, PANEL_B}


class TestPanelA:
    """Effective CW ~ 1: rotation is the decisive fix."""

    def test_vc_suffers_load_imbalance(self, report):
        vc = series(report, PANEL_A, "VC")
        rvc = series(report, PANEL_A, "RVC")
        mid = sorted(vc)[-2]
        assert rvc[mid] > vc[mid]

    def test_rvc_beats_vc_lwd(self, report):
        # Paper: "VC+LWD provides less benefit than RVC because the
        # effective CW is extremely small".
        rvc = series(report, PANEL_A, "RVC")
        vc_lwd = series(report, PANEL_A, "VC+LWD")
        mid = sorted(rvc)[-2]
        assert rvc[mid] >= vc_lwd[mid] - 0.02

    def test_rvc_lwd_best_vertical_scheme(self, report):
        top = max(nbs for nbs in series(report, PANEL_A, "VC"))
        best = series(report, PANEL_A, "RVC+LWD")[top]
        for technique in ("VC", "RVC", "VC+LWD"):
            assert best >= series(report, PANEL_A, technique)[top] - 0.03


class TestPanelB:
    """Effective CW ~ 3, shorter dependence distance: LWD matters more."""

    def test_vc_lwd_beats_rvc(self, report):
        # Paper: "For this kernel, VC+LWD is more beneficial than RVC."
        vc_lwd = series(report, PANEL_B, "VC+LWD")
        rvc = series(report, PANEL_B, "RVC")
        mid = sorted(rvc)[-2]
        assert vc_lwd[mid] >= rvc[mid] - 0.02

    def test_hc_less_dominant_than_panel_a(self, report):
        # HC's latency penalty weighs more with the shorter dependence
        # distance: its margin over RVC+LWD shrinks vs panel (a).
        top = max(nbs for nbs in series(report, PANEL_B, "HC"))
        margin_b = series(report, PANEL_B, "HC")[top] - series(
            report, PANEL_B, "RVC+LWD"
        )[top]
        margin_a = series(report, PANEL_A, "HC")[top] - series(
            report, PANEL_A, "RVC+LWD"
        )[top]
        assert margin_b <= margin_a + 0.05


class TestCrossPanels:
    def test_combined_best_overall(self, report):
        # Paper's conclusion: RVC+LWD gives the best performance across
        # kernel behaviours (among the practical schemes).
        for panel in (PANEL_A, PANEL_B):
            top = max(nbs for nbs in series(report, panel, "VC"))
            combined = series(report, panel, "RVC+LWD")[top]
            for technique in ("VC", "RVC", "VC+LWD"):
                assert combined >= series(report, panel, technique)[top] - 0.03
