"""Benchmark regenerating Fig. 16 — histograms of speedup caps."""

import pytest

from repro.experiments import fig16
from repro.experiments.context import RunContext


@pytest.fixture(scope="module")
def report(store):
    return fig16.run(RunContext(store=store, k_steps=16))


@pytest.mark.experiment("fig16")
def test_fig16_regenerates(run_once, store):
    report = run_once(fig16.run, store=store, k_steps=16)
    report.show()
    assert report.data["n_kernels"] > 60  # paper studies 93


class TestFig16Shape:
    def test_all_panels_present(self, report):
        assert set(report.data["histograms"]) == {
            "FP32 2 VPUs",
            "FP32 1 VPU",
            "BF16 2 VPUs",
            "BF16 1 VPU",
        }

    def test_histogram_totals_match_kernel_count(self, report):
        n = report.data["n_kernels"]
        for counts in report.data["histograms"].values():
            assert sum(counts["conv"]) + sum(counts["lstm"]) == n

    def test_one_vpu_lifts_caps(self, report):
        # Paper: boosting frequency with one VPU lifts the caps.
        geomeans = report.data["geomeans"]
        assert geomeans["FP32 1 VPU"] > geomeans["FP32 2 VPUs"]
        assert geomeans["BF16 1 VPU"] > geomeans["BF16 2 VPUs"]

    def test_geomeans_plausible(self, report):
        # Paper: 1.39x/1.62x (FP32) and 1.48x/1.77x (MP).
        geomeans = report.data["geomeans"]
        assert 1.2 <= geomeans["FP32 2 VPUs"] <= 1.9
        assert 1.4 <= geomeans["FP32 1 VPU"] <= 2.2

    def test_lstm_kernels_cap_low(self, report):
        # LSTM kernels are memory bound: their caps concentrate in the
        # lowest buckets.
        counts = report.data["histograms"]["FP32 2 VPUs"]["lstm"]
        assert sum(counts[:3]) >= sum(counts[3:])
