"""Benchmarks regenerating Tables I, II and III."""

import pytest

from repro.experiments import table1, table2, table3


@pytest.mark.experiment("table1")
def test_table1(run_once):
    report = run_once(table1.run)
    report.show()
    assert report.data["cores"] == 28
    assert report.data["rs_entries"] == 97
    assert report.data["rob_entries"] == 224
    assert report.data["issue_width"] == 5
    assert report.data["freq_2vpu"] == 1.7
    assert report.data["freq_1vpu"] == 2.1


@pytest.mark.experiment("table2")
def test_table2(run_once):
    report = run_once(table2.run)
    report.show()
    # The paper's exact storage numbers.
    assert report.data["temp_fp32_bytes"] == 56
    assert report.data["temp_mixed_bytes"] == 168
    assert report.data["b_mask_fp32_bytes"] == 276
    assert report.data["b_mask_mixed_bytes"] == 340
    assert report.data["b_data_bytes"] == 2260


@pytest.mark.experiment("table3")
def test_table3(run_once):
    report = run_once(table3.run)
    report.show()
    data = report.data
    # Paper's check-mark pattern.
    assert data["dense VGG16"] == ("X", "", "X", "", "X", "X")
    assert data["dense ResNet-50"] == ("X", "", "", "", "X", "")
    assert data["pruned ResNet-50"] == ("X", "X", "", "X", "X", "")
    assert data["pruned GNMT"][:4] == ("X", "X", "X", "X")
