"""Benchmark regenerating Fig. 17 — broadcast-cache designs."""

import pytest

from repro.experiments import fig17
from repro.experiments.context import RunContext


@pytest.fixture(scope="module")
def report():
    return fig17.run(RunContext(k_steps=24))


@pytest.mark.experiment("fig17")
def test_fig17_regenerates(run_once):
    report = run_once(fig17.run, k_steps=24)
    report.show()
    assert set(report.data) == {"No B$", "B$ w/ masks", "B$ w/ data"}


class TestFig17Shape:
    def test_no_b_cache_no_speedup_dense_bs(self, report):
        # Paper: without a B$, no speedup at any NBS level at 0% BS —
        # the kernel stays L1-bandwidth bound.
        speedups = report.data["No B$"]
        top = max(nbs for (_bs, nbs) in speedups)
        assert speedups[(0.0, top)] <= 1.15

    def test_data_design_scales_with_nbs(self, report):
        speedups = report.data["B$ w/ data"]
        top = max(nbs for (_bs, nbs) in speedups)
        assert speedups[(0.0, top)] > speedups[(0.0, 0.0)] + 0.3

    def test_mask_design_limited_by_l1(self, report):
        # With NBS, data beats masks (masks still read non-zero data
        # from the L1).
        data = report.data["B$ w/ data"]
        mask = report.data["B$ w/ masks"]
        top = max(nbs for (_bs, nbs) in data)
        assert data[(0.0, top)] >= mask[(0.0, top)]
        assert data[(0.4, top)] >= mask[(0.4, top)]

    def test_bs_level_helps_all_designs(self, report):
        for label in ("B$ w/ masks", "B$ w/ data"):
            speedups = report.data[label]
            assert speedups[(0.4, 0.0)] >= speedups[(0.0, 0.0)] - 0.05

    def test_ordering_data_mask_none(self, report):
        top = max(nbs for (_bs, nbs) in report.data["B$ w/ data"])
        point = (0.4, top)
        assert (
            report.data["B$ w/ data"][point]
            >= report.data["B$ w/ masks"][point]
            >= report.data["No B$"][point] - 0.05
        )
