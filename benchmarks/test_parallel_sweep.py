"""Benchmark: serial vs parallel kernel sweep through the executor.

Times the same coarse-grid Fig. 15 sweep under the serial backend and a
2-worker process pool, and asserts the results are identical — the
execution layer's determinism contract.  The wall-time comparison is
informational: on a single-core CI box the pool's startup cost can
outweigh the parallelism, which is exactly why ``jobs`` defaults to
serial.
"""

import pytest

from repro.core.config import SAVE_1VPU, SAVE_2VPU
from repro.experiments.executor import SimExecutor
from repro.experiments.sweeps import sweep_kernel
from repro.kernels.library import get_kernel

MACHINES = {"2 VPUs": SAVE_2VPU, "1 VPU": SAVE_1VPU}
LEVELS = (0.0, 0.3, 0.6, 0.9)
K_STEPS = 8


def _sweep(executor=None):
    return sweep_kernel(
        get_kernel("resnet2_2_fwd"),
        MACHINES,
        bs_levels=LEVELS,
        nbs_levels=LEVELS,
        k_steps=K_STEPS,
        executor=executor,
    )


@pytest.mark.experiment("parallel_sweep")
def test_serial_sweep(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert len(results["2 VPUs"].speedups) == len(LEVELS) ** 2


@pytest.mark.experiment("parallel_sweep")
def test_parallel_sweep_matches_serial(benchmark):
    serial = _sweep()
    executor = SimExecutor(jobs=2)
    parallel = benchmark.pedantic(
        _sweep, kwargs={"executor": executor}, rounds=1, iterations=1
    )
    for label in MACHINES:
        assert parallel[label].speedups == serial[label].speedups
