"""Benchmark regenerating Fig. 19 — the mixed-precision technique."""

import pytest

from repro.experiments import fig19
from repro.experiments.context import RunContext


@pytest.fixture(scope="module")
def report():
    return fig19.run(RunContext(k_steps=24))


def series(report, label):
    return {nbs: value for (_bs, nbs), value in report.data[label].items()}


@pytest.mark.experiment("fig19")
def test_fig19_regenerates(run_once):
    report = run_once(fig19.run, k_steps=24)
    report.show()
    assert set(report.data) == {"w/o MP technique", "w/ MP technique"}


class TestFig19Shape:
    def test_technique_never_hurts(self, report):
        with_mp = series(report, "w/ MP technique")
        without = series(report, "w/o MP technique")
        for nbs in with_mp:
            assert with_mp[nbs] >= without[nbs] - 0.03

    def test_technique_substantial_mid_sparsity(self, report):
        # The square-law gap is widest at middling sparsity.
        with_mp = series(report, "w/ MP technique")
        without = series(report, "w/o MP technique")
        mids = [nbs for nbs in sorted(with_mp) if 0.2 <= nbs <= 0.7]
        assert any(with_mp[nbs] > without[nbs] * 1.1 for nbs in mids)

    def test_speedup_grows_with_sparsity(self, report):
        with_mp = series(report, "w/ MP technique")
        keys = sorted(with_mp)
        assert with_mp[keys[-1]] > with_mp[keys[0]]
