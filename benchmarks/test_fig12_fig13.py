"""Benchmarks regenerating Figs. 12 and 13 (sparsity inputs)."""

import numpy as np
import pytest

from repro.experiments import fig12, fig13


@pytest.mark.experiment("fig12")
def test_fig12(run_once):
    report = run_once(fig12.run)
    report.show()
    vgg = report.data["dense VGG16"]
    # Deep layers sparser than shallow; ReLU band 40-90%.
    assert vgg[0][3] == 0.0  # layer 1 dense
    assert vgg[-1][3] > vgg[1][3]
    assert 0.35 <= vgg[-1][3] <= 0.95
    resnet = report.data["dense ResNet-50"]
    # ResNet-50 activation sparsity sits below VGG16's.
    assert np.mean([row[3] for row in resnet[1:]]) < np.mean(
        [row[3] for row in vgg[1:]]
    )
    pruned = report.data["pruned ResNet-50"]
    assert np.mean([row[3] for row in pruned[1:]]) > np.mean(
        [row[3] for row in resnet[1:]]
    )


@pytest.mark.experiment("fig13")
def test_fig13(run_once):
    report = run_once(fig13.run)
    report.show()
    resnet = np.array(report.data["resnet50"])
    gnmt = np.array(report.data["gnmt"])
    # Monotone ramps reaching the paper's targets.
    assert (np.diff(resnet) >= -1e-12).all()
    assert resnet[32] == 0.0 and resnet[60] == pytest.approx(0.80)
    assert gnmt[-1] == pytest.approx(0.90)
