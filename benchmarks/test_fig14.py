"""Benchmark regenerating Fig. 14 — whole-network inference/training.

Shape assertions follow Sec. VII-A's claims; absolute factors are
checked against a generous band around the paper's numbers (our
substrate is a from-scratch simulator, not the authors' Sniper setup).
"""

import pytest

from repro.experiments import fig14
from repro.experiments.context import RunContext


def dynamic_speedup(report, panel, network, precision="bf16"):
    data = report.data[f"14{panel}/{network}/{precision}"]
    return data["baseline"] / data["dynamic"]


def config_speedup(report, panel, network, config, precision="bf16"):
    data = report.data[f"14{panel}/{network}/{precision}"]
    return data["baseline"] / data[config]


@pytest.fixture(scope="module")
def report(store):
    return fig14.run(RunContext(panel="all", store=store, k_steps=16, samples=5))


@pytest.mark.experiment("fig14")
def test_fig14_regenerates(run_once, store):
    report = run_once(fig14.run, panel="all", store=store, k_steps=16, samples=5)
    report.show()
    assert len(report.rows) > 0


class TestFig14aInference:
    def test_speedup_band(self, report):
        # Paper: 1.68x / 1.37x / 1.59x (MP dynamic).
        assert 1.3 <= dynamic_speedup(report, "a", "VGG16") <= 1.9
        assert 1.1 <= dynamic_speedup(report, "a", "ResNet-50") <= 1.6
        assert 1.35 <= dynamic_speedup(report, "a", "ResNet-50 pruned") <= 1.9

    def test_vgg_beats_dense_resnet(self, report):
        assert dynamic_speedup(report, "a", "VGG16") > dynamic_speedup(
            report, "a", "ResNet-50"
        )

    def test_pruned_beats_dense_resnet(self, report):
        assert dynamic_speedup(report, "a", "ResNet-50 pruned") > dynamic_speedup(
            report, "a", "ResNet-50"
        )

    def test_dynamic_best_config(self, report):
        for network in ("VGG16", "ResNet-50", "ResNet-50 pruned"):
            dyn = dynamic_speedup(report, "a", network)
            assert dyn >= config_speedup(report, "a", network, "2 VPUs") - 1e-9
            assert dyn >= config_speedup(report, "a", network, "1 VPU") - 1e-9


class TestFig14bGnmtInference:
    def test_speedup_band(self, report):
        # Paper: 1.39x (MP dynamic).
        assert 1.15 <= dynamic_speedup(report, "b", "GNMT pruned") <= 1.65

    def test_memory_bound_below_pruned_resnet(self, report):
        assert dynamic_speedup(report, "b", "GNMT pruned") <= (
            dynamic_speedup(report, "a", "ResNet-50 pruned") + 0.1
        )


class TestFig14cTraining:
    def test_speedup_band(self, report):
        # Paper: 1.64x / 1.29x / 1.42x (MP dynamic).
        assert 1.4 <= dynamic_speedup(report, "c", "VGG16") <= 2.0
        assert 1.05 <= dynamic_speedup(report, "c", "ResNet-50") <= 1.5
        assert 1.2 <= dynamic_speedup(report, "c", "ResNet-50 pruned") <= 1.7

    def test_static_between_fixed_and_dynamic(self, report):
        for network in ("VGG16", "ResNet-50 pruned"):
            data = report.data[f"14c/{network}/bf16"]
            static = data["baseline"] / data["static"]
            dynamic = data["baseline"] / data["dynamic"]
            best_fixed = max(
                data["baseline"] / data["2 VPUs"], data["baseline"] / data["1 VPU"]
            )
            assert dynamic >= static - 1e-9 >= best_fixed - 1e-6


class TestFig14dGnmtTraining:
    def test_speedup_band(self, report):
        # Paper: 1.28x (MP dynamic).
        assert 1.05 <= dynamic_speedup(report, "d", "GNMT pruned") <= 1.5

    def test_training_capped_below_inference(self, report):
        assert dynamic_speedup(report, "d", "GNMT pruned") <= dynamic_speedup(
            report, "b", "GNMT pruned"
        )
