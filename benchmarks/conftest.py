"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table/figure of the paper via its
experiment runner (coarse sparsity grid by default — run the CLI with
``--full-grid`` for the paper's 10%-step resolution), asserts the
qualitative shape the paper reports, and records the regeneration time
through pytest-benchmark.
"""

import pytest

from repro.experiments.context import RunContext
from repro.model.surface import SurfaceStore


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(name): marks a benchmark regenerating one experiment"
    )


@pytest.fixture(scope="session")
def store():
    """Session-wide surface store (repo-level disk cache)."""
    return SurfaceStore()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    Keyword arguments are :class:`RunContext` fields; the runner is
    invoked with the assembled context.
    """

    def _run(func, **options):
        ctx = RunContext(**options)
        return benchmark.pedantic(func, args=(ctx,), rounds=1, iterations=1)

    return _run
