"""Command-line entry point: ``python -m repro <experiment>``."""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro._version import __version__
from repro.experiments.registry import EXPERIMENTS, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="save-repro",
        description=(
            "Reproduction of SAVE (MICRO 2020): run an experiment to "
            "regenerate one of the paper's tables or figures."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig15, table2) or 'list' / 'all'",
    )
    parser.add_argument(
        "--full-grid",
        action="store_true",
        help="use the paper's 10%%-step sparsity grid (slow)",
    )
    parser.add_argument(
        "--k-steps",
        type=int,
        default=None,
        help="reduction steps per simulated kernel (trade accuracy/speed)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for grid-point simulations (default: the "
            "REPRO_JOBS environment variable, else serial); results are "
            "identical to a serial run"
        ),
    )
    parser.add_argument(
        "--panel",
        default="all",
        help="fig14 only: panel a/b/c/d (default: all)",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render fig15/fig18 as terminal charts",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write each report to DIR as <id>.txt and <id>.json",
    )
    parser.add_argument("--version", action="version", version=__version__)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    from repro.experiments.executor import SimExecutor

    executor = SimExecutor(jobs=args.jobs)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    reports = []
    for name in names:
        kwargs = {"full_grid": args.full_grid, "executor": executor}
        if args.k_steps is not None:
            kwargs["k_steps"] = args.k_steps
        if name == "fig14":
            kwargs["panel"] = args.panel
        start = time.time()
        try:
            report = run_experiment(name, **kwargs)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        report.show()
        if args.chart and name == "fig15":
            from repro.experiments.charts import fig15_charts

            print(fig15_charts(report.data))
        if args.chart and name == "fig18":
            from repro.experiments.charts import fig18_charts

            print(fig18_charts(report.data))
        reports.append(report)
        print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    if args.export:
        from repro.experiments.export import export_all

        manifest = export_all(reports, args.export)
        print(f"exported {len(manifest)} report(s) to {args.export}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
