"""Command-line entry point: ``python -m repro <experiment>``.

Besides the experiment runners, two observability subcommands live
here — ``python -m repro bench`` (the performance ledger, see
:mod:`repro.obs.bench`) and ``python -m repro trace-report FILE``
(offline trace analytics, see :mod:`repro.obs.analyze`) — plus the
serving layer (see :mod:`repro.serve`): ``python -m repro serve``,
``... submit``, ``... store {stats,gc}`` and ``... loadgen`` /
``... serve-report`` (load generation + request-log analytics, see
:mod:`repro.serve.loadgen` / :mod:`repro.obs.servereport`), the static analyzer
(see :mod:`repro.check`): ``python -m repro check [ROOT]``, and the
columnar sweep store (see :mod:`repro.store`): ``python -m repro sweep``
/ ``python -m repro query``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro._version import __version__
from repro.experiments.registry import EXPERIMENTS, RunContext, run_experiment

#: Experiments the ``--chart`` flag can render.
CHART_EXPERIMENTS = ("fig15", "fig18")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="save-repro",
        description=(
            "Reproduction of SAVE (MICRO 2020): run an experiment to "
            "regenerate one of the paper's tables or figures."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (e.g. fig15, table2), 'list' / 'all', or a "
            "subcommand: 'bench' (performance ledger), "
            "'trace-report FILE' (trace analytics), 'serve-report REQLOG' (serve telemetry analytics), 'serve' (simulation "
            "service), 'submit' (client round-trip), 'store' "
            "(result-store stats/gc), 'check' (static analysis), "
            "'fastsim-calibrate' (fast-tier calibration), 'loadgen' (traffic-replay load generator), 'sweep' "
            "(out-of-core sweep into the columnar store), 'query' "
            "(filter/export stored sweeps), 'compare' (SAVE vs. rival "
            "skip mechanisms)"
        ),
    )
    parser.add_argument(
        "--full-grid",
        action="store_true",
        help="use the paper's 10%%-step sparsity grid (slow)",
    )
    parser.add_argument(
        "--k-steps",
        type=int,
        default=None,
        help="reduction steps per simulated kernel (trade accuracy/speed)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for grid-point simulations (default: the "
            "REPRO_JOBS environment variable, else serial); results are "
            "identical to a serial run"
        ),
    )
    parser.add_argument(
        "--panel",
        default=None,
        help="fig14 only: panel a/b/c/d (default: all)",
    )
    parser.add_argument(
        "--engine",
        default="exact",
        choices=("exact", "fast", "analytic"),
        help=(
            "simulation tier: 'exact' is the cycle-level pipeline; "
            "'fast' is the calibrated structure-of-arrays estimator "
            "(~10-100x faster per point); 'analytic' is the closed-form "
            "model (fastest, loosest)"
        ),
    )
    parser.add_argument(
        "--mechanism",
        default="save",
        choices=("save", "sparce", "indexmac"),
        help=(
            "skip mechanism for machine-point simulations (default: "
            "save); rivals require --engine exact, and 'indexmac' "
            "requires an N:M structured kernel"
        ),
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render fig15/fig18 as terminal charts",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect pipeline metrics and print the aggregate after each run",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help=(
            "write a JSONL event trace of every simulated cycle to FILE "
            "(forces serial simulation)"
        ),
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="write each report to DIR as <id>.txt, <id>.json and <id>.csv",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "record host wall-clock spans (build/simulate/merge/report) "
            "and print the phase table after the run"
        ),
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help=(
            "write the run's span profile (plus the --trace events, when "
            "collected) as Chrome trace-event JSON viewable in Perfetto"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    return parser


def _warn(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:] if argv is None else argv)
    # Subcommands take their own options, so they dispatch before the
    # experiment parser sees (and rejects) those flags.
    if raw and raw[0] == "bench":
        from repro.obs.bench import bench_main

        return bench_main(raw[1:])
    if raw and raw[0] == "trace-report":
        from repro.obs.analyze import trace_report_main

        return trace_report_main(raw[1:])
    if raw and raw[0] == "serve-report":
        from repro.obs.servereport import serve_report_main

        return serve_report_main(raw[1:])
    if raw and raw[0] == "loadgen":
        from repro.serve.loadgen import loadgen_main

        return loadgen_main(raw[1:])
    if raw and raw[0] == "serve":
        from repro.serve.cli import serve_main

        return serve_main(raw[1:])
    if raw and raw[0] == "submit":
        from repro.serve.cli import submit_main

        return submit_main(raw[1:])
    if raw and raw[0] == "store":
        from repro.serve.cli import store_main

        return store_main(raw[1:])
    if raw and raw[0] == "check":
        from repro.check.cli import check_main

        return check_main(raw[1:])
    if raw and raw[0] == "fastsim-calibrate":
        from repro.fastsim.cli import calibrate_main

        return calibrate_main(raw[1:])
    if raw and raw[0] == "sweep":
        from repro.store.cli import sweep_main

        return sweep_main(raw[1:])
    if raw and raw[0] == "query":
        from repro.store.cli import query_main

        return query_main(raw[1:])
    if raw and raw[0] == "compare":
        from repro.rivals.cli import compare_main

        return compare_main(raw[1:])

    args = build_parser().parse_args(raw)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        available = ", ".join(sorted(EXPERIMENTS))
        print(
            f"unknown experiment {args.experiment!r}; available: {available}",
            file=sys.stderr,
        )
        return 2

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.panel is not None and "fig14" not in names:
        _warn(f"--panel only applies to fig14; ignored for {', '.join(names)}")
    if args.chart and not any(name in CHART_EXPERIMENTS for name in names):
        _warn(
            f"--chart only applies to {'/'.join(CHART_EXPERIMENTS)}; "
            f"ignored for {', '.join(names)}"
        )

    from repro.experiments.executor import SimExecutor
    from repro.obs import MetricsRegistry, SpanRecorder, maybe_span

    registry = MetricsRegistry() if args.metrics else None
    spans = SpanRecorder() if (args.profile or args.chrome_trace) else None
    if args.trace and registry is None:
        registry = MetricsRegistry()

    reports = []
    failures: list[str] = []
    sink = None
    try:
        # The sink opens inside the try so *every* exit path — including
        # a failure while building the executor or an experiment raising
        # under a non-'all' run — flushes and closes the trace file
        # rather than leaving a truncated last line behind.
        if args.trace:
            from repro.obs import JsonlTraceSink

            sink = JsonlTraceSink(args.trace)
        executor = SimExecutor(
            jobs=args.jobs, metrics=registry, trace_sink=sink, spans=spans
        )
        ctx = RunContext(
            full_grid=args.full_grid,
            k_steps=args.k_steps,
            executor=executor,
            panel=args.panel if args.panel is not None else "all",
            metrics=registry,
            spans=spans,
            engine=args.engine,
            mechanism=args.mechanism,
        )

        for name in names:
            start = time.time()
            try:
                report = run_experiment(name, ctx)
            except Exception as error:  # noqa: BLE001 - 'all' must keep going
                if args.experiment != "all":
                    raise
                failures.append(name)
                print(f"[{name} FAILED: {error}]\n", file=sys.stderr)
                continue
            with maybe_span(spans, "report", experiment=name):
                report.show()
                if args.chart and name == "fig15":
                    from repro.experiments.charts import fig15_charts

                    print(fig15_charts(report.data))
                if args.chart and name == "fig18":
                    from repro.experiments.charts import fig18_charts

                    print(fig18_charts(report.data))
            reports.append(report)
            print(f"[{name} completed in {time.time() - start:.1f}s]\n")
    finally:
        if sink is not None:
            sink.close()
            print(f"trace: {sink.events_written} events -> {args.trace}")
    if registry is not None:
        from repro.obs import format_metrics

        print(format_metrics(registry.snapshot()))
    if spans is not None and args.profile:
        from repro.obs import phase_table

        print(phase_table(spans))
    if args.chrome_trace:
        from repro.obs.chrometrace import write_chrome_trace

        events = None
        if args.trace:
            from repro.obs import read_jsonl

            events = list(read_jsonl(args.trace))
        write_chrome_trace(
            args.chrome_trace,
            spans=spans.records if spans is not None else None,
            events=events,
        )
        print(f"chrome trace -> {args.chrome_trace}")
    if args.export:
        from repro.experiments.export import export_all

        manifest = export_all(
            reports,
            args.export,
            metrics=registry.snapshot() if registry is not None else None,
        )
        print(f"exported {len(manifest)} report(s) to {args.export}")
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
