"""Process-boundary escape: what crosses the worker pool must pickle.

:class:`repro.experiments.executor.SimExecutor` ships work to
``ProcessPoolExecutor`` workers; everything submitted is pickled in
the parent and unpickled in the child.  Two failure modes are easy to
introduce and miserable to debug:

* **unpicklable callables** — a lambda or a closure handed to
  ``pool.submit``/``pool.map`` raises ``PicklingError`` only at
  runtime, and only on the multi-process path that CI's quick tier
  may not exercise;
* **mutable payloads** — a payload object with settable attributes
  invites the classic fork bug: a worker (or the parent, between
  submit and result) mutates state the other side never sees.  The
  repo's convention is that pool payloads are frozen dataclasses all
  the way down.

The executor module declares its payload contract in a module-level
``POOL_PAYLOAD_TYPES`` tuple of class names.  This rule checks, over
the program index:

* the tuple exists next to ``SimExecutor`` (a missing registry is
  itself a diagnostic — the contract must be declared, not implied);
* every listed class — and, transitively, every index-resolvable
  class named in its field annotations — is a frozen dataclass,
  unless listed in ``POOL_PAYLOAD_PICKLABLE`` (the documented escape
  hatch for types that pickle safely without being dataclasses);
* no ``submit``/``map`` call site in the executor module passes a
  lambda or a locally-defined (closure) function.

Scope note: only the executor's own module is scanned for submit
sites; ``.map``/``.submit`` on arbitrary receivers elsewhere in the
tree are far more often ``Executor.map`` lookalikes than pool calls.
"""

from __future__ import annotations

import re
from typing import Optional
from collections.abc import Iterable

from repro.check.engine import Diagnostic, FactRule, ProgramContext
from repro.check.program import ClassInfo, ProgramFacts

__all__ = ["ProcessBoundaryRule"]

#: Module-level registry names the executor must / may declare.
_REGISTRY = "POOL_PAYLOAD_TYPES"
_PICKLABLE_OK = "POOL_PAYLOAD_PICKLABLE"

#: Identifier tokens inside field annotations that name candidate
#: classes (``Optional[MachineConfig]`` → ``Optional``, ``MachineConfig``).
_ANNOTATION_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: Pool submit methods whose callable argument must pickle.
_SUBMIT_ATTRS = (".submit", ".map")


class ProcessBoundaryRule(FactRule):
    id = "process-boundary"
    description = (
        "objects crossing the SimExecutor process-pool boundary must be "
        "frozen dataclasses (or documented-picklable), and submitted "
        "callables must not be lambdas/closures"
    )

    def check_facts(self, ctx: ProgramContext) -> Iterable[Diagnostic]:
        executor = self._executor_file(ctx)
        if executor is None:
            return  # no SimExecutor in this tree (fixture subset)
        facts, executor_cls = executor

        yield from self._check_submit_sites(facts)

        registry = facts.assign(_REGISTRY)
        if registry is None:
            yield self.diag_at(
                facts.rel,
                executor_cls.loc,
                f"executor module declares no {_REGISTRY}; list every "
                "type that crosses the pool boundary so the "
                "process-boundary rule can hold them frozen",
            )
            return
        if not registry.is_literal or not isinstance(registry.literal, tuple):
            yield self.diag_at(
                facts.rel,
                registry.loc,
                f"{_REGISTRY} must be a literal tuple of class names",
            )
            return

        allow = self._picklable_allow(facts)
        seen: set[str] = set()
        queue = [
            (name, f"{_REGISTRY} entry")
            for name in registry.literal
            if isinstance(name, str)
        ]
        while queue:
            name, how = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            if name in allow:
                continue
            found = ctx.index.find_class(name)
            if not found:
                if how.startswith(_REGISTRY):
                    yield self.diag_at(
                        facts.rel,
                        registry.loc,
                        f"{_REGISTRY} names {name!r} but no class of that "
                        "name exists in the tree",
                    )
                continue  # annotation token that isn't a project class
            cls_facts, cls = found[0]
            if any(base.split(".")[-1].endswith("Enum") for base in cls.bases):
                continue  # enum members pickle by name; immutable enough
            if not cls.is_frozen_dataclass():
                yield self.diag_at(
                    cls_facts.rel,
                    cls.loc,
                    f"{cls.name} crosses the SimExecutor process-pool "
                    f"boundary ({how}) but is not a frozen dataclass; "
                    "freeze it or add it to "
                    f"{_PICKLABLE_OK} with a justification",
                )
                continue
            for field_info in cls.fields:
                for token in _ANNOTATION_TOKEN_RE.findall(
                    field_info.annotation
                ):
                    if token not in seen and ctx.index.find_class(token):
                        queue.append(
                            (token, f"field {cls.name}.{field_info.name}")
                        )

    def _executor_file(
        self, ctx: ProgramContext
    ) -> Optional[tuple[ProgramFacts, ClassInfo]]:
        for facts, cls in ctx.index.find_class("SimExecutor"):
            return facts, cls
        return None

    def _picklable_allow(self, facts: ProgramFacts) -> frozenset[str]:
        info = facts.assign(_PICKLABLE_OK)
        if info is not None and info.is_literal and isinstance(
            info.literal, tuple
        ):
            return frozenset(n for n in info.literal if isinstance(n, str))
        return frozenset()

    def _check_submit_sites(self, facts: ProgramFacts) -> Iterable[Diagnostic]:
        for fn in facts.functions:
            for call in fn.calls:
                if not any(call.callee.endswith(s) for s in _SUBMIT_ATTRS):
                    continue
                for index, shape in enumerate(call.arg_shapes):
                    if shape == "lambda":
                        yield self.diag_at(
                            facts.rel,
                            call.loc,
                            f"{fn.qualname}() passes a lambda to "
                            f"{call.callee}(); lambdas do not pickle "
                            "across the process-pool boundary — use a "
                            "module-level function",
                        )
                    elif shape.startswith("name:"):
                        name = shape[len("name:"):]
                        if index == 0 and name in fn.nested_defs:
                            yield self.diag_at(
                                facts.rel,
                                call.loc,
                                f"{fn.qualname}() passes locally-defined "
                                f"{name}() to {call.callee}(); closures do "
                                "not pickle across the process-pool "
                                "boundary — hoist it to module level",
                            )
