"""Incremental on-disk cache for ``repro check``.

Two levels, both keyed by *content*, never by mtime:

* **Per-file entries** — for each analysed file, keyed by the sha256 of
  its bytes: the parsed suppression markers, the extracted fact records
  (program facts plus one namespace per fact rule) and the per-file
  rule diagnostics.  A warm re-run re-parses only files whose content
  hash changed; unchanged files are served from their entry without
  ever touching :func:`ast.parse`.
* **A full-run memo** — keyed by the hash of the complete
  ``(path, content-hash)`` vector plus the rule selection and any
  external contract inputs: the finished :class:`CheckResult`.  When
  literally nothing changed, the run is a hash-and-return.

Every key additionally folds in :func:`checker_fingerprint` — a hash
over the ``repro.check`` package's own source files — so editing any
rule invalidates the whole cache automatically.  There is no version
constant to forget to bump.

Corrupt or unreadable entries are treated as misses, never as errors:
the cache is an accelerator, and deleting the directory is always
safe.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "AnalysisCache",
    "FileEntry",
    "checker_fingerprint",
    "content_hash",
]

#: On-disk layout version; bump only when the entry format changes in a
#: way the self-hash cannot see (it cannot happen while the format is
#: defined in this very package, but belt and braces).
CACHE_LAYOUT = 1

_checker_fp: Optional[str] = None


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def checker_fingerprint() -> str:
    """Hash of the ``repro.check`` package's own source files.

    Part of every cache key: a cache written by one version of the
    analyzer is invisible to any other version.
    """
    global _checker_fp
    if _checker_fp is None:
        package_dir = Path(__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _checker_fp = digest.hexdigest()[:24]
    return _checker_fp


@dataclass
class FileEntry:
    """Cached analysis products of one file at one content hash."""

    rel: str
    hash: str
    #: Parsed suppression markers (picklable ``Suppressions``).
    suppressions: Any = None
    #: Fact namespace -> extracted facts ("__program__" plus rule ids).
    facts: dict[str, Any] = field(default_factory=dict)
    #: Per-file rule id -> pre-suppression diagnostics.
    diagnostics: dict[str, list] = field(default_factory=dict)


class AnalysisCache:
    """Content-addressed store under one directory.

    Layout::

        <dir>/files/<hash-prefix>/<content-hash>.pkl   per-file entries
        <dir>/runs/<run-key>.pkl                       full-run memos

    Writes are atomic (temp file + ``os.replace``) so a crashed run
    never leaves a truncated pickle for the next run to choke on.
    """

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    # -- keys -------------------------------------------------------------

    def _file_path(self, digest: str) -> Path:
        return self.directory / "files" / digest[:2] / f"{digest}.pkl"

    def _run_path(self, run_key: str) -> Path:
        return self.directory / "runs" / f"{run_key}.pkl"

    def file_key(self, data: bytes) -> str:
        return content_hash(
            data + f"|{CACHE_LAYOUT}|{checker_fingerprint()}".encode()
        )

    def run_key(
        self,
        file_hashes: list[tuple[str, str]],
        rule_ids: Optional[tuple[str, ...]],
        extra: str = "",
    ) -> str:
        digest = hashlib.sha256()
        digest.update(f"{CACHE_LAYOUT}|{checker_fingerprint()}".encode())
        digest.update(repr(sorted(file_hashes)).encode())
        digest.update(repr(rule_ids).encode())
        digest.update(extra.encode())
        return digest.hexdigest()[:32]

    # -- IO ---------------------------------------------------------------

    def _load(self, path: Path) -> Optional[Any]:
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            return None

    def _store(self, path: Path, payload: Any) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                with open(tmp, "ab"):
                    pass
                os.unlink(tmp)
                raise
        except OSError:
            # A read-only or full cache directory degrades to no
            # caching; it must never fail the check run itself.
            return

    # -- per-file entries -------------------------------------------------

    def load_file(self, key: str) -> Optional[FileEntry]:
        entry = self._load(self._file_path(key))
        if isinstance(entry, FileEntry) and entry.hash == key:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store_file(self, entry: FileEntry) -> None:
        self._store(self._file_path(entry.hash), entry)

    # -- full-run memo ----------------------------------------------------

    def load_run(self, run_key: str) -> Optional[Any]:
        return self._load(self._run_path(run_key))

    def store_run(self, run_key: str, result: Any) -> None:
        self._store(self._run_path(run_key), result)
