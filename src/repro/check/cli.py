"""The ``repro check`` command.

Exit codes follow the lint-tool convention::

    0  clean (no error-severity diagnostics)
    1  diagnostics found (or unparseable files)
    2  usage error (bad root, unknown --rule id)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional

from repro.check import ALL_RULES, UnknownRuleError, run_checks

__all__ = ["check_main"]

#: Default scan root, relative to the invoking directory.
DEFAULT_ROOT = "src"


def _list_rules() -> str:
    lines = ["rule catalogue:"]
    for rule in ALL_RULES:
        scope = "project-wide" if rule.project_wide else (
            ", ".join(rule.include) if rule.include else "all files"
        )
        lines.append(f"  {rule.id:<20} [{scope}]")
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def check_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro check [ROOT]``."""
    parser = argparse.ArgumentParser(
        prog="save-repro check",
        description=(
            "Project-invariant static analysis: determinism, trace-schema "
            "drift and lock discipline over the source tree.  Suppress an "
            "intentional finding with `# repro: no-check[rule-id]` (see "
            "docs/architecture.md)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=DEFAULT_ROOT,
        help=f"directory or file to analyse (default: {DEFAULT_ROOT}/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        default=None,
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root)
    if not root.exists():
        print(f"error: no such path: {root}", file=sys.stderr)
        return 2
    try:
        result = run_checks(root, rule_ids=args.rule)
    except UnknownRuleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        document = {
            "root": str(root),
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "ok": result.ok,
            "diagnostics": [
                {
                    "path": d.path,
                    "line": d.line,
                    "col": d.col,
                    "rule": d.rule,
                    "severity": d.severity,
                    "message": d.message,
                }
                for d in result.diagnostics
            ],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        for diagnostic in result.diagnostics:
            print(diagnostic.format())
        summary = (
            f"checked {result.files_checked} files: "
            f"{len(result.errors)} error(s), "
            f"{result.suppressed} suppressed"
        )
        print(summary if result.diagnostics else f"OK — {summary}")
    return 0 if result.ok else 1
