"""The ``repro check`` command.

Exit codes follow the lint-tool convention::

    0  clean (no error-severity diagnostics; with --baseline: no NEW ones)
    1  diagnostics found (or unparseable files)
    2  usage error (bad root, unknown --rule id, bad baseline file)

Output formats:

* ``text`` (default) — one ``path:line:col: [rule] message`` per line
  plus a summary.
* ``json`` — a machine-readable document; byte-stable (sorted keys,
  trailing newline) so goldens can compare exact bytes.
* ``sarif`` — SARIF 2.1.0 for CI inline annotations; also byte-stable.

Maintenance modes (mutually exclusive with gating):

* ``--write-contracts`` regenerates the committed contract snapshot
  after a deliberate schema change (bump the version first).
* ``--write-baseline`` rewrites the baseline file with the current
  findings so CI gates on regressions only.
* ``--prune-suppressions`` lists stale ``# repro: no-check`` markers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import hashlib
from pathlib import Path
from typing import Optional

from repro.check import ALL_RULES, UnknownRuleError, run_checks
from repro.check.baseline import filter_new, load_baseline, render_baseline
from repro.check.contracts import write_snapshot
from repro.check.sarif import render_sarif

__all__ = ["check_main", "default_cache_dir"]

#: Default scan root, relative to the invoking directory.
DEFAULT_ROOT = "src"

#: Environment override for the incremental-cache location.
CACHE_ENV = "REPRO_CHECK_CACHE"


def default_cache_dir(root: Path) -> Path:
    """Per-root cache directory outside the tree being analysed.

    Keyed by the resolved root path so two checkouts don't share (or
    clobber) entries; content-hash keys inside the cache make stale
    reuse impossible even if they did.
    """
    env = os.environ.get(CACHE_ENV)
    base = Path(env) if env else Path.home() / ".cache" / "repro-check"
    tag = hashlib.sha256(str(root.resolve()).encode()).hexdigest()[:16]
    return base / tag


def _list_rules() -> str:
    lines = ["rule catalogue:"]
    for rule in ALL_RULES:
        scope = "project-wide" if rule.project_wide else (
            ", ".join(rule.include) if rule.include else "all files"
        )
        lines.append(f"  {rule.id:<20} [{scope}]")
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def check_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro check [ROOT]``."""
    parser = argparse.ArgumentParser(
        prog="save-repro check",
        description=(
            "Whole-program invariant analysis: determinism, trace-schema "
            "drift, lock discipline, identity-axis completeness, contract "
            "versioning and process-boundary safety over the source tree.  "
            "Suppress an intentional finding with "
            "`# repro: no-check[rule-id]` (see docs/architecture.md)."
        ),
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=DEFAULT_ROOT,
        help=f"directory or file to analyse (default: {DEFAULT_ROOT}/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        default=None,
        help="run only this rule id (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="tolerate diagnostics recorded in this baseline file; "
        "gate (exit 1) only on new ones",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file (--baseline PATH, default "
        "check-baseline.json) with the current findings and exit 0",
    )
    parser.add_argument(
        "--write-contracts",
        action="store_true",
        help="regenerate the committed contracts.json snapshot under "
        "ROOT and exit 0",
    )
    parser.add_argument(
        "--prune-suppressions",
        action="store_true",
        help="list stale `# repro: no-check` markers (one per line) "
        "instead of diagnostics",
    )
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="incremental-cache directory (default: "
        f"$~/.cache/repro-check/<root-hash>, override base with ${CACHE_ENV})",
    )
    cache.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print parse/cache statistics to stderr",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    root = Path(args.root)
    if not root.exists():
        print(f"error: no such path: {root}", file=sys.stderr)
        return 2

    if args.write_contracts:
        try:
            path = write_snapshot(root)
        except FileNotFoundError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"wrote contract snapshot: {path}")
        return 0

    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = default_cache_dir(root)

    try:
        result = run_checks(root, rule_ids=args.rule, cache_dir=cache_dir)
    except UnknownRuleError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.stats:
        print(
            f"stats: files={result.files_checked} "
            f"parsed={result.parsed_files} cached={result.cached_files} "
            f"memo={'hit' if result.from_memo else 'miss'} "
            f"wall={result.wall_s:.3f}s",
            file=sys.stderr,
        )

    if args.prune_suppressions:
        for rel, line, text in result.unused_markers:
            print(f"{rel}:{line}: {text}")
        if not result.unused_markers:
            print("no stale suppressions")
        return 0

    if args.write_baseline:
        path = Path(args.baseline) if args.baseline else Path(
            "check-baseline.json"
        )
        path.write_text(render_baseline(result.diagnostics), encoding="utf-8")
        print(f"wrote baseline: {path} ({len(result.diagnostics)} entries)")
        return 0

    diagnostics = result.diagnostics
    baseline_matched = 0
    if args.baseline is not None:
        try:
            known = load_baseline(Path(args.baseline))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        diagnostics, baseline_matched = filter_new(diagnostics, known)

    gate_errors = [d for d in diagnostics if d.severity == "error"]
    gate_ok = not gate_errors

    if args.format == "json":
        document = {
            "root": str(root),
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "ok": gate_ok,
            "diagnostics": [
                {
                    "path": d.path,
                    "line": d.line,
                    "col": d.col,
                    "rule": d.rule,
                    "severity": d.severity,
                    "message": d.message,
                }
                for d in diagnostics
            ],
        }
        if args.baseline is not None:
            document["baseline_matched"] = baseline_matched
        print(json.dumps(document, indent=2, sort_keys=True))
    elif args.format == "sarif":
        sys.stdout.write(
            render_sarif(result.with_diagnostics(diagnostics), ALL_RULES)
        )
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        summary = (
            f"checked {result.files_checked} files: "
            f"{len(gate_errors)} error(s), "
            f"{result.suppressed} suppressed"
        )
        if baseline_matched:
            summary += f", {baseline_matched} known (baseline)"
        print(summary if diagnostics else f"OK — {summary}")
    return 0 if gate_ok else 1
