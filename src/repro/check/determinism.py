"""Determinism rules: keep the simulator bit-for-bit reproducible.

The parallel executor's contract (parallel == serial, restart == first
run) only holds if simulation code never reads ambient state.  These
rules ban the ways ambient state usually leaks in:

* ``no-wallclock`` — ``time.time()``/``perf_counter()``/``monotonic()``
  and datetime "now" reads.  Wall-clock belongs in the host-side
  profiling layers (:mod:`repro.obs.spans`, :mod:`repro.obs.bench`,
  :mod:`repro.obs.telemetry`), never in cycle accounting.
* ``no-unseeded-random`` — RNG constructors without an explicit seed
  and the module-level ``random.*``/``numpy.random.*`` convenience
  functions (which draw from hidden global state).
* ``no-unstable-order`` — ``id()`` (allocation-order dependent) and
  direct iteration over set displays/calls (hash-order dependent).
* ``no-float-eq`` — ``==``/``!=`` against float literals or ``float()``
  results in cycle-accounting code; exact comparisons flip with
  compiler/fma differences.  The one legitimate case — the exact-zero
  operand test at the heart of SAVE's sparsity detection — carries a
  suppression comment where it happens.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.check.engine import (
    CheckedFile,
    Diagnostic,
    Rule,
    dotted_call_name,
    import_map,
)

__all__ = [
    "DETERMINISM_RULES",
    "NoFloatEqRule",
    "NoUnseededRandomRule",
    "NoUnstableOrderRule",
    "NoWallClockRule",
]

#: Simulation code: everything that feeds cycle counts or results.
SIM_SCOPE: tuple[str, ...] = (
    "repro/core/",
    "repro/memory/",
    "repro/model/",
    "repro/kernels/",
    "repro/sparsity/",
    "repro/isa/",
    "repro/experiments/",
    "repro/fastsim/",
)

#: Cycle-accounting code proper (the ISSUE's float-eq scope).
CYCLE_SCOPE: tuple[str, ...] = (
    "repro/core/",
    "repro/memory/",
    "repro/model/",
)

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: RNG constructors that are deterministic *when given a seed*.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
    }
)

#: ``numpy.random`` attributes that are types/protocols, not draws.
_NUMPY_RANDOM_NON_DRAWS = frozenset(
    {"Generator", "RandomState", "SeedSequence", "BitGenerator", "default_rng"}
)


class NoWallClockRule(Rule):
    id = "no-wallclock"
    description = (
        "wall-clock reads in simulation/observability code (allowed only "
        "in repro.obs.spans, repro.obs.bench and repro.obs.telemetry)"
    )
    include = SIM_SCOPE + ("repro/obs/",)
    exclude = (
        "repro/obs/spans.py",
        "repro/obs/bench.py",
        # The serve-path telemetry layer *is* the wall-clock layer:
        # request latency, ring timestamps, worker-side spans.
        "repro/obs/telemetry.py",
    )

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        names = import_map(checked.tree)
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func, names)
            if dotted in _WALL_CLOCK_CALLS:
                yield self.diagnostic(
                    checked,
                    node,
                    f"wall-clock read {dotted}() in deterministic code; "
                    "cycle accounting must not depend on host time",
                )


class NoUnseededRandomRule(Rule):
    id = "no-unseeded-random"
    description = (
        "RNG use without an explicit seed (global random state or "
        "seedless constructors)"
    )
    include = SIM_SCOPE

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        names = import_map(checked.tree)
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func, names)
            if dotted is None:
                continue
            if dotted in _SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.diagnostic(
                        checked,
                        node,
                        f"{dotted}() without a seed draws entropy from the "
                        "OS; pass an explicit seed",
                    )
                continue
            head, _, tail = dotted.rpartition(".")
            if head == "random" or (
                head == "numpy.random" and tail not in _NUMPY_RANDOM_NON_DRAWS
            ):
                yield self.diagnostic(
                    checked,
                    node,
                    f"{dotted}() uses hidden global RNG state; use a "
                    "seeded Generator instead",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class NoUnstableOrderRule(Rule):
    id = "no-unstable-order"
    description = (
        "allocation/hash-order dependent logic: id() keys and direct "
        "set iteration"
    )
    include = SIM_SCOPE

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        for node in ast.walk(checked.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield self.diagnostic(
                    checked,
                    node,
                    "id() values depend on allocation order; key on a "
                    "stable identifier (seq number, name) instead",
                )
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield self.diagnostic(
                        checked,
                        it,
                        "iterating a set directly has hash-dependent "
                        "order; iterate sorted(...) or a list",
                    )


def _is_float_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    )


class NoFloatEqRule(Rule):
    id = "no-float-eq"
    description = (
        "float ==/!= in cycle-accounting code (use tolerance comparisons, "
        "or suppress the intentional exact-zero sparsity test)"
    )
    include = CYCLE_SCOPE

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(left) or _is_float_expr(right):
                    yield self.diagnostic(
                        checked,
                        node,
                        "exact float equality in cycle-accounting code; "
                        "results flip with fma/rounding differences",
                    )
                    break


#: Catalogue order: as documented in docs/architecture.md.
DETERMINISM_RULES: tuple[Rule, ...] = (
    NoWallClockRule(),
    NoUnseededRandomRule(),
    NoUnstableOrderRule(),
    NoFloatEqRule(),
)
