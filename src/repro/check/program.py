"""Whole-program facts: the symbol table and call graph of one tree.

``repro check`` v2 runs its cross-module rule families (identity
completeness, contract-version coupling, call-graph lock discipline,
process-boundary escape) over a **program index** instead of raw ASTs.
Each file is distilled once into a :class:`ProgramFacts` record — the
module-level assignments (with literal values and an AST content
hash), the class definitions (decorators, bases, annotated fields),
and every function with its outgoing call sites — and the records are
assembled into a :class:`ProgramIndex`.

Two properties make this the engine's unit of caching
(:mod:`repro.check.cache`):

* facts are plain frozen dataclasses of strings and ints — they pickle
  in microseconds, where re-parsing and re-walking an AST costs
  milliseconds per file;
* facts are a pure function of one file's bytes, so a content-hash
  cache entry can never go stale while its file is unchanged.

The call graph is deliberately honest about Python: edges carry the
*textual* callee (``self._drain_batch_locked``, ``repro.fsio.FileLock``
after import resolution, or a bare local name) and resolution happens
at query time against the index.  Dynamic dispatch that cannot be
resolved statically stays unresolved rather than guessed.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Optional
from collections.abc import Iterable, Sequence

from repro.check.engine_types import Loc

__all__ = [
    "AssignInfo",
    "CallSite",
    "ClassInfo",
    "FieldInfo",
    "FunctionInfo",
    "ProgramFacts",
    "ProgramIndex",
    "extract_program_facts",
    "literal_value",
]

#: Bump when the extraction below changes shape or semantics; part of
#: every cache key, so stale facts can never leak across versions.
PROGRAM_FACTS_VERSION = 1


# ---------------------------------------------------------------------------
# Fact records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AssignInfo:
    """One module-level (ann-)assignment."""

    name: str
    loc: Loc
    #: Extracted literal (str/int/float/bool/None and tuples/lists/sets/
    #: dicts of those, containers normalised to tuples / sorted tuples /
    #: key-sorted tuples of pairs).  ``None`` when not a pure literal.
    literal: object
    #: Whether ``literal`` is meaningful (a literal ``None`` is legal).
    is_literal: bool
    #: sha256 over ``ast.dump`` of the value expression — a content
    #: address of the *declaration text*, defined even for computed
    #: values like ``tuple(f.name for f in fields(RunContext))``.
    dump_sha: str


@dataclass(frozen=True)
class FieldInfo:
    """One annotated class-body field (dataclass field, typically)."""

    name: str
    annotation: str  # source text of the annotation, "" when absent
    loc: Loc


@dataclass(frozen=True)
class ClassInfo:
    name: str
    loc: Loc
    decorators: tuple[str, ...]  # e.g. ("dataclass(frozen=True)",)
    bases: tuple[str, ...]
    fields: tuple[FieldInfo, ...]
    methods: tuple[str, ...]

    def is_frozen_dataclass(self) -> bool:
        return any(
            dec == "dataclass(frozen=True)"
            or (dec.startswith("dataclass(") and "frozen=True" in dec)
            for dec in self.decorators
        )

    def is_dataclass(self) -> bool:
        return any(
            dec == "dataclass" or dec.startswith("dataclass(")
            for dec in self.decorators
        )

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)


@dataclass(frozen=True)
class CallSite:
    """One outgoing call from a function body.

    ``callee`` is the dotted textual target after import resolution
    (``self._helper``, ``threading.Lock``, ``repro.fsio.FileLock``, a
    bare name).  ``held`` lists the ``self.<attr>`` context managers —
    attribute *and* ``self.<attr>()`` factory forms — lexically active
    at the call site, which is what lock-discipline reasons over.
    ``first_str_arg`` is the first positional argument when it is a
    string literal (``payload.pop("points")``).
    """

    callee: str
    loc: Loc
    held: tuple[str, ...] = ()
    first_str_arg: Optional[str] = None
    #: Shapes of the positional arguments: "lambda", "name:<id>" or "".
    arg_shapes: tuple[str, ...] = ()
    #: Whether the call sits inside a ``try`` that has a ``finally``
    #: block (the other accepted shape for manual lock acquisition).
    in_try_finally: bool = False


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method, with its outgoing call sites."""

    name: str
    cls: Optional[str]  # owning class name, None for module level
    loc: Loc
    decorators: tuple[str, ...]
    calls: tuple[CallSite, ...]
    #: Names of functions defined *inside* this function (closures —
    #: relevant to the process-boundary rule: they do not pickle).
    nested_defs: tuple[str, ...] = ()
    #: String keys of the dict literal this function returns, when its
    #: return statement is (or resolves to) a dict display.
    returned_dict_keys: Optional[tuple[str, ...]] = None

    @property
    def qualname(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass(frozen=True)
class ProgramFacts:
    """Everything the cross-module rules need from one file."""

    rel: str
    mod: str
    imports: tuple[tuple[str, str], ...]  # (local name, dotted path)
    assigns: tuple[AssignInfo, ...]
    classes: tuple[ClassInfo, ...]
    functions: tuple[FunctionInfo, ...]

    def import_map(self) -> dict[str, str]:
        return dict(self.imports)

    def assign(self, name: str) -> Optional[AssignInfo]:
        for info in self.assigns:
            if info.name == name:
                return info
        return None

    def cls(self, name: str) -> Optional[ClassInfo]:
        for info in self.classes:
            if info.name == name:
                return info
        return None

    def function(
        self, name: str, cls: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        for info in self.functions:
            if info.name == name and info.cls == cls:
                return info
        return None


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def literal_value(node: ast.expr) -> tuple[object, bool]:
    """``(value, ok)`` for a pure-literal expression.

    Containers come back hashable and order-stable: tuples/lists as
    tuples, sets as sorted tuples, dicts as key-sorted tuples of
    ``(key, value)`` pairs.  ``ok`` is False for anything computed.
    """
    if isinstance(node, ast.Constant):
        return node.value, True
    if isinstance(node, (ast.Tuple, ast.List)):
        items = []
        for elt in node.elts:
            value, ok = literal_value(elt)
            if not ok:
                return None, False
            items.append(value)
        return tuple(items), True
    if isinstance(node, ast.Set):
        items = []
        for elt in node.elts:
            value, ok = literal_value(elt)
            if not ok:
                return None, False
            items.append(value)
        try:
            return tuple(sorted(items, key=repr)), True
        except TypeError:  # pragma: no cover - unsortable literals
            return None, False
    if isinstance(node, ast.Dict):
        pairs = []
        for key, val in zip(node.keys, node.values):
            if key is None:
                return None, False  # ``**splat`` — not a literal
            kv, ok = literal_value(key)
            if not ok:
                return None, False
            vv, ok = literal_value(val)
            if not ok:
                return None, False
            pairs.append((kv, vv))
        try:
            return tuple(sorted(pairs, key=lambda p: repr(p[0]))), True
        except TypeError:  # pragma: no cover - unsortable keys
            return None, False
    return None, False


def _dump_sha(node: ast.expr) -> str:
    return hashlib.sha256(ast.dump(node).encode("utf-8")).hexdigest()[:24]


def _loc(node: ast.AST) -> Loc:
    return Loc(getattr(node, "lineno", 0), getattr(node, "col_offset", -1))


def _decorator_repr(node: ast.expr) -> str:
    """``@dataclass(frozen=True)`` → ``"dataclass(frozen=True)"``."""
    if isinstance(node, ast.Call):
        head = _dotted_repr(node.func)
        parts = [_dotted_repr(a) or "?" for a in node.args]
        parts += [
            f"{kw.arg}={ast.unparse(kw.value)}" if kw.arg else "**"
            for kw in node.keywords
        ]
        return f"{head}({', '.join(parts)})"
    return _dotted_repr(node) or "?"


def _dotted_repr(node: ast.expr) -> Optional[str]:
    """``a.b.c`` / bare-name textual form, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Constant):
        return repr(node.value)
    return None


def _resolve_callee(func: ast.expr, imports: dict[str, str]) -> Optional[str]:
    """Textual call target with the import map applied to its head."""
    dotted = _dotted_repr(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head == "self":
        return dotted
    resolved = imports.get(head)
    if resolved is not None:
        return f"{resolved}.{rest}" if rest else resolved
    return dotted


def _module_assigns(tree: ast.Module) -> Iterable[AssignInfo]:
    for node in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        literal, ok = literal_value(value)
        yield AssignInfo(
            name=target.id,
            loc=_loc(node),
            literal=literal if ok else None,
            is_literal=ok,
            dump_sha=_dump_sha(value),
        )


def _held_contexts(stack: Sequence[ast.AST]) -> tuple[str, ...]:
    """``self.<attr>`` context managers active for a node stack."""
    held: list[str] = []
    for node in stack:
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            # ``with self._lock:`` and the factory form ``with
            # self._lock():`` both pin the attribute name.
            if isinstance(expr, ast.Call):
                expr = expr.func
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                held.append(expr.attr)
    return tuple(held)


def _arg_shape(node: ast.expr) -> str:
    if isinstance(node, ast.Lambda):
        return "lambda"
    if isinstance(node, ast.Name):
        return f"name:{node.id}"
    return ""


def _function_body_walk(
    fn: ast.AST,
) -> Iterable[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """``(node, with_stack)`` pairs, not entering nested scopes."""

    def walk(node: ast.AST, stack: tuple[ast.AST, ...]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_TYPES):
                continue
            yield child, stack
            new_stack = (
                stack + (child,)
                if isinstance(child, (ast.With, ast.AsyncWith, ast.Try))
                else stack
            )
            yield from walk(child, new_stack)

    yield from walk(fn, ())


def _in_try_finally(stack: Sequence[ast.AST]) -> bool:
    return any(
        isinstance(node, ast.Try) and node.finalbody for node in stack
    )


def _returned_dict_keys(fn: ast.AST) -> Optional[tuple[str, ...]]:
    """String keys of the dict this function returns, if statically clear.

    Handles ``return {...}`` directly and the one-hop form ``x = {...};
    return x`` (``SimRequest.canonical`` builds the payload in place).
    """
    returns: list[ast.expr] = []
    assigns: dict[str, ast.expr] = {}
    for node, _stack in _function_body_walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            returns.append(node.value)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigns[target.id] = node.value
    for expr in returns:
        if isinstance(expr, ast.Name) and expr.id in assigns:
            expr = assigns[expr.id]
        if isinstance(expr, ast.Dict):
            keys = tuple(
                key.value
                for key in expr.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
            if keys:
                return keys
    return None


def _extract_function(
    fn: ast.AST, cls: Optional[str], imports: dict[str, str]
) -> FunctionInfo:
    calls: list[CallSite] = []
    nested: list[str] = []
    for child in ast.iter_child_nodes(fn):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(child.name)
    for node, stack in _function_body_walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.append(node.name)
        if not isinstance(node, ast.Call):
            continue
        callee = _resolve_callee(node.func, imports)
        if callee is None:
            continue
        first_str = None
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                first_str = node.args[0].value
        calls.append(
            CallSite(
                callee=callee,
                loc=_loc(node),
                held=_held_contexts(stack),
                first_str_arg=first_str,
                arg_shapes=tuple(_arg_shape(a) for a in node.args),
                in_try_finally=_in_try_finally(stack),
            )
        )
    return FunctionInfo(
        name=fn.name,  # type: ignore[attr-defined]
        cls=cls,
        loc=_loc(fn),
        decorators=tuple(
            _decorator_repr(d)
            for d in fn.decorator_list  # type: ignore[attr-defined]
        ),
        calls=tuple(calls),
        nested_defs=tuple(dict.fromkeys(nested)),
        returned_dict_keys=_returned_dict_keys(fn),
    )


def _extract_class(cls: ast.ClassDef, imports: dict[str, str]) -> ClassInfo:
    fields: list[FieldInfo] = []
    methods: list[str] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            try:
                annotation = ast.unparse(node.annotation)
            except Exception:  # pragma: no cover - unparse is total on 3.9+
                annotation = ""
            fields.append(
                FieldInfo(node.target.id, annotation, _loc(node))
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(node.name)
    return ClassInfo(
        name=cls.name,
        loc=_loc(cls),
        decorators=tuple(_decorator_repr(d) for d in cls.decorator_list),
        bases=tuple(b for b in (_dotted_repr(b) for b in cls.bases) if b),
        fields=tuple(fields),
        methods=tuple(methods),
    )


def extract_program_facts(rel: str, mod: str, tree: ast.Module) -> ProgramFacts:
    """Distil one parsed file into its :class:`ProgramFacts`."""
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    classes: list[ClassInfo] = []
    functions: list[FunctionInfo] = []

    def visit(body: Sequence[ast.stmt], cls: Optional[str]) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if cls is None:  # nested classes stay out of the index
                    classes.append(_extract_class(node, imports))
                    visit(node.body, node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions.append(_extract_function(node, cls, imports))

    visit(tree.body, None)

    return ProgramFacts(
        rel=rel,
        mod=mod,
        imports=tuple(sorted(imports.items())),
        assigns=tuple(_module_assigns(tree)),
        classes=tuple(classes),
        functions=tuple(functions),
    )


# ---------------------------------------------------------------------------
# Index
# ---------------------------------------------------------------------------


@dataclass
class ProgramIndex:
    """The assembled whole-program view rules query.

    Lookup is name-based and returns every definition site — the rules
    decide how to handle homonyms (most symbols of interest here are
    unique by construction: one ``PointJob``, one ``SWEEP_META_FIELDS``).
    """

    files: dict[str, ProgramFacts] = field(default_factory=dict)

    @classmethod
    def build(cls, facts: Iterable[ProgramFacts]) -> ProgramIndex:
        return cls(files={f.rel: f for f in facts})

    def find_assign(self, name: str) -> list[tuple[ProgramFacts, AssignInfo]]:
        out = []
        for rel in sorted(self.files):
            info = self.files[rel].assign(name)
            if info is not None:
                out.append((self.files[rel], info))
        return out

    def find_class(self, name: str) -> list[tuple[ProgramFacts, ClassInfo]]:
        out = []
        for rel in sorted(self.files):
            info = self.files[rel].cls(name)
            if info is not None:
                out.append((self.files[rel], info))
        return out

    def find_function(
        self, name: str, cls: Optional[str] = None
    ) -> list[tuple[ProgramFacts, FunctionInfo]]:
        out = []
        for rel in sorted(self.files):
            info = self.files[rel].function(name, cls)
            if info is not None:
                out.append((self.files[rel], info))
        return out

    # -- call graph -------------------------------------------------------

    def callers_of(
        self, method: str, cls: str, facts: ProgramFacts
    ) -> list[tuple[FunctionInfo, CallSite]]:
        """Intra-class callers of ``self.<method>`` within one file."""
        out = []
        for fn in facts.functions:
            if fn.cls != cls:
                continue
            for call in fn.calls:
                if call.callee == f"self.{method}":
                    out.append((fn, call))
        return out

    def call_paths_to(
        self,
        method: str,
        cls: str,
        facts: ProgramFacts,
        max_depth: int = 4,
    ) -> list[tuple[str, ...]]:
        """Reverse call chains ending at ``cls.method`` (intra-class).

        Each chain is ``(entry, ..., direct_caller)`` of method names;
        used to show *how* an unlocked path reaches a ``*_locked``
        helper.  Depth-bounded and cycle-safe.
        """
        chains: list[tuple[str, ...]] = []

        def ascend(target: str, chain: tuple[str, ...]) -> None:
            callers = self.callers_of(target, cls, facts)
            if not callers or len(chain) >= max_depth:
                if chain:
                    chains.append(chain)
                return
            for fn, _call in callers:
                if fn.name in chain or fn.name == target:
                    chains.append((fn.name, *chain))
                    continue
                ascend(fn.name, (fn.name, *chain))

        ascend(method, ())
        return sorted(set(chains))
