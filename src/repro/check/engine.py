"""Rule engine for ``repro check``: files, suppressions, diagnostics.

The engine is deliberately small: it walks a directory of Python
files, parses each once, hands the ASTs to a set of :class:`Rule`
objects, filters the resulting :class:`Diagnostic` list through
suppression comments, and returns a deterministic, sorted
:class:`CheckResult`.  Rules never import or execute the code they
inspect — fixtures with unsatisfiable imports are fine, and checking
is safe on any tree.

Two rule shapes exist:

* **Per-file rules** override :meth:`Rule.check_file` and are invoked
  once per file matching their ``include``/``exclude`` path prefixes.
* **Project rules** set ``project_wide = True`` and override
  :meth:`Rule.check_project`; they see every parsed file at once (the
  schema-drift rule cross-checks emit sites in one module against a
  schema declared in another).

Suppression comments::

    x = time.time()  # repro: no-check[no-wallclock]  -- host-side cache TTL
    y = frob()       # repro: no-check                -- all rules, this line
    # repro: no-check-file[no-float-eq]               -- whole file, one rule

Every suppression should carry a human justification after the
marker; the marker itself only needs the ``repro: no-check`` prefix.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional
from collections.abc import Iterable, Sequence

__all__ = [
    "CheckResult",
    "CheckedFile",
    "Diagnostic",
    "Rule",
    "Suppressions",
    "UnknownRuleError",
    "dotted_call_name",
    "import_map",
    "local_nodes",
    "run_checks",
    "scope_nodes",
]

#: ``# repro: no-check`` / ``no-check-file`` with an optional rule list.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*no-check(?P<scope>-file)?(?:\[(?P<ids>[^\]]*)\])?"
)

#: Scope-introducing AST nodes; region walks stop at these boundaries.
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: rule: message``.

    Field order doubles as the report sort order (path, then line).
    ``path`` is relative to the scanned root, with POSIX separators.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Suppressions:
    """Parsed ``# repro: no-check`` markers of one file."""

    def __init__(self) -> None:
        #: line -> suppressed rule ids on that line (``None`` = all rules).
        self.lines: dict[int, Optional[set[str]]] = {}
        self.file_all = False
        self.file_ids: set[str] = set()
        #: Total number of markers seen (for reporting).
        self.count = 0

    def covers(self, rule: str, line: int) -> bool:
        if self.file_all or rule in self.file_ids:
            return True
        if line in self.lines:
            ids = self.lines[line]
            return ids is None or rule in ids
        return False

    @classmethod
    def parse(cls, source: str) -> Suppressions:
        out = cls()
        for line_no, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            out.count += 1
            raw_ids = match.group("ids")
            ids = (
                {part.strip() for part in raw_ids.split(",") if part.strip()}
                if raw_ids is not None
                else None
            )
            if match.group("scope"):
                if ids is None:
                    out.file_all = True
                else:
                    out.file_ids |= ids
            elif ids is None:
                out.lines[line_no] = None
            else:
                prior = out.lines.get(line_no)
                if prior is not None:
                    out.lines[line_no] = prior | ids
                elif line_no not in out.lines:
                    out.lines[line_no] = set(ids)
        return out


@dataclass
class CheckedFile:
    """One parsed source file handed to rules.

    ``rel`` is the on-disk path relative to the scanned root (what
    diagnostics display); ``mod`` is the normalised module path used
    for rule scoping — a leading ``src/`` is stripped and a bare
    package root gains its package-name prefix, so scoping prefixes
    like ``repro/core/`` work whether the scan root is the repo, its
    ``src/`` directory, or the package directory itself.
    """

    path: Path
    rel: str
    mod: str
    source: str
    tree: ast.Module
    suppressions: Suppressions = field(default_factory=Suppressions)


class Rule:
    """Base class for checks; subclass and override one ``check_*``."""

    id: str = ""
    description: str = ""
    severity: str = "error"
    #: Module-path prefixes (``mod``) the rule applies to; empty = all.
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    project_wide: bool = False

    def matches(self, mod: str) -> bool:
        if any(mod == e or mod.startswith(e) for e in self.exclude):
            return False
        if not self.include:
            return True
        return any(mod == i or mod.startswith(i) for i in self.include)

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, files: Sequence[CheckedFile]) -> Iterable[Diagnostic]:
        return ()

    def diagnostic(
        self, checked: CheckedFile, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=checked.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


class UnknownRuleError(ValueError):
    """``--rule`` named a rule id that is not registered."""


@dataclass
class CheckResult:
    """Everything one :func:`run_checks` invocation produced."""

    root: Path
    diagnostics: list[Diagnostic]
    files_checked: int
    suppressed: int

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors


# ---------------------------------------------------------------------------
# File collection
# ---------------------------------------------------------------------------


def _module_path(rel: str, root: Path) -> str:
    """Normalise a root-relative path for rule scoping (see CheckedFile)."""
    mod = rel
    if mod.startswith("src/"):
        mod = mod[len("src/"):]
    if (root / "__init__.py").is_file():
        mod = f"{root.name}/{mod}"
    return mod


def collect_files(root: Path) -> tuple[list[CheckedFile], list[Diagnostic]]:
    """Parse every ``.py`` file under ``root`` (or ``root`` itself).

    Unparseable files become ``parse-error`` diagnostics instead of
    aborting the run — a syntax error must fail the gate, not crash it.
    """
    root = Path(root)
    if root.is_file():
        paths = [root]
        base = root.parent
    else:
        paths = sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)
        base = root
    files: list[CheckedFile] = []
    parse_errors: list[Diagnostic] = []
    for path in paths:
        rel = path.relative_to(base).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError, OSError) as error:
            line = getattr(error, "lineno", 0) or 0
            parse_errors.append(
                Diagnostic(
                    path=rel,
                    line=line,
                    col=1,
                    rule="parse-error",
                    message=f"could not parse file: {error}",
                )
            )
            continue
        files.append(
            CheckedFile(
                path=path,
                rel=rel,
                mod=_module_path(rel, base),
                source=source,
                tree=tree,
                suppressions=Suppressions.parse(source),
            )
        )
    return files, parse_errors


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def run_checks(
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> CheckResult:
    """Run ``rules`` (default: the registered set) over ``root``.

    Args:
        root: directory (or single file) to analyse.
        rules: rule objects to run; defaults to
            :data:`repro.check.ALL_RULES`.
        rule_ids: restrict to these rule ids (``repro check --rule``).

    Raises:
        UnknownRuleError: ``rule_ids`` named an unregistered rule.
    """
    if rules is None:
        from repro.check import ALL_RULES

        rules = ALL_RULES
    if rule_ids:
        known = {rule.id for rule in rules}
        missing = sorted(set(rule_ids) - known)
        if missing:
            raise UnknownRuleError(
                f"unknown rule id(s) {missing}; known: {sorted(known)}"
            )
        rules = [rule for rule in rules if rule.id in rule_ids]

    files, diagnostics = collect_files(Path(root))
    for rule in rules:
        if rule.project_wide:
            diagnostics.extend(rule.check_project(files))
        else:
            for checked in files:
                if rule.matches(checked.mod):
                    diagnostics.extend(rule.check_file(checked))

    by_rel = {checked.rel: checked for checked in files}
    kept: list[Diagnostic] = []
    suppressed = 0
    for diag in diagnostics:
        checked = by_rel.get(diag.path)
        if checked is not None and checked.suppressions.covers(diag.rule, diag.line):
            suppressed += 1
            continue
        kept.append(diag)
    kept.sort()
    return CheckResult(
        root=Path(root),
        diagnostics=kept,
        files_checked=len(files),
        suppressed=suppressed,
    )


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted module path, from the file's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Relative
    imports are ignored (the banned names are all absolute stdlib or
    third-party paths).
    """
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    names[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return names


def dotted_call_name(func: ast.expr, names: dict[str, str]) -> Optional[str]:
    """Resolve a call target to its dotted import path, if statically known.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when the file imported ``numpy as np``; calls on local objects
    (whose base name is not an import) resolve to ``None``.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = names.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def scope_nodes(tree: ast.Module) -> Iterable[ast.AST]:
    """The module plus every named scope (function/method/class) in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _SCOPE_TYPES) and not isinstance(node, ast.Lambda):
            yield node


def local_nodes(scope: ast.AST) -> Iterable[ast.AST]:
    """Descendants of ``scope`` without entering nested scopes.

    Used for poor-man's scope resolution: assignments and calls that
    belong to one function body, excluding its inner ``def``s.
    """
    for child in ast.iter_child_nodes(scope):
        yield child
        if not isinstance(child, _SCOPE_TYPES):
            yield from local_nodes(child)
