"""Rule engine for ``repro check``: whole-program analysis with a cache.

v2 architecture (the v1 engine ran independent per-file AST rules):

1.  **Collect** every ``.py`` file under the root and content-hash it.
2.  **Memo probe** — if an :class:`repro.check.cache.AnalysisCache` is
    attached and the complete ``(path, hash)`` vector (plus the rule
    selection and any contract-snapshot inputs) matches a finished
    run, return that run's :class:`CheckResult` without parsing
    anything.
3.  **Parse or load** — files whose hash has a cache entry are served
    from it (suppression markers, extracted facts, per-file rule
    diagnostics); only *changed* files are re-parsed and re-analysed.
4.  **Assemble the program** — the per-file
    :class:`repro.check.program.ProgramFacts` records become one
    :class:`~repro.check.program.ProgramIndex` (symbol table + call
    graph), and every :class:`FactRule` runs its cross-module check
    phase over it.
5.  **Filter** diagnostics through suppression comments (tracking
    which markers actually fired — stale markers are themselves
    diagnostics), sort deterministically by ``(path, line, col,
    rule)``, and return.

Rules never import or execute the code they inspect — fixtures with
unsatisfiable imports are fine, and checking is safe on any tree.

Three rule shapes exist:

* **Per-file rules** override :meth:`Rule.check_file`; their
  diagnostics are cached per content hash.
* **Fact rules** (:class:`FactRule`) override :meth:`FactRule.extract`
  — a per-file, cached, *picklable* distillation — and
  :meth:`FactRule.check_facts`, the cross-module phase that sees every
  file's facts plus the program index.
* **Legacy project rules** (``project_wide = True`` with
  :meth:`Rule.check_project`) still run, at the cost of materialising
  ASTs for every file; the in-tree rules have all been ported to
  facts.

Suppression comments::

    x = time.time()  # repro: no-check[no-wallclock]  -- host-side cache TTL
    y = frob()       # repro: no-check                -- all rules, this line
    # repro: no-check-file[no-float-eq]               -- whole file, one rule

Every suppression should carry a human justification after the
marker.  A marker that stops suppressing anything is reported as
``unused-suppression`` (see ``repro check --prune-suppressions``).
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Optional
from collections.abc import Iterable, Sequence

from repro.check.cache import AnalysisCache, FileEntry
from repro.check.engine_types import Loc
from repro.check.program import (
    PROGRAM_FACTS_VERSION,
    ProgramFacts,
    ProgramIndex,
    extract_program_facts,
)

__all__ = [
    "CheckResult",
    "CheckedFile",
    "Diagnostic",
    "FactRule",
    "FileMeta",
    "Loc",
    "ProgramContext",
    "Rule",
    "Suppressions",
    "UnknownRuleError",
    "dotted_call_name",
    "import_map",
    "local_nodes",
    "run_checks",
    "scope_nodes",
]

#: The ``no-check`` / ``no-check-file`` markers, optional rule list.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*no-check(?P<scope>-file)?(?:\[(?P<ids>[^\]]*)\])?"
)

#: Scope-introducing AST nodes; region walks stop at these boundaries.
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)

#: Rule id of the stale-marker diagnostics the engine itself emits.
UNUSED_SUPPRESSION_ID = "unused-suppression"

#: Fact namespace of the shared program facts in cache entries.
_PROGRAM_NS = f"__program__/{PROGRAM_FACTS_VERSION}"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: ``path:line:col: rule: message``.

    Field order doubles as the report sort order — the deterministic
    ``(path, line, col, rule)`` contract CI diffs rely on, with
    ``message`` as the final tiebreak.  ``path`` is relative to the
    scanned root, with POSIX separators.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass(frozen=True)
class _Marker:
    """One parsed ``# repro: no-check`` comment."""

    line: int
    file_scope: bool
    #: Suppressed rule ids; ``None`` means every rule.
    ids: Optional[frozenset[str]]

    def describe(self) -> str:
        scope = "no-check-file" if self.file_scope else "no-check"
        if self.ids is None:
            return f"# repro: {scope}"
        return f"# repro: {scope}[{', '.join(sorted(self.ids))}]"


class Suppressions:
    """Parsed ``# repro: no-check`` markers of one file."""

    def __init__(self, markers: Optional[list[_Marker]] = None) -> None:
        self.markers: list[_Marker] = markers or []

    @property
    def count(self) -> int:
        return len(self.markers)

    def covering(self, rule: str, line: int) -> list[int]:
        """Indices of every marker that suppresses ``rule`` at ``line``."""
        hits = []
        for i, marker in enumerate(self.markers):
            applies = marker.ids is None or rule in marker.ids
            if not applies:
                continue
            if marker.file_scope or marker.line == line:
                hits.append(i)
        return hits

    def covers(self, rule: str, line: int) -> bool:
        return bool(self.covering(rule, line))

    @classmethod
    def parse(cls, source: str) -> Suppressions:
        markers: list[_Marker] = []
        for line_no, text in _comment_tokens(source):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            raw_ids = match.group("ids")
            ids = (
                frozenset(
                    part.strip() for part in raw_ids.split(",") if part.strip()
                )
                if raw_ids is not None
                else None
            )
            markers.append(
                _Marker(
                    line=line_no,
                    file_scope=bool(match.group("scope")),
                    ids=ids,
                )
            )
        return cls(markers)


def _comment_tokens(source: str) -> Iterable[tuple[int, str]]:
    """``(line, text)`` of every real comment in ``source``.

    Tokenising (rather than regexing whole lines) keeps marker
    *mentions* inside docstrings and string literals — like the ones
    in this package's own documentation — from registering as live
    suppressions.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable tail (the file already gets a parse-error
        # diagnostic); whatever tokenised before the failure counts.
        return


@dataclass
class FileMeta:
    """Path identity of one analysed file (no tree, no source)."""

    rel: str
    mod: str


@dataclass
class CheckedFile:
    """One parsed source file handed to rules.

    ``rel`` is the on-disk path relative to the scanned root (what
    diagnostics display); ``mod`` is the normalised module path used
    for rule scoping — a leading ``src/`` is stripped and a bare
    package root gains its package-name prefix, so scoping prefixes
    like ``repro/core/`` work whether the scan root is the repo, its
    ``src/`` directory, or the package directory itself.
    """

    path: Path
    rel: str
    mod: str
    source: str
    tree: ast.Module
    suppressions: Suppressions = field(default_factory=Suppressions)


class Rule:
    """Base class for checks; subclass and override one ``check_*``."""

    id: str = ""
    description: str = ""
    severity: str = "error"
    #: Module-path prefixes (``mod``) the rule applies to; empty = all.
    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    project_wide: bool = False

    def matches(self, mod: str) -> bool:
        if any(mod == e or mod.startswith(e) for e in self.exclude):
            return False
        if not self.include:
            return True
        return any(mod == i or mod.startswith(i) for i in self.include)

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        return ()

    def check_project(self, files: Sequence[CheckedFile]) -> Iterable[Diagnostic]:
        return ()

    def external_state(self, root: Path) -> str:
        """Non-``.py`` inputs of this rule, folded into the run memo key.

        Return a stable string describing any out-of-tree state the
        rule reads (the contract rule hashes its snapshot file here);
        a change in the string invalidates the full-run memo.
        """
        return ""

    def diagnostic(
        self, checked: CheckedFile, node: Any, message: str
    ) -> Diagnostic:
        return self.diag_at(checked.rel, node, message)

    def diag_at(self, rel: str, node: Any, message: str) -> Diagnostic:
        """Anchor a diagnostic at an AST node *or* a :class:`Loc`."""
        return Diagnostic(
            path=rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


@dataclass
class ProgramContext:
    """What a :class:`FactRule`'s cross-module phase sees."""

    root: Path
    files: list[FileMeta]
    index: ProgramIndex
    #: rule id -> (rel -> that rule's extracted facts for the file).
    fact_map: dict[str, dict[str, Any]]

    def facts(self, rule_id: str) -> dict[str, Any]:
        return self.fact_map.get(rule_id, {})


class FactRule(Rule):
    """A cross-module rule with a cacheable per-file extraction phase.

    ``extract`` distils one parsed file into a *picklable* record (or
    ``None`` when the file contributes nothing); the engine caches the
    record against the file's content hash.  ``check_facts`` then runs
    once per check over every file's facts plus the program index —
    it never sees an AST, which is what makes warm runs cheap.
    """

    project_wide = True

    def extract(self, checked: CheckedFile) -> Any:
        return None

    def check_facts(self, ctx: ProgramContext) -> Iterable[Diagnostic]:
        return ()


class UnknownRuleError(ValueError):
    """``--rule`` named a rule id that is not registered."""


@dataclass
class CheckResult:
    """Everything one :func:`run_checks` invocation produced."""

    root: Path
    diagnostics: list[Diagnostic]
    files_checked: int
    suppressed: int
    #: Files actually fed to ``ast.parse`` this run (cache misses).
    parsed_files: int = 0
    #: Files served entirely from the analysis cache.
    cached_files: int = 0
    #: True when the whole run was answered by the full-run memo.
    from_memo: bool = False
    #: Engine wall time of this invocation, seconds.
    wall_s: float = 0.0
    #: ``(path, line, marker)`` of suppression comments that fired.
    used_markers: list[tuple[str, int, str]] = field(default_factory=list)
    #: ``(path, line, marker)`` of suppression comments that did not.
    unused_markers: list[tuple[str, int, str]] = field(default_factory=list)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def with_diagnostics(self, diagnostics: list[Diagnostic]) -> CheckResult:
        """A shallow copy reporting ``diagnostics`` (baseline filtering)."""
        return replace(self, diagnostics=list(diagnostics))


# ---------------------------------------------------------------------------
# File collection
# ---------------------------------------------------------------------------


def _module_path(rel: str, root: Path) -> str:
    """Normalise a root-relative path for rule scoping (see CheckedFile)."""
    mod = rel
    if mod.startswith("src/"):
        mod = mod[len("src/"):]
    if (root / "__init__.py").is_file():
        mod = f"{root.name}/{mod}"
    return mod


def _walk_paths(root: Path) -> tuple[list[Path], Path]:
    if root.is_file():
        return [root], root.parent
    paths = sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)
    return paths, root


def _parse_one(
    path: Path, rel: str, mod: str, source: str
) -> tuple[Optional[CheckedFile], Optional[Diagnostic]]:
    try:
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", 0) or 0
        return None, Diagnostic(
            path=rel,
            line=line,
            col=1,
            rule="parse-error",
            message=f"could not parse file: {error}",
        )
    return (
        CheckedFile(
            path=path,
            rel=rel,
            mod=mod,
            source=source,
            tree=tree,
            suppressions=Suppressions.parse(source),
        ),
        None,
    )


def collect_files(root: Path) -> tuple[list[CheckedFile], list[Diagnostic]]:
    """Parse every ``.py`` file under ``root`` (or ``root`` itself).

    Unparseable files become ``parse-error`` diagnostics instead of
    aborting the run — a syntax error must fail the gate, not crash it.
    """
    root = Path(root)
    paths, base = _walk_paths(root)
    files: list[CheckedFile] = []
    parse_errors: list[Diagnostic] = []
    for path in paths:
        rel = path.relative_to(base).as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, ValueError) as error:
            parse_errors.append(
                Diagnostic(
                    path=rel, line=0, col=1, rule="parse-error",
                    message=f"could not parse file: {error}",
                )
            )
            continue
        checked, error_diag = _parse_one(path, rel, _module_path(rel, base), source)
        if checked is not None:
            files.append(checked)
        if error_diag is not None:
            parse_errors.append(error_diag)
    return files, parse_errors


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class _FileState:
    """One file's analysis products during a run (cached or fresh)."""

    meta: FileMeta
    suppressions: Suppressions
    program_facts: ProgramFacts
    rule_facts: dict[str, Any]
    diagnostics: list[Diagnostic]
    checked: Optional[CheckedFile] = None  # only for freshly parsed files


def _select_rules(
    rules: Optional[Sequence[Rule]], rule_ids: Optional[Sequence[str]]
) -> list[Rule]:
    if rules is None:
        from repro.check import ALL_RULES

        rules = ALL_RULES
    if rule_ids:
        known = {rule.id for rule in rules}
        missing = sorted(set(rule_ids) - known)
        if missing:
            raise UnknownRuleError(
                f"unknown rule id(s) {missing}; known: {sorted(known)}"
            )
        rules = [rule for rule in rules if rule.id in rule_ids]
    return list(rules)


def _entry_usable(
    entry: FileEntry,
    mod: str,
    per_file_rules: list[Rule],
    fact_rules: list[FactRule],
) -> bool:
    """Does a cache entry hold everything this rule selection needs?"""
    if _PROGRAM_NS not in entry.facts:
        return False
    for rule in fact_rules:
        if rule.id not in entry.facts:
            return False
    for rule in per_file_rules:
        if rule.matches(mod) and rule.id not in entry.diagnostics:
            return False
    return True


def _analyse_fresh(
    checked: CheckedFile,
    per_file_rules: list[Rule],
    fact_rules: list[FactRule],
) -> _FileState:
    diagnostics: list[Diagnostic] = []
    per_rule: dict[str, list[Diagnostic]] = {}
    for rule in per_file_rules:
        if rule.matches(checked.mod):
            found = list(rule.check_file(checked))
            per_rule[rule.id] = found
            diagnostics.extend(found)
    rule_facts: dict[str, Any] = {}
    for rule in fact_rules:
        rule_facts[rule.id] = rule.extract(checked)
    state = _FileState(
        meta=FileMeta(rel=checked.rel, mod=checked.mod),
        suppressions=checked.suppressions,
        program_facts=extract_program_facts(
            checked.rel, checked.mod, checked.tree
        ),
        rule_facts=rule_facts,
        diagnostics=diagnostics,
        checked=checked,
    )
    state.per_rule_diags = per_rule  # type: ignore[attr-defined]
    return state


def run_checks(
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
    rule_ids: Optional[Sequence[str]] = None,
    cache_dir: Optional[Path] = None,
) -> CheckResult:
    """Run ``rules`` (default: the registered set) over ``root``.

    Args:
        root: directory (or single file) to analyse.
        rules: rule objects to run; defaults to
            :data:`repro.check.ALL_RULES`.
        rule_ids: restrict to these rule ids (``repro check --rule``).
        cache_dir: directory of the incremental analysis cache; ``None``
            (the default, used by most tests) disables caching.

    Raises:
        UnknownRuleError: ``rule_ids`` named an unregistered rule.
    """
    started = time.perf_counter()
    selected = _select_rules(rules, rule_ids)
    fact_rules = [r for r in selected if isinstance(r, FactRule)]
    legacy_project = [
        r for r in selected if r.project_wide and not isinstance(r, FactRule)
    ]
    per_file_rules = [r for r in selected if not r.project_wide]

    root = Path(root)
    paths, base = _walk_paths(root)
    cache = AnalysisCache(cache_dir) if cache_dir is not None else None

    sources: list[tuple[Path, str, str, Optional[bytes]]] = []
    read_errors: list[Diagnostic] = []
    for path in paths:
        rel = path.relative_to(base).as_posix()
        mod = _module_path(rel, base)
        try:
            data = path.read_bytes()
        except OSError as error:
            read_errors.append(
                Diagnostic(
                    path=rel, line=0, col=1, rule="parse-error",
                    message=f"could not parse file: {error}",
                )
            )
            continue
        sources.append((path, rel, mod, data))

    external = "|".join(
        f"{rule.id}={rule.external_state(root)}" for rule in selected
    )
    selected_key = tuple(sorted(rule_ids)) if rule_ids else None

    run_key = None
    if cache is not None:
        hashes = [(rel, cache.file_key(data or b"")) for _, rel, _, data in sources]
        run_key = cache.run_key(hashes, selected_key, external)
        memo = cache.load_run(run_key)
        if isinstance(memo, CheckResult):
            memo.from_memo = True
            memo.parsed_files = 0
            memo.cached_files = memo.files_checked
            memo.wall_s = time.perf_counter() - started
            return memo

    # -- per-file phase ---------------------------------------------------

    states: list[_FileState] = []
    parse_errors: list[Diagnostic] = list(read_errors)
    #: rel -> parse-error diagnostic line (cached syntax-error files).
    parsed = 0
    cached = 0
    for path, rel, mod, data in sources:
        assert data is not None
        key = cache.file_key(data) if cache is not None else ""
        entry = cache.load_file(key) if cache is not None else None
        if entry is not None and "parse-error" in entry.diagnostics:
            # Still-broken file: replay its parse-error diagnostic.
            for diag in entry.diagnostics["parse-error"]:
                parse_errors.append(diag)
            cached += 1
            continue
        if entry is not None and _entry_usable(
            entry, mod, per_file_rules, fact_rules
        ):
            states.append(
                _FileState(
                    meta=FileMeta(rel=rel, mod=mod),
                    suppressions=entry.suppressions,
                    program_facts=entry.facts[_PROGRAM_NS],
                    rule_facts={
                        r.id: entry.facts[r.id] for r in fact_rules
                    },
                    diagnostics=[
                        d
                        for r in per_file_rules
                        if r.matches(mod)
                        for d in entry.diagnostics.get(r.id, [])
                    ],
                )
            )
            cached += 1
            continue

        source = data.decode("utf-8", errors="replace")
        checked, error_diag = _parse_one(path, rel, mod, source)
        parsed += 1
        if error_diag is not None:
            parse_errors.append(error_diag)
            if cache is not None:
                cache.store_file(
                    FileEntry(
                        rel=rel,
                        hash=key,
                        suppressions=Suppressions(),
                        facts={_PROGRAM_NS: None},
                        diagnostics={"parse-error": [error_diag]},
                    )
                )
            continue
        assert checked is not None
        state = _analyse_fresh(checked, per_file_rules, fact_rules)
        states.append(state)
        if cache is not None:
            merged: dict[str, list] = dict(
                getattr(state, "per_rule_diags", {})
            )
            if entry is not None:  # extend a partial entry
                for rid, diags in entry.diagnostics.items():
                    merged.setdefault(rid, diags)
            facts = {_PROGRAM_NS: state.program_facts, **state.rule_facts}
            if entry is not None:
                for ns, payload in entry.facts.items():
                    facts.setdefault(ns, payload)
            cache.store_file(
                FileEntry(
                    rel=rel,
                    hash=key,
                    suppressions=state.suppressions,
                    facts=facts,
                    diagnostics=merged,
                )
            )

    diagnostics: list[Diagnostic] = list(parse_errors)
    for state in states:
        diagnostics.extend(state.diagnostics)

    # -- cross-module phase -----------------------------------------------

    if fact_rules:
        ctx = ProgramContext(
            root=root,
            files=[state.meta for state in states],
            index=ProgramIndex.build(
                state.program_facts for state in states
            ),
            fact_map={
                rule.id: {
                    state.meta.rel: state.rule_facts.get(rule.id)
                    for state in states
                    if state.rule_facts.get(rule.id) is not None
                }
                for rule in fact_rules
            },
        )
        for rule in fact_rules:
            diagnostics.extend(rule.check_facts(ctx))

    if legacy_project:
        # Legacy project rules need real ASTs; materialise any file the
        # cache served from facts.  In-tree rules are all fact rules,
        # so this path only runs for externally supplied rule objects.
        materialized: list[CheckedFile] = []
        for state in states:
            if state.checked is None:
                path = base / state.meta.rel
                source = path.read_text(encoding="utf-8")
                checked, error_diag = _parse_one(
                    path, state.meta.rel, state.meta.mod, source
                )
                if checked is not None:
                    state.checked = checked
            if state.checked is not None:
                materialized.append(state.checked)
        for rule in legacy_project:
            diagnostics.extend(rule.check_project(materialized))

    # -- suppression filter + stale-marker accounting ---------------------

    by_rel = {state.meta.rel: state for state in states}
    kept: list[Diagnostic] = []
    suppressed = 0
    fired: dict[str, set[int]] = {}
    for diag in diagnostics:
        state = by_rel.get(diag.path)
        if state is None:
            kept.append(diag)
            continue
        hits = state.suppressions.covering(diag.rule, diag.line)
        if hits:
            suppressed += 1
            fired.setdefault(diag.path, set()).update(hits)
        else:
            kept.append(diag)

    used: list[tuple[str, int, str]] = []
    unused: list[tuple[str, int, str]] = []
    for state in states:
        for i, marker in enumerate(state.suppressions.markers):
            record = (state.meta.rel, marker.line, marker.describe())
            if i in fired.get(state.meta.rel, set()):
                used.append(record)
            else:
                unused.append(record)

    # Stale markers are only decidable when every rule ran: under
    # ``--rule`` a marker for an unselected rule is silent by design.
    report_unused = rule_ids is None or UNUSED_SUPPRESSION_ID in rule_ids
    if report_unused:
        for rel, line, text in unused:
            # Deliberately exempt from suppression filtering: a blanket
            # marker must not be able to hide its own staleness.
            kept.append(
                Diagnostic(
                    path=rel,
                    line=line,
                    col=1,
                    rule=UNUSED_SUPPRESSION_ID,
                    message=(
                        f"suppression {text!r} no longer matches any "
                        "diagnostic; remove it (repro check "
                        "--prune-suppressions lists all stale markers)"
                    ),
                )
            )

    kept.sort()
    result = CheckResult(
        root=Path(root),
        diagnostics=kept,
        files_checked=len(states) + sum(
            1 for d in parse_errors if d.rule == "parse-error"
        ),
        suppressed=suppressed,
        parsed_files=parsed,
        cached_files=cached,
        from_memo=False,
        wall_s=time.perf_counter() - started,
        used_markers=sorted(used),
        unused_markers=sorted(unused),
    )
    if cache is not None and run_key is not None:
        cache.store_run(run_key, result)
    return result


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted module path, from the file's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Relative
    imports are ignored (the banned names are all absolute stdlib or
    third-party paths).
    """
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    names[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    names[head] = head
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                names[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return names


def dotted_call_name(func: ast.expr, names: dict[str, str]) -> Optional[str]:
    """Resolve a call target to its dotted import path, if statically known.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when the file imported ``numpy as np``; calls on local objects
    (whose base name is not an import) resolve to ``None``.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = names.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def scope_nodes(tree: ast.Module) -> Iterable[ast.AST]:
    """The module plus every named scope (function/method/class) in it."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, _SCOPE_TYPES) and not isinstance(node, ast.Lambda):
            yield node


def local_nodes(scope: ast.AST) -> Iterable[ast.AST]:
    """Descendants of ``scope`` without entering nested scopes.

    Used for poor-man's scope resolution: assignments and calls that
    belong to one function body, excluding its inner ``def``s.
    """
    for child in ast.iter_child_nodes(scope):
        yield child
        if not isinstance(child, _SCOPE_TYPES):
            yield from local_nodes(child)
