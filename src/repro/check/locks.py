"""Lock discipline: shared state in the serving layer stays locked.

The ``repro.serve`` service is the one place in the tree where multiple
threads touch the same object (HTTP request threads + the dispatcher).
Its convention: a class that owns a ``threading.Lock``/``RLock``/
``Condition`` attribute must write its other attributes only inside a
``with self.<lock>`` block.

The rule flags attribute (re)binds — ``self.x = ...``,
``self.x += ...``, ``self.x[k] = ...`` — in methods of lock-holding
classes that are not under any of the class's locks.  Exemptions that
encode the codebase's own conventions:

* ``__init__`` — the object is not shared before construction returns;
* methods named ``*_locked`` — the caller-holds-the-lock helper
  convention (``_drain_batch_locked``);
* reads (never flagged) and writes through non-``self`` names.

This is a single-method, syntactic check: it does not track lock
hand-offs across calls, so helpers that expect a held lock must use
the ``_locked`` naming convention to stay exempt.
"""

from __future__ import annotations

import ast
from typing import Optional
from collections.abc import Iterable

from repro.check.engine import (
    CheckedFile,
    Diagnostic,
    Rule,
    dotted_call_name,
    import_map,
)

__all__ = ["LockDisciplineRule", "lock_attributes"]

#: Constructors whose result makes an attribute "a lock" for this rule.
_LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
    }
)


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<name>`` → name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def lock_attributes(cls: ast.ClassDef, names: dict) -> set[str]:
    """Attributes of ``cls`` assigned a lock constructor anywhere."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if dotted_call_name(node.value.func, names) not in _LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _write_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


def _written_attr(target: ast.expr) -> Optional[str]:
    """The ``self`` attribute a target writes, unwrapping subscripts."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    return _self_attr(node)


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "attribute writes outside `with self.<lock>` in lock-holding "
        "classes of the serving layer"
    )
    include = ("repro/serve/", "repro/fsio.py")

    def check_file(self, checked: CheckedFile) -> Iterable[Diagnostic]:
        names = import_map(checked.tree)
        for node in ast.walk(checked.tree):
            if isinstance(node, ast.ClassDef):
                locks = lock_attributes(node, names)
                if locks:
                    yield from self._check_class(checked, node, locks)

    def _check_class(
        self, checked: CheckedFile, cls: ast.ClassDef, locks: set[str]
    ) -> Iterable[Diagnostic]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            yield from self._check_body(
                checked, method.body, locks, method.name, held=False
            )

    def _check_body(
        self,
        checked: CheckedFile,
        body: list[ast.stmt],
        locks: set[str],
        method: str,
        held: bool,
    ) -> Iterable[Diagnostic]:
        for stmt in body:
            for target in _write_targets(stmt):
                attr = _written_attr(target)
                if attr is None or held:
                    continue
                if attr in locks:
                    message = (
                        f"{method}() rebinds the lock attribute "
                        f"self.{attr}; locks are created once in __init__"
                    )
                else:
                    message = (
                        f"{method}() writes self.{attr} outside "
                        f"`with self.{{{', '.join(sorted(locks))}}}`; "
                        "shared state must be written under the lock"
                    )
                yield self.diagnostic(checked, stmt, message)
            yield from self._check_children(checked, stmt, locks, method, held)

    def _check_children(
        self,
        checked: CheckedFile,
        stmt: ast.stmt,
        locks: set[str],
        method: str,
        held: bool,
    ) -> Iterable[Diagnostic]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquires = any(
                (_self_attr(item.context_expr) or "") in locks
                for item in stmt.items
            )
            yield from self._check_body(
                checked, stmt.body, locks, method, held or acquires
            )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes run who-knows-when; out of scope
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody"):
                if isinstance(value, list):
                    yield from self._check_body(
                        checked, value, locks, method, held
                    )
            elif field_name == "handlers" and isinstance(value, list):
                for handler in value:
                    yield from self._check_body(
                        checked, handler.body, locks, method, held
                    )
