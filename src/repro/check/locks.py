"""Lock discipline: shared state in the serving layer stays locked.

The ``repro.serve`` service is the one place in the tree where multiple
threads touch the same object (HTTP request threads + the dispatcher).
Its convention: a class that owns a ``threading.Lock``/``RLock``/
``Condition`` attribute must write its other attributes only inside a
``with self.<lock>`` block.

**Lexical check** (v1, unchanged): attribute (re)binds — ``self.x =
...``, ``self.x += ...``, ``self.x[k] = ...`` — in methods of
lock-holding classes that are not under any of the class's locks.
Exemptions that encode the codebase's own conventions:

* ``__init__`` — the object is not shared before construction returns;
* methods named ``*_locked`` — the caller-holds-the-lock helper
  convention (``_drain_batch_locked``);
* reads (never flagged) and writes through non-``self`` names.

**Call-graph checks** (v2, via the program index): the ``*_locked``
convention is now *enforced*, not just exempted.  Across the serving
layer, the request-log and the sweep-store writer:

* a call to ``self.<helper>_locked`` must happen while a ``with
  self.<lock>`` of the owning class is lexically held, or from a
  method that is itself ``*_locked`` (its caller holds the lock) —
  otherwise the helper runs lock-free, one indirection away from the
  data race the convention exists to prevent.  The diagnostic names an
  example unlocked entry path from the intra-class call graph.
* a direct ``self.<lock>.acquire()`` must sit inside a ``try/finally``
  (or just use ``with``); a raised exception between ``acquire`` and
  ``release`` otherwise deadlocks every other thread.

v2 also recognises **lock factories**: a method that returns a
``FileLock`` (the sweep-store writer's ``def _lock(self)``) counts as
a lock, so ``with self._lock():`` marks its body as held and
``*_locked`` helpers of that class are covered by the same rules.

The lexical write check stays scoped to the serving layer; the
call-graph checks additionally cover ``repro/store/`` and the request
log, where ``*_locked`` helpers exist.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional
from collections.abc import Iterable

from repro.check.engine import (
    CheckedFile,
    Diagnostic,
    FactRule,
    ProgramContext,
    dotted_call_name,
    import_map,
)
from repro.check.engine_types import Loc
from repro.check.program import FunctionInfo, ProgramFacts

__all__ = ["LockDisciplineRule", "lock_attributes"]

#: Constructors whose result makes an attribute "a lock" for this rule.
_LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
    }
)

#: Dotted suffixes that mark a factory method's return value as a lock.
_LOCK_FACTORY_RETURNS = ("FileLock",)

#: Modules under the lexical write-discipline check (v1 scope).
_WRITE_SCOPE = ("repro/serve/", "repro/fsio.py")

#: Modules under the call-graph checks (everywhere ``*_locked`` helpers
#: and lock factories live).
_GRAPH_SCOPE = (
    "repro/serve/",
    "repro/fsio.py",
    "repro/store/",
    "repro/obs/telemetry.py",
)


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<name>`` → name, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def lock_attributes(cls: ast.ClassDef, names: dict) -> set[str]:
    """Attributes of ``cls`` assigned a lock constructor anywhere."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        if dotted_call_name(node.value.func, names) not in _LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _factory_locks(cls: ast.ClassDef) -> set[str]:
    """Methods of ``cls`` that return a lock object (``FileLock``).

    ``with self._lock():`` then holds the factory's name exactly like a
    lock attribute.
    """
    factories: set[str] = set()
    for node in cls.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(node):
            if not (
                isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            func = stmt.value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name in _LOCK_FACTORY_RETURNS:
                factories.add(node.name)
    return factories


def _write_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        return [stmt.target]
    return []


def _written_attr(target: ast.expr) -> Optional[str]:
    """The ``self`` attribute a target writes, unwrapping subscripts."""
    node = target
    while isinstance(node, (ast.Subscript, ast.Starred)):
        node = node.value
    return _self_attr(node)


@dataclass
class LockClassFact:
    """One lock-holding class, as the call-graph checks see it."""

    name: str
    loc: Loc
    lock_attrs: tuple[str, ...]
    factory_locks: tuple[str, ...]

    def all_locks(self) -> frozenset[str]:
        return frozenset(self.lock_attrs) | frozenset(self.factory_locks)


@dataclass
class LockFileFacts:
    """Per-file distillation for the lock rule (cacheable)."""

    #: Lexical write-discipline diagnostics (v1 check, precomputed).
    write_diags: list[Diagnostic] = field(default_factory=list)
    classes: list[LockClassFact] = field(default_factory=list)


class LockDisciplineRule(FactRule):
    id = "lock-discipline"
    description = (
        "attribute writes outside `with self.<lock>`, lock-free calls "
        "to *_locked helpers, and bare acquire() in lock-holding classes"
    )

    # -- extraction (per file, cached) ------------------------------------

    def _in_scope(self, mod: str) -> bool:
        return any(mod.startswith(prefix) for prefix in _GRAPH_SCOPE)

    def extract(self, checked: CheckedFile) -> Optional[LockFileFacts]:
        if not self._in_scope(checked.mod):
            return None
        names = import_map(checked.tree)
        facts = LockFileFacts()
        check_writes = any(
            checked.mod.startswith(prefix) for prefix in _WRITE_SCOPE
        )
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = lock_attributes(node, names)
            factories = _factory_locks(node)
            if not locks and not factories:
                continue
            facts.classes.append(
                LockClassFact(
                    name=node.name,
                    loc=Loc(node.lineno, node.col_offset),
                    lock_attrs=tuple(sorted(locks)),
                    factory_locks=tuple(sorted(factories)),
                )
            )
            if locks and check_writes:
                facts.write_diags.extend(
                    self._check_class_writes(checked, node, locks)
                )
        if not facts.classes and not facts.write_diags:
            return None
        return facts

    def _check_class_writes(
        self, checked: CheckedFile, cls: ast.ClassDef, locks: set[str]
    ) -> Iterable[Diagnostic]:
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__" or method.name.endswith("_locked"):
                continue
            yield from self._check_body(
                checked, method.body, locks, method.name, held=False
            )

    def _check_body(
        self,
        checked: CheckedFile,
        body: list[ast.stmt],
        locks: set[str],
        method: str,
        held: bool,
    ) -> Iterable[Diagnostic]:
        for stmt in body:
            for target in _write_targets(stmt):
                attr = _written_attr(target)
                if attr is None or held:
                    continue
                if attr in locks:
                    message = (
                        f"{method}() rebinds the lock attribute "
                        f"self.{attr}; locks are created once in __init__"
                    )
                else:
                    message = (
                        f"{method}() writes self.{attr} outside "
                        f"`with self.{{{', '.join(sorted(locks))}}}`; "
                        "shared state must be written under the lock"
                    )
                yield self.diagnostic(checked, stmt, message)
            yield from self._check_children(checked, stmt, locks, method, held)

    def _check_children(
        self,
        checked: CheckedFile,
        stmt: ast.stmt,
        locks: set[str],
        method: str,
        held: bool,
    ) -> Iterable[Diagnostic]:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquires = any(
                self._with_item_lock(item.context_expr) in locks
                for item in stmt.items
            )
            yield from self._check_body(
                checked, stmt.body, locks, method, held or acquires
            )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes run who-knows-when; out of scope
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody"):
                if isinstance(value, list):
                    yield from self._check_body(
                        checked, value, locks, method, held
                    )
            elif field_name == "handlers" and isinstance(value, list):
                for handler in value:
                    yield from self._check_body(
                        checked, handler.body, locks, method, held
                    )

    @staticmethod
    def _with_item_lock(expr: ast.expr) -> str:
        """Lock name a with-item pins: attribute or factory-call form."""
        if isinstance(expr, ast.Call):
            expr = expr.func
        return _self_attr(expr) or ""

    # -- cross-module phase (call graph) ----------------------------------

    def check_facts(self, ctx: ProgramContext) -> Iterable[Diagnostic]:
        facts_by_rel: dict[str, LockFileFacts] = ctx.facts(self.id)
        for rel in sorted(facts_by_rel):
            file_facts = facts_by_rel[rel]
            yield from file_facts.write_diags
            program = ctx.index.files.get(rel)
            if program is None:
                continue
            for cls_fact in file_facts.classes:
                yield from self._check_class_graph(rel, cls_fact, program, ctx)

    def _check_class_graph(
        self,
        rel: str,
        cls_fact: LockClassFact,
        program: ProgramFacts,
        ctx: ProgramContext,
    ) -> Iterable[Diagnostic]:
        locks = cls_fact.all_locks()
        for fn in program.functions:
            if fn.cls != cls_fact.name:
                continue
            yield from self._check_function(rel, cls_fact, locks, fn, program, ctx)

    def _check_function(
        self,
        rel: str,
        cls_fact: LockClassFact,
        locks: frozenset[str],
        fn: FunctionInfo,
        program: ProgramFacts,
        ctx: ProgramContext,
    ) -> Iterable[Diagnostic]:
        caller_exempt = fn.name == "__init__" or fn.name.endswith("_locked")
        for call in fn.calls:
            if not call.callee.startswith("self."):
                continue
            target = call.callee[len("self."):]
            holds = bool(set(call.held) & locks)
            if (
                "." not in target
                and target.endswith("_locked")
                and target in {
                    m
                    for c in program.classes
                    if c.name == cls_fact.name
                    for m in c.methods
                }
            ):
                if holds or caller_exempt:
                    continue
                chains = ctx.index.call_paths_to(
                    fn.name, cls_fact.name, program
                )
                via = (
                    f" (example unlocked path: {' -> '.join(chains[0] + (fn.name,))})"
                    if chains
                    else ""
                )
                lock_names = " or ".join(
                    f"`with self.{name}:`" for name in sorted(locks)
                )
                yield self.diag_at(
                    rel,
                    call.loc,
                    f"{fn.name}() calls self.{target}() without holding "
                    f"{lock_names}; *_locked helpers "
                    f"require the caller to hold the lock{via}",
                )
            elif target.endswith(".acquire"):
                attr = target[: -len(".acquire")]
                # The accepted manual shape puts the acquire *before*
                # the try; a release inside a finally of the same
                # function is the evidence the idiom is in play.
                releases_in_finally = any(
                    other.callee == f"self.{attr}.release"
                    and other.in_try_finally
                    for other in fn.calls
                )
                if (
                    attr in locks
                    and not call.in_try_finally
                    and not releases_in_finally
                    and not holds
                ):
                    yield self.diag_at(
                        rel,
                        call.loc,
                        f"{fn.name}() calls self.{attr}.acquire() outside "
                        "try/finally; a raised exception would leave the "
                        "lock held forever — use `with self."
                        f"{attr}:` or wrap the acquire in try/finally",
                    )
