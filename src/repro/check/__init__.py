"""Project-invariant static analysis: ``repro check``.

The reproduction's headline claims rest on invariants that unit tests
can only sample: the cycle-accurate core must stay deterministic
(parallel == serial bit-for-bit), every trace event the simulator emits
must match the versioned schema in :mod:`repro.obs.trace`, and the
threaded serving layer must touch shared state only under its locks.
This package machine-checks those invariants on every change with an
AST-based rule engine over ``src/``:

* :mod:`repro.check.engine` — file walking, suppression comments,
  diagnostics, and the :class:`Rule` base classes.
* :mod:`repro.check.determinism` — wall-clock reads, unseeded RNGs,
  hash-order-dependent logic and float equality in simulation code.
* :mod:`repro.check.schema_drift` — cross-checks ``Instrumentation``
  emit sites and ``MetricsRegistry`` instrument names against the
  trace schema and its consumers, in both directions.
* :mod:`repro.check.locks` — attribute writes outside the owning
  lock in the serving layer's lock-holding classes.
* :mod:`repro.check.cli` — the ``repro check`` command.

Suppress an intentional violation with a trailing
``# repro: no-check[rule-id]`` comment (see ``docs/architecture.md``
§ Static analysis for the full syntax and the rule catalogue).
"""

from __future__ import annotations

from repro.check.determinism import DETERMINISM_RULES
from repro.check.engine import (
    CheckedFile,
    CheckResult,
    Diagnostic,
    Rule,
    UnknownRuleError,
    run_checks,
)
from repro.check.locks import LockDisciplineRule
from repro.check.schema_drift import SchemaDriftRule

__all__ = [
    "ALL_RULES",
    "CheckResult",
    "CheckedFile",
    "Diagnostic",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "run_checks",
]

#: Every registered rule, in catalogue order.
ALL_RULES: tuple = (
    *DETERMINISM_RULES,
    SchemaDriftRule(),
    LockDisciplineRule(),
)


def all_rules() -> tuple:
    """The default rule set (a fresh reference to :data:`ALL_RULES`)."""
    return ALL_RULES
