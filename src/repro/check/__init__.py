"""Project-invariant static analysis: ``repro check``.

The reproduction's headline claims rest on invariants that unit tests
can only sample: the cycle-accurate core must stay deterministic
(parallel == serial bit-for-bit), every trace event the simulator emits
must match the versioned schema in :mod:`repro.obs.trace`, the threaded
serving layer must touch shared state only under its locks, and every
identity axis (engine, mechanism, kernel, machine, metric) must reach
every fingerprint surface.  This package machine-checks those
invariants on every change with a whole-program analysis engine over
``src/``:

* :mod:`repro.check.engine` — the runner: file walking, suppression
  comments, diagnostics, the :class:`Rule`/:class:`FactRule` base
  classes, and the incremental analysis cache hookup.
* :mod:`repro.check.program` — per-file fact extraction (symbol
  table, classes, call graph) and the assembled program index the
  cross-module rules query.
* :mod:`repro.check.cache` — content-hash-keyed on-disk cache; warm
  re-runs only re-parse changed files.
* :mod:`repro.check.determinism` — wall-clock reads, unseeded RNGs,
  hash-order-dependent logic and float equality in simulation code.
* :mod:`repro.check.schema_drift` — cross-checks ``Instrumentation``
  emit sites and ``MetricsRegistry`` instrument names against the
  trace schema and its consumers, in both directions.
* :mod:`repro.check.locks` — attribute writes outside the owning
  lock, lock-free calls to ``*_locked`` helpers (call-graph-aware),
  and bare ``acquire()`` without try/finally.
* :mod:`repro.check.identity` — every ``PointJob`` identity axis must
  reach every identity surface (serve fingerprint, batch key,
  sweep-store meta, trace common fields, ``SimResult``).
* :mod:`repro.check.contracts` — ``*_FIELDS``/``*_COLUMNS``/
  ``*_PHASES`` edits must come with a ``*_SCHEMA_VERSION`` bump,
  enforced against the committed ``contracts.json`` snapshot.
* :mod:`repro.check.boundary` — objects crossing the ``SimExecutor``
  process-pool boundary must be frozen dataclasses; no lambdas or
  closures into ``pool.submit``.
* :mod:`repro.check.sarif` — SARIF 2.1.0 rendering for CI annotation.
* :mod:`repro.check.baseline` — known-diagnostic baseline so CI gates
  on *new* findings only.
* :mod:`repro.check.cli` — the ``repro check`` command.

Suppress an intentional violation with a trailing
``# repro: no-check[rule-id]`` comment (see ``docs/architecture.md``
§ Static analysis for the full syntax and the rule catalogue).
Suppressions that stop matching anything are themselves flagged
(``unused-suppression``).
"""

from __future__ import annotations

from repro.check.boundary import ProcessBoundaryRule
from repro.check.contracts import ContractVersionRule
from repro.check.determinism import DETERMINISM_RULES
from repro.check.engine import (
    UNUSED_SUPPRESSION_ID,
    CheckedFile,
    CheckResult,
    Diagnostic,
    FactRule,
    Rule,
    UnknownRuleError,
    run_checks,
)
from repro.check.identity import IdentityCompletenessRule
from repro.check.locks import LockDisciplineRule
from repro.check.schema_drift import SchemaDriftRule

__all__ = [
    "ALL_RULES",
    "CheckResult",
    "CheckedFile",
    "Diagnostic",
    "FactRule",
    "Rule",
    "UnknownRuleError",
    "all_rules",
    "run_checks",
]


class _UnusedSuppressionRule(Rule):
    """Catalogue entry for the engine's own stale-marker diagnostics.

    The engine emits these itself (they bypass suppression filtering);
    this registration makes the id listable and ``--rule``-addressable.
    """

    id = UNUSED_SUPPRESSION_ID
    description = (
        "`# repro: no-check` comments that no longer suppress any "
        "diagnostic (list them with --prune-suppressions)"
    )


#: Every registered rule, in catalogue order.
ALL_RULES: tuple = (
    *DETERMINISM_RULES,
    SchemaDriftRule(),
    LockDisciplineRule(),
    IdentityCompletenessRule(),
    ContractVersionRule(),
    ProcessBoundaryRule(),
    _UnusedSuppressionRule(),
)


def all_rules() -> tuple:
    """The default rule set (a fresh reference to :data:`ALL_RULES`)."""
    return ALL_RULES
