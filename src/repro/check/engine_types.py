"""Small shared types for the check engine and its fact extractors.

Lives in its own module so :mod:`repro.check.program` (fact
extraction) and :mod:`repro.check.engine` (the runner) can both import
it without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Loc"]


@dataclass(frozen=True, order=True)
class Loc:
    """A source position that mimics an AST node's location attributes.

    Facts records carry :class:`Loc` instead of AST nodes so they stay
    picklable for the on-disk analysis cache; ``Rule.diagnostic`` and
    friends only ever read ``lineno``/``col_offset``, so a ``Loc`` can
    stand in for a node anywhere a diagnostic is anchored.

    The default ``col_offset`` of 0 renders as column 1 — matching how
    the v1 engine anchored line-only diagnostics.
    """

    lineno: int = 0
    col_offset: int = 0
