"""SARIF 2.1.0 rendering of check results.

SARIF (Static Analysis Results Interchange Format) is what CI
platforms ingest for inline code annotations.  The document this
module produces is deliberately minimal — one run, one tool, one
result per diagnostic — and **byte-stable**: results arrive in the
engine's deterministic ``(path, line, col, rule)`` order, keys are
sorted, and serialisation appends a trailing newline, so two runs
over the same tree produce identical bytes and CI can diff them.
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.check.engine import CheckResult, Rule

__all__ = ["render_sarif", "to_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def to_sarif(result: CheckResult, rules: Sequence[Rule]) -> dict:
    """The SARIF document for ``result`` as a plain dict."""
    catalogue = sorted(
        {rule.id: rule for rule in rules if rule.id}.values(),
        key=lambda rule: rule.id,
    )
    reported_ids = {d.rule for d in result.diagnostics}
    # Ids the engine emits without a registered rule (parse-error).
    extra_ids = sorted(reported_ids - {rule.id for rule in catalogue})
    driver_rules = [
        {
            "id": rule.id,
            "shortDescription": {"text": rule.description or rule.id},
        }
        for rule in catalogue
    ] + [
        {"id": rule_id, "shortDescription": {"text": rule_id}}
        for rule_id in extra_ids
    ]
    rule_index = {
        entry["id"]: index for index, entry in enumerate(driver_rules)
    }

    results = []
    for diag in result.diagnostics:
        results.append(
            {
                "ruleId": diag.rule,
                "ruleIndex": rule_index[diag.rule],
                "level": _LEVELS.get(diag.severity, "error"),
                "message": {"text": diag.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": diag.path,
                                "uriBaseId": "ROOT",
                            },
                            "region": {
                                "startLine": max(diag.line, 1),
                                "startColumn": max(diag.col, 1),
                            },
                        }
                    }
                ],
            }
        )

    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "architecture#static-analysis"
                        ),
                        "rules": driver_rules,
                    }
                },
                "originalUriBaseIds": {
                    "ROOT": {"uri": result.root.resolve().as_uri() + "/"}
                },
                "results": results,
            }
        ],
    }


def render_sarif(result: CheckResult, rules: Sequence[Rule]) -> str:
    """Byte-stable SARIF serialisation (sorted keys, trailing newline)."""
    return json.dumps(to_sarif(result, rules), indent=2, sort_keys=True) + "\n"
