"""Contract-version coupling: schema tables only change with a bump.

Every persisted or wire format in the tree is governed by module-level
contract tables (``*_FIELDS``, ``*_COLUMNS``, ``*_PHASES``) next to a
``*_SCHEMA_VERSION`` constant; consumers and stores key on the version
to refuse data from an incompatible build.  The coupling is a
convention — nothing stops an edit to ``SWEEP_META_FIELDS`` that
forgets to bump ``STORE_SCHEMA_VERSION``, silently serving old rows
under a new meaning.

This rule enforces the coupling against a committed snapshot
(``src/repro/check/contracts.json``): for every module with governed
tables it records each table's declaration hash (sha256 over the
``ast.dump`` of the value expression — defined even for computed
values) and the module's version constants.  On each run:

* a governed table whose hash differs from the snapshot while every
  version constant in its module still has its snapshotted value →
  **error** (the seeded-violation CI smoke);
* a table changed *with* a version bump, or added/removed → the
  snapshot is stale → **error** telling you to regenerate it with
  ``repro check --write-contracts`` (so the next edit diffs against
  the current truth — the two-step is the review trail);
* a module with governed tables but no version constant is tracked
  with ``versions: {}`` — only staleness is enforced.

The snapshot is discovered under the scan root (``**/check/
contracts.json``) so CI smoke trees built from copied sources carry
their own.  No snapshot found → the rule is silent (fixture subsets).
"""

from __future__ import annotations

import hashlib
import json
import re
from pathlib import Path
from typing import Any, Optional
from collections.abc import Iterable

from repro.check.engine import Diagnostic, FactRule, ProgramContext, collect_files
from repro.check.engine_types import Loc
from repro.check.program import ProgramFacts, extract_program_facts

__all__ = [
    "ContractVersionRule",
    "find_snapshot",
    "generate_snapshot",
    "write_snapshot",
]

#: Suffixes that make a module-level UPPER_CASE assignment a governed
#: contract table.
_TABLE_RE = re.compile(r"^[A-Z][A-Z0-9_]*(_FIELDS|_COLUMNS|_PHASES)$")

#: Suffix of the version constants the tables are coupled to.
_VERSION_RE = re.compile(r"^[A-Z][A-Z0-9_]*_SCHEMA_VERSION$")

SNAPSHOT_NAME = "contracts.json"


def _module_contracts(
    facts: ProgramFacts,
) -> tuple[dict[str, str], dict[str, Any], dict[str, int]]:
    """``(tables, versions, lines)`` of one module's governed symbols."""
    tables: dict[str, str] = {}
    versions: dict[str, Any] = {}
    lines: dict[str, int] = {}
    for info in facts.assigns:
        if _TABLE_RE.match(info.name):
            tables[info.name] = info.dump_sha
            lines[info.name] = info.loc.lineno
        elif _VERSION_RE.match(info.name):
            versions[info.name] = info.literal if info.is_literal else None
            lines[info.name] = info.loc.lineno
    return tables, versions, lines


def contract_map(files: Iterable[ProgramFacts]) -> dict[str, dict[str, Any]]:
    """``mod -> {"tables": {...}, "versions": {...}}`` for the tree.

    Keyed by the normalised module path (``mod``), so the map is
    identical whether the scan root was the repo, ``src/`` or the
    package directory.  The analyzer's own package is excluded — the
    snapshot lives there.
    """
    out: dict[str, dict[str, Any]] = {}
    for facts in files:
        if facts.mod.startswith("repro/check/"):
            continue
        tables, versions, _lines = _module_contracts(facts)
        if tables:
            out[facts.mod] = {"tables": tables, "versions": versions}
    return out


def find_snapshot(root: Path) -> Optional[Path]:
    """The committed contract snapshot under ``root``, if any."""
    root = Path(root)
    if root.is_file():
        return None
    candidates = sorted(
        p
        for p in root.rglob(SNAPSHOT_NAME)
        if p.parent.name == "check" and "__pycache__" not in p.parts
    )
    return candidates[0] if candidates else None


def generate_snapshot(root: Path) -> dict[str, Any]:
    """Compute the current contract snapshot document for ``root``."""
    files, _errors = collect_files(Path(root))
    facts = [
        extract_program_facts(f.rel, f.mod, f.tree) for f in files
    ]
    return {
        "comment": (
            "Committed contract snapshot for the contract-version rule. "
            "Regenerate with `repro check <root> --write-contracts` "
            "after any deliberate schema change (bump the module's "
            "*_SCHEMA_VERSION first)."
        ),
        "modules": contract_map(facts),
    }


def write_snapshot(root: Path, path: Optional[Path] = None) -> Path:
    """Write the snapshot for ``root``; returns the path written."""
    if path is None:
        path = find_snapshot(root)
    if path is None:
        raise FileNotFoundError(
            f"no existing {SNAPSHOT_NAME} under {root} and no explicit "
            "path given; create an empty one where it should live "
            "(conventionally <root>/repro/check/contracts.json)"
        )
    document = generate_snapshot(root)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


class ContractVersionRule(FactRule):
    id = "contract-version"
    description = (
        "edits to *_FIELDS/*_COLUMNS/*_PHASES contract tables must come "
        "with a *_SCHEMA_VERSION bump (checked against the committed "
        "contracts.json snapshot)"
    )

    def external_state(self, root: Path) -> str:
        """Hash of the snapshot file, folded into the run memo key."""
        path = find_snapshot(Path(root))
        if path is None:
            return "absent"
        try:
            return hashlib.sha256(path.read_bytes()).hexdigest()[:24]
        except OSError:
            return "unreadable"

    def check_facts(self, ctx: ProgramContext) -> Iterable[Diagnostic]:
        snapshot_path = find_snapshot(ctx.root)
        if snapshot_path is None:
            return  # no committed snapshot in this tree (fixture subset)
        try:
            snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            yield Diagnostic(
                path=snapshot_path.name,
                line=0,
                col=1,
                rule=self.id,
                message=(
                    f"contract snapshot {snapshot_path} is unreadable or "
                    "not valid JSON; regenerate it with "
                    "`repro check --write-contracts`"
                ),
            )
            return
        recorded: dict[str, Any] = snapshot.get("modules", {})

        current_by_mod: dict[str, tuple[ProgramFacts, dict, dict, dict]] = {}
        for rel in sorted(ctx.index.files):
            facts = ctx.index.files[rel]
            if facts.mod.startswith("repro/check/"):
                continue
            tables, versions, lines = _module_contracts(facts)
            if tables:
                current_by_mod[facts.mod] = (facts, tables, versions, lines)

        for mod in sorted(set(current_by_mod) | set(recorded)):
            if mod not in current_by_mod:
                # Module (or its last table) gone; the snapshot lies.
                yield Diagnostic(
                    path=snapshot_path.name,
                    line=0,
                    col=1,
                    rule=self.id,
                    message=(
                        f"snapshot records contract tables for {mod} but "
                        "the module no longer declares any; regenerate "
                        "the snapshot with `repro check --write-contracts`"
                    ),
                )
                continue
            facts, tables, versions, lines = current_by_mod[mod]
            entry = recorded.get(mod)
            if entry is None:
                yield self._stale(
                    facts, lines, min(tables),
                    f"{mod} declares contract tables that are not in the "
                    "snapshot",
                )
                continue
            old_tables: dict[str, str] = entry.get("tables", {})
            old_versions: dict[str, Any] = entry.get("versions", {})
            bumped = versions != old_versions

            for name in sorted(set(tables) | set(old_tables)):
                if name not in tables:
                    yield self._stale(
                        facts, lines, min(tables),
                        f"snapshot records {mod}:{name} but the table is "
                        "gone",
                    )
                elif name not in old_tables:
                    yield self._stale(
                        facts, lines, name,
                        f"new contract table {mod}:{name} is not in the "
                        "snapshot",
                    )
                elif tables[name] != old_tables[name]:
                    if bumped:
                        yield self._stale(
                            facts, lines, name,
                            f"{mod}:{name} changed (with a version bump) "
                            "but the snapshot still records the old shape",
                        )
                    elif not versions:
                        yield self._stale(
                            facts, lines, name,
                            f"{mod}:{name} changed; the module has no "
                            "*_SCHEMA_VERSION to couple to",
                        )
                    else:
                        held = ", ".join(
                            f"{k}={v}" for k, v in sorted(versions.items())
                        )
                        yield self.diag_at(
                            facts.rel,
                            _line_loc(lines, name),
                            f"contract table {name} changed but {held} "
                            "did not; bump the schema version, then "
                            "regenerate the snapshot with "
                            "`repro check --write-contracts`",
                        )

    def _stale(
        self,
        facts: ProgramFacts,
        lines: dict[str, int],
        anchor: str,
        what: str,
    ) -> Diagnostic:
        return self.diag_at(
            facts.rel,
            _line_loc(lines, anchor),
            f"{what}; regenerate the snapshot with "
            "`repro check --write-contracts`",
        )


def _line_loc(lines: dict[str, int], name: str) -> Loc:
    return Loc(lineno=lines.get(name, 0))
