"""Identity-axis completeness: every axis reaches every identity surface.

The repo's result identity is spread over five surfaces that never
import each other's field lists:

* ``SimRequest.canonical()`` — the serve fingerprint (and through it
  the dedup key, job id and result-store key);
* ``SimRequest.batch_key()`` — the coalescing key (canonical *minus*
  the evaluation points);
* ``SWEEP_META_FIELDS`` — the sweep-store manifest identity
  (``sweep_fingerprint`` hashes exactly these);
* ``COMMON_FIELDS`` — the fields stamped on every trace event;
* ``SimResult`` — the simulation outcome record.

PR 9 added the ``mechanism`` axis by hand-threading it through all of
them, across three schema-version bumps; a missed surface would have
silently served one mechanism's cached results for another.  This rule
makes the thread automatic: the **axes** are derived from
:class:`repro.experiments.executor.PointJob` (the unit of simulation
identity), and each axis must appear on each surface — with a short,
per-surface exemption table for axes a surface deliberately omits.
The diagnostic names the exact axis and the exact missing surface.

Exemptions are assertions, not escapes: an exemption for an axis the
surface *does* carry is itself flagged as stale, so the table cannot
rot.  A new :class:`~repro.experiments.context.RunContext` field that
is neither a known axis nor a known non-axis field is also flagged —
the author must classify it, which is the moment surface-threading
gets decided.

All facts come from the program index (class fields, literal tuples,
returned dict keys, ``payload.pop`` call sites), so the rule is fully
cached between runs.
"""

from __future__ import annotations

from typing import Optional
from collections.abc import Iterable

from repro.check.engine import Diagnostic, FactRule, ProgramContext
from repro.check.engine_types import Loc
from repro.check.program import ProgramFacts

__all__ = ["IdentityCompletenessRule"]

#: PointJob field -> axis name (the serve/store layers call the kernel
#: configuration "kernel", the executor calls it "config").
_AXIS_ALIASES = {"config": "kernel"}

#: RunContext fields that are deliberately *not* identity axes: they
#: configure how a run executes or observes, never what it computes.
#: A new RunContext field missing from both this list and the axes is
#: flagged until the author classifies it.
NON_AXIS_RUNCONTEXT = frozenset(
    {
        "executor",
        "full_grid",
        "k_steps",
        "levels",
        "metrics",
        "panel",
        "samples",
        "spans",
        "store",
    }
)


class _Surface:
    """One identity surface: a name, its members, and its exemptions."""

    def __init__(
        self,
        name: str,
        rel: str,
        loc: Loc,
        members: frozenset[str],
        exempt: dict[str, str],
        aliases: Optional[dict[str, str]] = None,
    ) -> None:
        self.name = name
        self.rel = rel
        self.loc = loc
        self.members = members
        #: axis -> one-line justification for why this surface omits it.
        self.exempt = exempt
        #: axis -> the member name this surface uses for it.
        self.aliases = aliases or {}

    def carries(self, axis: str) -> bool:
        return self.aliases.get(axis, axis) in self.members


#: Documented per-surface omissions.  Keep justifications short and
#: honest — they render verbatim in stale-exemption diagnostics.
_SURFACE_EXEMPTIONS: dict[str, dict[str, str]] = {
    "trace COMMON_FIELDS": {
        "engine": "traces only exist on the exact tier",
        "machine": "one trace file describes one machine run",
        "metric": "events carry raw counts, not derived metrics",
    },
    "SimResult": {
        "machine": "the caller owns the MachineConfig it simulated",
        "metric": "SimResult carries all counters; metrics are derived",
    },
}

#: Per-surface member-name aliases for axes.
_SURFACE_ALIASES: dict[str, dict[str, str]] = {
    "SimResult": {"kernel": "name"},
}


class IdentityCompletenessRule(FactRule):
    id = "identity-completeness"
    description = (
        "every PointJob identity axis must reach every identity "
        "surface (serve fingerprint, batch key, sweep-store meta, "
        "trace common fields, SimResult)"
    )

    def check_facts(self, ctx: ProgramContext) -> Iterable[Diagnostic]:
        axes = self._axes(ctx)
        if axes is None:
            return  # no PointJob in this tree (fixture subset)
        axis_names, job_rel, job_loc = axes

        yield from self._check_runcontext(ctx, axis_names)

        surfaces = list(self._surfaces(ctx))
        for surface in surfaces:
            for axis in sorted(axis_names):
                exempt_reason = surface.exempt.get(axis)
                if surface.carries(axis):
                    if exempt_reason is not None:
                        yield self.diag_at(
                            surface.rel,
                            surface.loc,
                            f"stale exemption: surface {surface.name} "
                            f"declares axis {axis!r} exempt "
                            f"({exempt_reason}) but carries it; remove "
                            "the exemption from "
                            "repro.check.identity._SURFACE_EXEMPTIONS",
                        )
                    continue
                if exempt_reason is not None:
                    continue
                member = surface.aliases.get(axis, axis)
                shown = f" (as {member!r})" if member != axis else ""
                yield self.diag_at(
                    surface.rel,
                    surface.loc,
                    f"identity axis {axis!r} is missing from surface "
                    f"{surface.name}{shown}; requests differing only in "
                    f"{axis!r} would collide on this surface — add the "
                    "field or document an exemption in "
                    "repro.check.identity._SURFACE_EXEMPTIONS",
                )

        yield from self._check_batch_key(ctx, axis_names)

    # -- axis derivation --------------------------------------------------

    def _axes(
        self, ctx: ProgramContext
    ) -> Optional[tuple[frozenset[str], str, Loc]]:
        for facts, cls in ctx.index.find_class("PointJob"):
            axes = frozenset(
                _AXIS_ALIASES.get(name, name) for name in cls.field_names()
            )
            if axes:
                return axes, facts.rel, cls.loc
        return None

    def _check_runcontext(
        self, ctx: ProgramContext, axes: frozenset[str]
    ) -> Iterable[Diagnostic]:
        for facts, cls in ctx.index.find_class("RunContext"):
            for field_info in cls.fields:
                name = field_info.name
                if name in axes or name in NON_AXIS_RUNCONTEXT:
                    continue
                yield self.diag_at(
                    facts.rel,
                    field_info.loc,
                    f"new RunContext field {name!r} is neither a PointJob "
                    "identity axis nor a declared non-axis field; either "
                    "thread it through every identity surface (and add "
                    "it to PointJob) or add it to "
                    "repro.check.identity.NON_AXIS_RUNCONTEXT",
                )

    # -- surface discovery ------------------------------------------------

    def _surfaces(self, ctx: ProgramContext) -> Iterable[_Surface]:
        surface = self._canonical_surface(ctx)
        if surface is not None:
            yield surface
        surface = self._assign_surface(
            ctx, "SWEEP_META_FIELDS", "store SWEEP_META_FIELDS"
        )
        if surface is not None:
            yield surface
        surface = self._assign_surface(
            ctx, "COMMON_FIELDS", "trace COMMON_FIELDS"
        )
        if surface is not None:
            yield surface
        surface = self._class_surface(ctx, "SimResult")
        if surface is not None:
            yield surface

    def _canonical_surface(self, ctx: ProgramContext) -> Optional[_Surface]:
        for facts, fn in ctx.index.find_function("canonical", cls="SimRequest"):
            if fn.returned_dict_keys:
                return _Surface(
                    name="serve SimRequest.canonical() (fingerprint)",
                    rel=facts.rel,
                    loc=fn.loc,
                    members=frozenset(fn.returned_dict_keys),
                    exempt=_SURFACE_EXEMPTIONS.get("serve", {}),
                )
        return None

    def _assign_surface(
        self, ctx: ProgramContext, symbol: str, name: str
    ) -> Optional[_Surface]:
        for facts, info in ctx.index.find_assign(symbol):
            if info.is_literal and isinstance(info.literal, tuple):
                return _Surface(
                    name=name,
                    rel=facts.rel,
                    loc=info.loc,
                    members=frozenset(
                        m for m in info.literal if isinstance(m, str)
                    ),
                    exempt=_SURFACE_EXEMPTIONS.get(name, {}),
                    aliases=_SURFACE_ALIASES.get(name),
                )
        return None

    def _class_surface(
        self, ctx: ProgramContext, class_name: str
    ) -> Optional[_Surface]:
        for facts, cls in ctx.index.find_class(class_name):
            if cls.fields:
                return _Surface(
                    name=class_name,
                    rel=facts.rel,
                    loc=cls.loc,
                    members=frozenset(cls.field_names()),
                    exempt=_SURFACE_EXEMPTIONS.get(class_name, {}),
                    aliases=_SURFACE_ALIASES.get(class_name),
                )
        return None

    # -- batch key --------------------------------------------------------

    def _check_batch_key(
        self, ctx: ProgramContext, axes: frozenset[str]
    ) -> Iterable[Diagnostic]:
        """``batch_key`` may pop evaluation fields, never identity axes.

        The coalescing key is the canonical form minus the evaluation
        points; popping an axis would coalesce requests whose results
        must differ.
        """
        for facts, fn in ctx.index.find_function("batch_key", cls="SimRequest"):
            for call in fn.calls:
                if not call.callee.endswith(".pop"):
                    continue
                popped = call.first_str_arg
                if popped is not None and popped in axes:
                    yield self.diag_at(
                        facts.rel,
                        call.loc,
                        f"batch_key() pops identity axis {popped!r} from "
                        "the canonical payload; requests differing only "
                        f"in {popped!r} would coalesce into one batch "
                        "and share results",
                    )
