"""Diagnostic baseline: CI gates on *new* findings only.

A baseline file records the known diagnostics of a tree so a newly
enabled rule family (or a newly sharpened rule) does not require
fixing every historical finding before it can gate CI.  Entries are
keyed by ``(rule, path, message)`` — deliberately **line-insensitive**,
so unrelated edits that shift a known finding by a few lines do not
resurrect it; a finding only counts as new when its rule, file or
message text actually changes.

Identical findings repeated in one file (same rule + message on two
lines) are matched by count: the baseline stores how many there were,
and only occurrences beyond that count are new.

The file is committed (``check-baseline.json``), regenerated with
``repro check --write-baseline``, and read with ``repro check
--baseline check-baseline.json``.  An empty or missing ``entries``
list gates on everything — which is the desired end state: shrink the
baseline to empty as findings get fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.check.engine import Diagnostic

__all__ = [
    "BASELINE_SCHEMA",
    "baseline_key",
    "filter_new",
    "load_baseline",
    "render_baseline",
]

BASELINE_SCHEMA = 1


def baseline_key(diag: Diagnostic) -> tuple[str, str, str]:
    return (diag.rule, diag.path, diag.message)


def load_baseline(path: Path) -> Counter:
    """The baseline as a multiset of ``(rule, path, message)`` keys.

    Raises:
        ValueError: unreadable file, bad JSON, or wrong schema.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValueError(f"cannot read baseline {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ValueError(f"baseline {path} is not valid JSON: {error}") from None
    if not isinstance(document, dict) or document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path}: expected object with schema={BASELINE_SCHEMA}"
        )
    known: Counter = Counter()
    for entry in document.get("entries", []):
        known[(entry["rule"], entry["path"], entry["message"])] += int(
            entry.get("count", 1)
        )
    return known


def filter_new(
    diagnostics: Sequence[Diagnostic], known: Counter
) -> tuple[list[Diagnostic], int]:
    """``(new_diagnostics, matched_count)`` against a baseline multiset."""
    remaining = Counter(known)
    new: list[Diagnostic] = []
    matched = 0
    for diag in diagnostics:
        key = baseline_key(diag)
        if remaining[key] > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(diag)
    return new, matched


def render_baseline(diagnostics: Iterable[Diagnostic]) -> str:
    """Byte-stable baseline serialisation for the current findings."""
    counts = Counter(baseline_key(d) for d in diagnostics)
    entries = [
        {"rule": rule, "path": path, "message": message, "count": count}
        for (rule, path, message), count in sorted(counts.items())
    ]
    document = {
        "comment": (
            "Known diagnostics `repro check --baseline` tolerates; CI "
            "gates on findings NOT in this list. Regenerate with "
            "`repro check --write-baseline` and shrink toward empty."
        ),
        "schema": BASELINE_SCHEMA,
        "entries": entries,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
