"""Schema drift: emit sites, consumers and the trace schema must agree.

The trace schema (``EVENT_FIELDS`` in :mod:`repro.obs.trace`) is the
contract between three parties that never import each other's string
literals: the simulator's ``Instrumentation.emit`` call sites, the
versioned JSONL validator, and the offline consumers
(:mod:`repro.obs.analyze`, :mod:`repro.obs.chrometrace`).  A renamed
event or counter slips through unit tests easily — the producer and
consumer each stay self-consistent while silently disagreeing.  This
project-wide rule extracts all three vocabularies statically and
cross-checks them **in both directions**:

Events
    * every emitted event name must exist in ``EVENT_FIELDS``;
    * every emit site must pass the event's required fields as
      keywords (skipped when the site splats ``**kwargs``) and must
      not override the stamped common fields (``cycle``/``event``/
      ``kernel``);
    * every schema event must be emitted somewhere (skipped when an
      emit site's event name could not be resolved — an unresolved
      producer could be the missing one);
    * every consumed event name must exist in the schema.

Metrics
    * every metric name a consumer reads (``counters.get("...")`` or a
      ``KEY_COUNTERS`` table) must be produced by some
      ``MetricsRegistry`` ``counter``/``gauge``/``histogram`` call
      site.  Dynamic producer names (f-strings like
      ``f"vpu_ops_{kind}"``) count as prefix wildcards.  The converse
      (produced-but-unconsumed) is *not* an error: every metric is
      exported wholesale via ``--metrics`` and ``/metrics``.

Sweep store
    The columnar sweep store has the same three-party shape: the
    producer/consumer contract tables (``SWEEP_COLUMNS``,
    ``SWEEP_META_FIELDS``, ``QUERY_FIELDS`` in
    :mod:`repro.store.schema`), the segment writer, and the query/CSV
    consumers.  The rule cross-checks them:

    * the tables must be internally consistent — every ``QUERY_FIELDS``
      entry is a segment column or a meta field, and every segment
      column is queryable;
    * every literal segment-column subscript (``segment["..."]`` /
      ``_buffer["..."]``) in a store file must name a declared column,
      and every declared column must be read somewhere;
    * every literal query-row subscript (``row["..."]``) in a store
      file must name a ``QUERY_FIELDS`` entry.

Request log
    The serve-path telemetry contract (PR 8) has the same shape again:
    the request-log schema (``REQUEST_EVENT_FIELDS`` /
    ``REQLOG_COMMON_FIELDS`` / ``LATENCY_PHASES`` in
    :mod:`repro.obs.telemetry`), the ``log_event`` emit sites spread
    across the service, the HTTP handler and the sampler, and the
    offline consumer tables (``REQLOG_CONSUMED_EVENTS`` /
    ``REPORT_LATENCY_PHASES`` in :mod:`repro.obs.servereport`).
    Cross-checked in both directions:

    * every ``log_event("...")`` site names a schema event, passes the
      event's required fields as keywords (unless it splats
      ``**kwargs``) and never overrides the stamped common fields;
    * every schema event is logged somewhere *and* has a
      ``REQLOG_CONSUMED_EVENTS`` entry whose field tuple matches the
      schema exactly — serve-report silently dropping an event is
      drift too;
    * ``REPORT_LATENCY_PHASES`` and ``LATENCY_PHASES`` must be equal:
      a phase only one side knows about either never renders or can
      never carry a ``serve.latency.<phase>.*`` gauge.

Resolution is deliberately shallow: event-name arguments may be string
constants, conditional expressions over string constants, or local
names assigned from either (the ``bcache_hit``/``bcache_miss`` site in
``repro.core.lsu``).  Anything else is its own diagnostic rather than
a silent gap.
"""

from __future__ import annotations

import ast
from typing import Optional
from collections.abc import Iterable, Sequence

from repro.check.engine import (
    CheckedFile,
    Diagnostic,
    Rule,
    local_nodes,
    scope_nodes,
)

__all__ = ["SchemaDriftRule"]

#: Module-level dict tables whose keys are consumed event names.
CONSUMER_TABLES = ("_WINDOW_FIELD", "_EVENT_TID")

#: Module-level tuple/list tables whose items are consumed metric names.
METRIC_TABLES = ("KEY_COUNTERS",)

#: Receiver names whose ``.get("...")`` reads a trace-event count.
_EVENT_COUNT_RECEIVERS = ("event_counts", "counts")

#: Receiver names whose ``.get("...")`` reads a metric.
_METRIC_RECEIVERS = ("counters",)

#: ``MetricsRegistry`` factory methods that produce a named instrument.
_INSTRUMENT_FACTORIES = ("counter", "gauge", "histogram")

#: Subscript receivers whose literal keys are sweep-store segment
#: columns (the query engine's loaded NPZ and the writer's buffer).
_SEGMENT_RECEIVERS = ("segment", "_buffer")

#: Subscript receivers whose literal keys are query-row fields.
_ROW_RECEIVERS = ("row",)

#: Module prefix that marks a file as a sweep-store participant.
_STORE_MODULE_PREFIX = "repro/store/"


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _receiver_name(func: ast.expr) -> Optional[str]:
    """Terminal name of a method call's receiver: ``a.b.get`` → ``b``."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _string_values(node: ast.expr) -> Optional[set[str]]:
    """All string values a constant-ish expression can take, else None."""
    value = _const_str(node)
    if value is not None:
        return {value}
    if isinstance(node, ast.IfExp):
        body = _string_values(node.body)
        orelse = _string_values(node.orelse)
        if body is not None and orelse is not None:
            return body | orelse
    return None


class _EmitSite:
    """One ``*.emit(cycle, <event>, field=..., ...)`` call."""

    def __init__(
        self,
        checked: CheckedFile,
        node: ast.Call,
        events: Optional[set[str]],
        fields: set[str],
        has_star_kwargs: bool,
    ) -> None:
        self.checked = checked
        self.node = node
        self.events = events  # None: could not be resolved statically
        self.fields = fields
        self.has_star_kwargs = has_star_kwargs


def _resolve_event_arg(arg: ast.expr, scope: ast.AST) -> Optional[set[str]]:
    """Resolve an emit call's event argument to its string value(s).

    Handles constants, conditionals over constants, and a local name
    assigned (once) from either within the same function scope.
    """
    values = _string_values(arg)
    if values is not None:
        return values
    if not isinstance(arg, ast.Name):
        return None
    resolved: Optional[set[str]] = None
    for node in local_nodes(scope):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == arg.id:
                values = _string_values(node.value)
                if values is None or resolved is not None:
                    return None  # opaque value, or multiply assigned
                resolved = values
    return resolved


def _collect_emit_sites(files: Sequence[CheckedFile]) -> list[_EmitSite]:
    sites: list[_EmitSite] = []
    for checked in files:
        for scope in scope_nodes(checked.tree):
            for node in local_nodes(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
                    continue
                # Instrumentation.emit(cycle, event, **fields): two
                # positional args.  Single-arg sites are TraceSink.emit
                # (already-assembled dict) — a different protocol.
                if len(node.args) != 2:
                    continue
                fields = {kw.arg for kw in node.keywords if kw.arg is not None}
                sites.append(
                    _EmitSite(
                        checked,
                        node,
                        events=_resolve_event_arg(node.args[1], scope),
                        fields=fields,
                        has_star_kwargs=any(
                            kw.arg is None for kw in node.keywords
                        ),
                    )
                )
    return sites


def _find_schema(
    files: Sequence[CheckedFile],
) -> tuple[Optional[CheckedFile], dict[str, tuple[str, ...]], dict[str, int], tuple[str, ...]]:
    """Locate ``EVENT_FIELDS`` and ``COMMON_FIELDS`` declarations.

    Returns ``(file, event_fields, key_lines, common_fields)``;
    ``key_lines`` maps each event name to the line its schema entry
    sits on (where never-emitted diagnostics anchor).
    """
    for checked in files:
        event_fields: dict[str, tuple[str, ...]] = {}
        key_lines: dict[str, int] = {}
        common: tuple[str, ...] = ()
        found = False
        for node in checked.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "EVENT_FIELDS" and isinstance(value, ast.Dict):
                found = True
                for key, val in zip(value.keys, value.values):
                    name = _const_str(key) if key is not None else None
                    if name is None:
                        continue
                    fields = tuple(
                        field
                        for field in (
                            _const_str(item)
                            for item in getattr(val, "elts", ())
                        )
                        if field is not None
                    )
                    event_fields[name] = fields
                    key_lines[name] = key.lineno if key is not None else node.lineno
            elif target.id == "COMMON_FIELDS":
                common = tuple(
                    name
                    for name in (
                        _const_str(item) for item in getattr(value, "elts", ())
                    )
                    if name is not None
                )
        if found:
            return checked, event_fields, key_lines, common
    return None, {}, {}, ()


def _consumed_events(
    files: Sequence[CheckedFile],
) -> list[tuple[CheckedFile, ast.AST, str]]:
    """``(file, node, event)`` triples for every consumed event name.

    Only files that declare one of :data:`CONSUMER_TABLES` are treated
    as consumers — that keeps ``counts.get(...)`` in unrelated code
    from being misread as a trace-event access.
    """
    consumed: list[tuple[CheckedFile, ast.AST, str]] = []
    for checked in files:
        is_consumer = False
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in CONSUMER_TABLES
                    and isinstance(node.value, ast.Dict)
                ):
                    is_consumer = True
                    for key in node.value.keys:
                        name = _const_str(key) if key is not None else None
                        if name is not None:
                            consumed.append((checked, key, name))
        if not is_consumer:
            continue
        for node in ast.walk(checked.tree):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and _receiver_name(node.func) in _EVENT_COUNT_RECEIVERS
                    and node.args
                ):
                    name = _const_str(node.args[0])
                    if name is not None:
                        consumed.append((checked, node, name))
            elif isinstance(node, ast.Compare) and isinstance(node.left, ast.Name):
                if node.left.id not in ("kind", "event"):
                    continue
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.Eq, ast.NotEq)):
                        name = _const_str(comparator)
                        if name is not None:
                            consumed.append((checked, comparator, name))
                    elif isinstance(op, (ast.In, ast.NotIn)):
                        for item in getattr(comparator, "elts", ()):
                            name = _const_str(item)
                            if name is not None:
                                consumed.append((checked, item, name))
    return consumed


def _produced_metrics(
    files: Sequence[CheckedFile],
) -> tuple[set[str], set[str]]:
    """``(exact_names, prefixes)`` of metric-producing call sites."""
    exact: set[str] = set()
    prefixes: set[str] = set()
    for checked in files:
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _INSTRUMENT_FACTORIES
            ):
                continue
            arg = node.args[0]
            values = _string_values(arg)
            if values is not None:
                exact |= values
            elif isinstance(arg, ast.JoinedStr) and arg.values:
                head = arg.values[0]
                prefix = _const_str(head) if isinstance(head, ast.Constant) else None
                if prefix:
                    prefixes.add(prefix)
            # Non-literal names (registry plumbing like merge_snapshot
            # re-registering snapshot keys) are skipped, not errors.
    return exact, prefixes


def _consumed_metrics(
    files: Sequence[CheckedFile],
) -> list[tuple[CheckedFile, ast.AST, str]]:
    consumed: list[tuple[CheckedFile, ast.AST, str]] = []
    for checked in files:
        for node in ast.walk(checked.tree):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "get"
                    and _receiver_name(node.func) in _METRIC_RECEIVERS
                    and node.args
                ):
                    name = _const_str(node.args[0])
                    if name is not None:
                        consumed.append((checked, node, name))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in METRIC_TABLES
                    ):
                        for item in getattr(node.value, "elts", ()):
                            name = _const_str(item)
                            if name is not None:
                                consumed.append((checked, item, name))
    return consumed


def _subscript_receiver(node: ast.Subscript) -> Optional[str]:
    """Terminal name of a subscript's receiver: ``a.b["k"]`` → ``b``."""
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _tuple_strings(value: ast.expr) -> tuple[str, ...]:
    return tuple(
        name
        for name in (_const_str(item) for item in getattr(value, "elts", ()))
        if name is not None
    )


def _module_assign(
    node: ast.stmt,
) -> tuple[Optional[str], Optional[ast.expr]]:
    """``(name, value)`` of a module-level (ann-)assignment, else Nones."""
    target: Optional[ast.expr] = None
    value: Optional[ast.expr] = None
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target, value = node.targets[0], node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target, value = node.target, node.value
    if isinstance(target, ast.Name) and value is not None:
        return target.id, value
    return None, None


def _find_telemetry_tables(
    files: Sequence[CheckedFile],
) -> tuple[
    Optional[CheckedFile],
    dict[str, tuple[str, ...]],
    dict[str, int],
    tuple[str, ...],
    tuple[str, ...],
    int,
]:
    """Locate the request-log schema tables (one file declares all).

    Returns ``(file, event_fields, key_lines, common_fields,
    latency_phases, latency_line)``.
    """
    for checked in files:
        event_fields: dict[str, tuple[str, ...]] = {}
        key_lines: dict[str, int] = {}
        common: tuple[str, ...] = ()
        phases: tuple[str, ...] = ()
        phases_line = 0
        found = False
        for node in checked.tree.body:
            name, value = _module_assign(node)
            if name is None or value is None:
                continue
            if name == "REQUEST_EVENT_FIELDS" and isinstance(value, ast.Dict):
                found = True
                for key, val in zip(value.keys, value.values):
                    event = _const_str(key) if key is not None else None
                    if event is None:
                        continue
                    event_fields[event] = _tuple_strings(val)
                    key_lines[event] = (
                        key.lineno if key is not None else node.lineno
                    )
            elif name == "REQLOG_COMMON_FIELDS":
                common = _tuple_strings(value)
            elif name == "LATENCY_PHASES":
                phases = _tuple_strings(value)
                phases_line = node.lineno
        if found:
            return checked, event_fields, key_lines, common, phases, phases_line
    return None, {}, {}, (), (), 0


def _find_reqlog_consumers(
    files: Sequence[CheckedFile],
) -> tuple[
    Optional[CheckedFile],
    dict[str, tuple[str, ...]],
    dict[str, int],
    tuple[str, ...],
    int,
]:
    """Locate ``REQLOG_CONSUMED_EVENTS`` and ``REPORT_LATENCY_PHASES``.

    Returns ``(file, consumed_fields, key_lines, report_phases,
    report_line)``; the phase table is read from the same file as the
    event table (the serve-report module declares both).
    """
    for checked in files:
        consumed: dict[str, tuple[str, ...]] = {}
        key_lines: dict[str, int] = {}
        report_phases: tuple[str, ...] = ()
        report_line = 0
        found = False
        for node in checked.tree.body:
            name, value = _module_assign(node)
            if name is None or value is None:
                continue
            if name == "REQLOG_CONSUMED_EVENTS" and isinstance(value, ast.Dict):
                found = True
                for key, val in zip(value.keys, value.values):
                    event = _const_str(key) if key is not None else None
                    if event is None:
                        continue
                    consumed[event] = _tuple_strings(val)
                    key_lines[event] = (
                        key.lineno if key is not None else node.lineno
                    )
            elif name == "REPORT_LATENCY_PHASES":
                report_phases = _tuple_strings(value)
                report_line = node.lineno
        if found:
            return checked, consumed, key_lines, report_phases, report_line
    return None, {}, {}, (), 0


def _collect_log_event_sites(files: Sequence[CheckedFile]) -> list[_EmitSite]:
    """Every ``*.log_event(<event>, field=...)`` request-log emit site."""
    sites: list[_EmitSite] = []
    for checked in files:
        for scope in scope_nodes(checked.tree):
            for node in local_nodes(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr == "log_event"
                ):
                    continue
                if len(node.args) != 1:
                    continue
                sites.append(
                    _EmitSite(
                        checked,
                        node,
                        events=_resolve_event_arg(node.args[0], scope),
                        fields={
                            kw.arg
                            for kw in node.keywords
                            if kw.arg is not None
                        },
                        has_star_kwargs=any(
                            kw.arg is None for kw in node.keywords
                        ),
                    )
                )
    return sites


def _find_store_schema(
    files: Sequence[CheckedFile],
) -> tuple[
    Optional[CheckedFile],
    dict[str, int],
    tuple[str, ...],
    int,
    tuple[str, ...],
]:
    """Locate the sweep-store contract tables.

    Returns ``(file, columns, query_fields, query_line, meta_fields)``;
    ``columns`` maps each ``SWEEP_COLUMNS`` key to its declaration line.
    """
    for checked in files:
        columns: dict[str, int] = {}
        query_fields: tuple[str, ...] = ()
        query_line = 0
        meta_fields: tuple[str, ...] = ()
        found = False
        for node in checked.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "SWEEP_COLUMNS" and isinstance(value, ast.Dict):
                found = True
                for key in value.keys:
                    name = _const_str(key) if key is not None else None
                    if name is not None:
                        columns[name] = key.lineno if key is not None else node.lineno
            elif target.id == "QUERY_FIELDS":
                query_fields = _tuple_strings(value)
                query_line = node.lineno
            elif target.id == "SWEEP_META_FIELDS":
                meta_fields = _tuple_strings(value)
        if found:
            return checked, columns, query_fields, query_line, meta_fields
    return None, {}, (), 0, ()


def _store_field_reads(
    files: Sequence[CheckedFile],
) -> tuple[
    list[tuple[CheckedFile, ast.AST, str]],
    list[tuple[CheckedFile, ast.AST, str]],
]:
    """``(segment_reads, row_reads)`` from sweep-store participant files.

    Only files under :data:`_STORE_MODULE_PREFIX` or importing from
    ``repro.store`` count — that keeps ``row["count"]`` in unrelated
    code (the span profiler's table rows) from being misread as a
    query-row access.
    """
    segment_reads: list[tuple[CheckedFile, ast.AST, str]] = []
    row_reads: list[tuple[CheckedFile, ast.AST, str]] = []
    for checked in files:
        is_store = checked.mod.startswith(_STORE_MODULE_PREFIX) or any(
            isinstance(node, ast.ImportFrom)
            and (node.module or "").startswith("repro.store")
            for node in ast.walk(checked.tree)
        )
        if not is_store:
            continue
        for node in ast.walk(checked.tree):
            if not isinstance(node, ast.Subscript):
                continue
            name = _const_str(node.slice)
            if name is None:
                continue
            receiver = _subscript_receiver(node)
            if receiver in _SEGMENT_RECEIVERS:
                segment_reads.append((checked, node, name))
            elif receiver in _ROW_RECEIVERS:
                row_reads.append((checked, node, name))
    return segment_reads, row_reads


class SchemaDriftRule(Rule):
    id = "schema-drift"
    description = (
        "trace events/metrics drifting from the versioned schema and "
        "its consumers (checked in both directions)"
    )
    project_wide = True

    def check_project(
        self, files: Sequence[CheckedFile]
    ) -> Iterable[Diagnostic]:
        files = [f for f in files if not f.mod.startswith("repro/check/")]
        yield from self._check_store(files)
        yield from self._check_telemetry(files)
        schema_file, event_fields, key_lines, common = _find_schema(files)
        if schema_file is None:
            return  # nothing to check against (e.g. a fixture subset)

        sites = _collect_emit_sites(files)
        emitted: set[str] = set()
        any_unresolved = False
        for site in sites:
            if site.events is None:
                any_unresolved = True
                yield self.diagnostic(
                    site.checked,
                    site.node,
                    "emit() event name could not be resolved statically; "
                    "use a string literal, a conditional over literals, "
                    "or a single local assignment of those",
                )
                continue
            emitted |= site.events
            for event in sorted(site.events):
                required = event_fields.get(event)
                if required is None:
                    yield self.diagnostic(
                        site.checked,
                        site.node,
                        f"emits event {event!r} which is not in the trace "
                        "schema (EVENT_FIELDS); add it to the schema or "
                        "fix the name",
                    )
                    continue
                overridden = site.fields & set(common)
                for name in sorted(overridden):
                    yield self.diagnostic(
                        site.checked,
                        site.node,
                        f"emit({event!r}) passes common field {name!r} as "
                        "a keyword; Instrumentation.emit stamps it",
                    )
                if not site.has_star_kwargs:
                    missing = set(required) - site.fields
                    for name in sorted(missing):
                        yield self.diagnostic(
                            site.checked,
                            site.node,
                            f"emit({event!r}) is missing required field "
                            f"{name!r} (schema: {required})",
                        )

        if not any_unresolved:
            for event in sorted(set(event_fields) - emitted):
                yield Diagnostic(
                    path=schema_file.rel,
                    line=key_lines.get(event, 0),
                    col=1,
                    rule=self.id,
                    message=(
                        f"schema event {event!r} is never emitted by any "
                        "Instrumentation.emit site; dead schema entries "
                        "hide drift — remove it or emit it"
                    ),
                    severity=self.severity,
                )

        for checked, node, name in _consumed_events(files):
            if name not in event_fields:
                yield self.diagnostic(
                    checked,
                    node,
                    f"consumes event {name!r} which is not in the trace "
                    "schema (EVENT_FIELDS); nothing can ever produce it",
                )

        produced, prefixes = _produced_metrics(files)
        for checked, node, name in _consumed_metrics(files):
            if name in produced:
                continue
            if any(name.startswith(prefix) for prefix in prefixes):
                continue
            yield self.diagnostic(
                checked,
                node,
                f"reads metric {name!r} which no MetricsRegistry "
                "counter/gauge/histogram call site produces",
            )

    def _check_telemetry(
        self, files: Sequence[CheckedFile]
    ) -> Iterable[Diagnostic]:
        (
            schema_file,
            event_fields,
            key_lines,
            common,
            phases,
            phases_line,
        ) = _find_telemetry_tables(files)
        if schema_file is None:
            return  # no request-log schema in this file set

        emitted: set[str] = set()
        any_unresolved = False
        for site in _collect_log_event_sites(files):
            if site.events is None:
                any_unresolved = True
                yield self.diagnostic(
                    site.checked,
                    site.node,
                    "log_event() event name could not be resolved "
                    "statically; use a string literal, a conditional over "
                    "literals, or a single local assignment of those",
                )
                continue
            emitted |= site.events
            for event in sorted(site.events):
                required = event_fields.get(event)
                if required is None:
                    yield self.diagnostic(
                        site.checked,
                        site.node,
                        f"logs request event {event!r} which is not in the "
                        "request-log schema (REQUEST_EVENT_FIELDS); add it "
                        "to the schema or fix the name",
                    )
                    continue
                for name in sorted(site.fields & set(common)):
                    yield self.diagnostic(
                        site.checked,
                        site.node,
                        f"log_event({event!r}) passes common field {name!r} "
                        "as a keyword; RequestLog stamps it",
                    )
                if not site.has_star_kwargs:
                    for name in sorted(set(required) - site.fields):
                        yield self.diagnostic(
                            site.checked,
                            site.node,
                            f"log_event({event!r}) is missing required "
                            f"field {name!r} (schema: {required})",
                        )

        if not any_unresolved:
            for event in sorted(set(event_fields) - emitted):
                yield Diagnostic(
                    path=schema_file.rel,
                    line=key_lines.get(event, 0),
                    col=1,
                    rule=self.id,
                    message=(
                        f"request-log schema event {event!r} is never "
                        "logged by any log_event site; dead schema entries "
                        "hide drift — remove it or emit it"
                    ),
                    severity=self.severity,
                )

        (
            consumer_file,
            consumed,
            consumed_lines,
            report_phases,
            report_line,
        ) = _find_reqlog_consumers(files)
        if consumer_file is None:
            return  # no serve-report in this file set

        for event in sorted(consumed):
            if event not in event_fields:
                yield Diagnostic(
                    path=consumer_file.rel,
                    line=consumed_lines.get(event, 0),
                    col=1,
                    rule=self.id,
                    message=(
                        f"REQLOG_CONSUMED_EVENTS entry {event!r} is not in "
                        "the request-log schema (REQUEST_EVENT_FIELDS); "
                        "nothing can ever produce it"
                    ),
                    severity=self.severity,
                )
            elif consumed[event] != event_fields[event]:
                yield Diagnostic(
                    path=consumer_file.rel,
                    line=consumed_lines.get(event, 0),
                    col=1,
                    rule=self.id,
                    message=(
                        f"REQLOG_CONSUMED_EVENTS[{event!r}] lists fields "
                        f"{consumed[event]} but the schema requires "
                        f"{event_fields[event]}"
                    ),
                    severity=self.severity,
                )
        for event in sorted(set(event_fields) - set(consumed)):
            yield Diagnostic(
                path=schema_file.rel,
                line=key_lines.get(event, 0),
                col=1,
                rule=self.id,
                message=(
                    f"request-log schema event {event!r} is missing from "
                    "REQLOG_CONSUMED_EVENTS; serve-report would silently "
                    "drop it"
                ),
                severity=self.severity,
            )

        for phase in report_phases:
            if phase not in phases:
                yield Diagnostic(
                    path=consumer_file.rel,
                    line=report_line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"REPORT_LATENCY_PHASES entry {phase!r} is not in "
                        "LATENCY_PHASES; no serve.latency gauge or phase "
                        "span can ever carry it"
                    ),
                    severity=self.severity,
                )
        for phase in phases:
            if phase not in report_phases:
                yield Diagnostic(
                    path=schema_file.rel,
                    line=phases_line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"latency phase {phase!r} is missing from "
                        "REPORT_LATENCY_PHASES; serve-report would never "
                        "render its percentiles"
                    ),
                    severity=self.severity,
                )

    def _check_store(
        self, files: Sequence[CheckedFile]
    ) -> Iterable[Diagnostic]:
        store_file, columns, query_fields, query_line, meta = (
            _find_store_schema(files)
        )
        if store_file is None:
            return  # no sweep store in this file set

        known_query = set(columns) | set(meta)
        for field in query_fields:
            if field not in known_query:
                yield Diagnostic(
                    path=store_file.rel,
                    line=query_line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"QUERY_FIELDS entry {field!r} is neither a "
                        "SWEEP_COLUMNS column nor a SWEEP_META_FIELDS "
                        "field; no query row can ever carry it"
                    ),
                    severity=self.severity,
                )
        for column, line in columns.items():
            if column not in query_fields:
                yield Diagnostic(
                    path=store_file.rel,
                    line=line,
                    col=1,
                    rule=self.id,
                    message=(
                        f"segment column {column!r} is missing from "
                        "QUERY_FIELDS; it would be stored but never "
                        "queryable or exported"
                    ),
                    severity=self.severity,
                )

        segment_reads, row_reads = _store_field_reads(files)
        consumed_columns: set[str] = set()
        for checked, node, name in segment_reads:
            consumed_columns.add(name)
            if name not in columns:
                yield self.diagnostic(
                    checked,
                    node,
                    f"reads segment column {name!r} which is not in "
                    "SWEEP_COLUMNS; no segment ever stores it",
                )
        for checked, node, name in row_reads:
            if name not in query_fields:
                yield self.diagnostic(
                    checked,
                    node,
                    f"reads query-row field {name!r} which is not in "
                    "QUERY_FIELDS; no query row ever carries it",
                )
        if segment_reads:
            for column in sorted(set(columns) - consumed_columns):
                yield Diagnostic(
                    path=store_file.rel,
                    line=columns[column],
                    col=1,
                    rule=self.id,
                    message=(
                        f"segment column {column!r} is never read by any "
                        "segment/_buffer subscript; dead columns hide "
                        "drift — remove it or consume it"
                    ),
                    severity=self.severity,
                )
