"""Schema drift: emit sites, consumers and the trace schema must agree.

The trace schema (``EVENT_FIELDS`` in :mod:`repro.obs.trace`) is the
contract between three parties that never import each other's string
literals: the simulator's ``Instrumentation.emit`` call sites, the
versioned JSONL validator, and the offline consumers
(:mod:`repro.obs.analyze`, :mod:`repro.obs.chrometrace`).  A renamed
event or counter slips through unit tests easily — the producer and
consumer each stay self-consistent while silently disagreeing.  This
project-wide rule extracts all three vocabularies statically and
cross-checks them **in both directions**:

Events
    * every emitted event name must exist in ``EVENT_FIELDS``;
    * every emit site must pass the event's required fields as
      keywords (skipped when the site splats ``**kwargs``) and must
      not override the stamped common fields (``cycle``/``event``/
      ``kernel``);
    * every schema event must be emitted somewhere (skipped when an
      emit site's event name could not be resolved — an unresolved
      producer could be the missing one);
    * every consumed event name must exist in the schema.

Metrics
    * every metric name a consumer reads (``counters.get("...")`` or a
      ``KEY_COUNTERS`` table) must be produced by some
      ``MetricsRegistry`` ``counter``/``gauge``/``histogram`` call
      site.  Dynamic producer names (f-strings like
      ``f"vpu_ops_{kind}"``) count as prefix wildcards.  The converse
      (produced-but-unconsumed) is *not* an error: every metric is
      exported wholesale via ``--metrics`` and ``/metrics``.

Sweep store
    The columnar sweep store has the same three-party shape: the
    producer/consumer contract tables (``SWEEP_COLUMNS``,
    ``SWEEP_META_FIELDS``, ``QUERY_FIELDS`` in
    :mod:`repro.store.schema`), the segment writer, and the query/CSV
    consumers.  The rule cross-checks them:

    * the tables must be internally consistent — every ``QUERY_FIELDS``
      entry is a segment column or a meta field, and every segment
      column is queryable;
    * every literal segment-column subscript (``segment["..."]`` /
      ``_buffer["..."]``) in a store file must name a declared column,
      and every declared column must be read somewhere;
    * every literal query-row subscript (``row["..."]``) in a store
      file must name a ``QUERY_FIELDS`` entry.

Request log
    The serve-path telemetry contract (PR 8) has the same shape again:
    the request-log schema (``REQUEST_EVENT_FIELDS`` /
    ``REQLOG_COMMON_FIELDS`` / ``LATENCY_PHASES`` in
    :mod:`repro.obs.telemetry`), the ``log_event`` emit sites spread
    across the service, the HTTP handler and the sampler, and the
    offline consumer tables (``REQLOG_CONSUMED_EVENTS`` /
    ``REPORT_LATENCY_PHASES`` in :mod:`repro.obs.servereport`).
    Cross-checked in both directions:

    * every ``log_event("...")`` site names a schema event, passes the
      event's required fields as keywords (unless it splats
      ``**kwargs``) and never overrides the stamped common fields;
    * every schema event is logged somewhere *and* has a
      ``REQLOG_CONSUMED_EVENTS`` entry whose field tuple matches the
      schema exactly — serve-report silently dropping an event is
      drift too;
    * ``REPORT_LATENCY_PHASES`` and ``LATENCY_PHASES`` must be equal:
      a phase only one side knows about either never renders or can
      never carry a ``serve.latency.<phase>.*`` gauge.

Resolution is deliberately shallow: event-name arguments may be string
constants, conditional expressions over string constants, or local
names assigned from either (the ``bcache_hit``/``bcache_miss`` site in
``repro.core.lsu``).  Anything else is its own diagnostic rather than
a silent gap.

Engine v2 port: this rule is a :class:`~repro.check.engine.FactRule`.
:meth:`SchemaDriftRule.extract` distils one file into a picklable
:class:`SchemaDriftFacts` record (all three vocabularies' sites, with
:class:`~repro.check.engine_types.Loc` anchors instead of AST nodes);
:meth:`SchemaDriftRule.check_facts` cross-references the records.
Unchanged files thus never need re-parsing on warm runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional
from collections.abc import Iterable

from repro.check.engine import (
    CheckedFile,
    Diagnostic,
    FactRule,
    ProgramContext,
    local_nodes,
    scope_nodes,
)
from repro.check.engine_types import Loc

__all__ = ["SchemaDriftRule"]

#: Module-level dict tables whose keys are consumed event names.
CONSUMER_TABLES = ("_WINDOW_FIELD", "_EVENT_TID")

#: Module-level tuple/list tables whose items are consumed metric names.
METRIC_TABLES = ("KEY_COUNTERS",)

#: Receiver names whose ``.get("...")`` reads a trace-event count.
_EVENT_COUNT_RECEIVERS = ("event_counts", "counts")

#: Receiver names whose ``.get("...")`` reads a metric.
_METRIC_RECEIVERS = ("counters",)

#: ``MetricsRegistry`` factory methods that produce a named instrument.
_INSTRUMENT_FACTORIES = ("counter", "gauge", "histogram")

#: Subscript receivers whose literal keys are sweep-store segment
#: columns (the query engine's loaded NPZ and the writer's buffer).
_SEGMENT_RECEIVERS = ("segment", "_buffer")

#: Subscript receivers whose literal keys are query-row fields.
_ROW_RECEIVERS = ("row",)

#: Module prefix that marks a file as a sweep-store participant.
_STORE_MODULE_PREFIX = "repro/store/"


def _const_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _receiver_name(func: ast.expr) -> Optional[str]:
    """Terminal name of a method call's receiver: ``a.b.get`` → ``b``."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _string_values(node: ast.expr) -> Optional[set[str]]:
    """All string values a constant-ish expression can take, else None."""
    value = _const_str(node)
    if value is not None:
        return {value}
    if isinstance(node, ast.IfExp):
        body = _string_values(node.body)
        orelse = _string_values(node.orelse)
        if body is not None and orelse is not None:
            return body | orelse
    return None


def _loc(node: ast.AST) -> Loc:
    return Loc(
        lineno=getattr(node, "lineno", 0),
        col_offset=getattr(node, "col_offset", -1),
    )


@dataclass
class EmitSiteFact:
    """One ``*.emit(cycle, <event>, field=...)`` / ``log_event`` call."""

    loc: Loc
    #: Statically resolved event name(s); ``None`` when unresolvable.
    events: Optional[tuple[str, ...]]
    fields: tuple[str, ...]
    has_star_kwargs: bool


@dataclass
class TraceSchemaFact:
    """``EVENT_FIELDS`` + ``COMMON_FIELDS`` of the trace schema module."""

    event_fields: dict[str, tuple[str, ...]]
    key_lines: dict[str, int]
    common: tuple[str, ...]


@dataclass
class TelemetryTablesFact:
    """Request-log schema tables (``repro.obs.telemetry``)."""

    event_fields: dict[str, tuple[str, ...]]
    key_lines: dict[str, int]
    common: tuple[str, ...]
    phases: tuple[str, ...]
    phases_line: int


@dataclass
class ReqlogConsumerFact:
    """``REQLOG_CONSUMED_EVENTS`` / ``REPORT_LATENCY_PHASES`` tables."""

    consumed: dict[str, tuple[str, ...]]
    key_lines: dict[str, int]
    report_phases: tuple[str, ...]
    report_line: int


@dataclass
class StoreSchemaFact:
    """Sweep-store contract tables (``repro.store.schema``)."""

    columns: dict[str, int]
    query_fields: tuple[str, ...]
    query_line: int
    meta_fields: tuple[str, ...]


@dataclass
class SchemaDriftFacts:
    """Everything one file contributes to the drift cross-check."""

    emit_sites: list[EmitSiteFact] = field(default_factory=list)
    log_sites: list[EmitSiteFact] = field(default_factory=list)
    trace_schema: Optional[TraceSchemaFact] = None
    #: ``(loc, event)`` of consumed trace-event names.
    consumed_events: list[tuple[Loc, str]] = field(default_factory=list)
    produced_exact: tuple[str, ...] = ()
    produced_prefixes: tuple[str, ...] = ()
    consumed_metrics: list[tuple[Loc, str]] = field(default_factory=list)
    telemetry: Optional[TelemetryTablesFact] = None
    reqlog: Optional[ReqlogConsumerFact] = None
    store: Optional[StoreSchemaFact] = None
    segment_reads: list[tuple[Loc, str]] = field(default_factory=list)
    row_reads: list[tuple[Loc, str]] = field(default_factory=list)

    def empty(self) -> bool:
        return not any(
            (
                self.emit_sites,
                self.log_sites,
                self.trace_schema,
                self.consumed_events,
                self.produced_exact,
                self.produced_prefixes,
                self.consumed_metrics,
                self.telemetry,
                self.reqlog,
                self.store,
                self.segment_reads,
                self.row_reads,
            )
        )


def _resolve_event_arg(arg: ast.expr, scope: ast.AST) -> Optional[set[str]]:
    """Resolve an emit call's event argument to its string value(s).

    Handles constants, conditionals over constants, and a local name
    assigned (once) from either within the same function scope.
    """
    values = _string_values(arg)
    if values is not None:
        return values
    if not isinstance(arg, ast.Name):
        return None
    resolved: Optional[set[str]] = None
    for node in local_nodes(scope):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == arg.id:
                values = _string_values(node.value)
                if values is None or resolved is not None:
                    return None  # opaque value, or multiply assigned
                resolved = values
    return resolved


def _site_fact(node: ast.Call, scope: ast.AST, event_arg: ast.expr) -> EmitSiteFact:
    events = _resolve_event_arg(event_arg, scope)
    return EmitSiteFact(
        loc=_loc(node),
        events=tuple(sorted(events)) if events is not None else None,
        fields=tuple(
            sorted(kw.arg for kw in node.keywords if kw.arg is not None)
        ),
        has_star_kwargs=any(kw.arg is None for kw in node.keywords),
    )


def _collect_call_sites(tree: ast.Module) -> tuple[list[EmitSiteFact], list[EmitSiteFact]]:
    """``(emit_sites, log_event_sites)`` of one file.

    ``Instrumentation.emit(cycle, event, **fields)`` takes two
    positional args — single-arg sites are ``TraceSink.emit`` (an
    already-assembled dict), a different protocol.  ``log_event``
    takes the event as its only positional arg.
    """
    emit_sites: list[EmitSiteFact] = []
    log_sites: list[EmitSiteFact] = []
    for scope in scope_nodes(tree):
        for node in local_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "emit" and len(node.args) == 2:
                emit_sites.append(_site_fact(node, scope, node.args[1]))
            elif func.attr == "log_event" and len(node.args) == 1:
                log_sites.append(_site_fact(node, scope, node.args[0]))
    return emit_sites, log_sites


def _tuple_strings(value: ast.expr) -> tuple[str, ...]:
    return tuple(
        name
        for name in (_const_str(item) for item in getattr(value, "elts", ()))
        if name is not None
    )


def _module_assign(
    node: ast.stmt,
) -> tuple[Optional[str], Optional[ast.expr]]:
    """``(name, value)`` of a module-level (ann-)assignment, else Nones."""
    target: Optional[ast.expr] = None
    value: Optional[ast.expr] = None
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target, value = node.targets[0], node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target, value = node.target, node.value
    if isinstance(target, ast.Name) and value is not None:
        return target.id, value
    return None, None


def _dict_fields(
    value: ast.Dict, fallback_line: int
) -> tuple[dict[str, tuple[str, ...]], dict[str, int]]:
    """Keys of a ``{"event": ("field", ...)}`` table, with key lines."""
    table: dict[str, tuple[str, ...]] = {}
    key_lines: dict[str, int] = {}
    for key, val in zip(value.keys, value.values):
        name = _const_str(key) if key is not None else None
        if name is None:
            continue
        table[name] = _tuple_strings(val)
        key_lines[name] = key.lineno if key is not None else fallback_line
    return table, key_lines


def _find_trace_schema(tree: ast.Module) -> Optional[TraceSchemaFact]:
    event_fields: dict[str, tuple[str, ...]] = {}
    key_lines: dict[str, int] = {}
    common: tuple[str, ...] = ()
    found = False
    for node in tree.body:
        name, value = _module_assign(node)
        if name is None or value is None:
            continue
        if name == "EVENT_FIELDS" and isinstance(value, ast.Dict):
            found = True
            event_fields, key_lines = _dict_fields(value, node.lineno)
        elif name == "COMMON_FIELDS":
            common = _tuple_strings(value)
    if not found:
        return None
    return TraceSchemaFact(
        event_fields=event_fields, key_lines=key_lines, common=common
    )


def _find_telemetry_tables(tree: ast.Module) -> Optional[TelemetryTablesFact]:
    event_fields: dict[str, tuple[str, ...]] = {}
    key_lines: dict[str, int] = {}
    common: tuple[str, ...] = ()
    phases: tuple[str, ...] = ()
    phases_line = 0
    found = False
    for node in tree.body:
        name, value = _module_assign(node)
        if name is None or value is None:
            continue
        if name == "REQUEST_EVENT_FIELDS" and isinstance(value, ast.Dict):
            found = True
            event_fields, key_lines = _dict_fields(value, node.lineno)
        elif name == "REQLOG_COMMON_FIELDS":
            common = _tuple_strings(value)
        elif name == "LATENCY_PHASES":
            phases = _tuple_strings(value)
            phases_line = node.lineno
    if not found:
        return None
    return TelemetryTablesFact(
        event_fields=event_fields,
        key_lines=key_lines,
        common=common,
        phases=phases,
        phases_line=phases_line,
    )


def _find_reqlog_consumers(tree: ast.Module) -> Optional[ReqlogConsumerFact]:
    consumed: dict[str, tuple[str, ...]] = {}
    key_lines: dict[str, int] = {}
    report_phases: tuple[str, ...] = ()
    report_line = 0
    found = False
    for node in tree.body:
        name, value = _module_assign(node)
        if name is None or value is None:
            continue
        if name == "REQLOG_CONSUMED_EVENTS" and isinstance(value, ast.Dict):
            found = True
            consumed, key_lines = _dict_fields(value, node.lineno)
        elif name == "REPORT_LATENCY_PHASES":
            report_phases = _tuple_strings(value)
            report_line = node.lineno
    if not found:
        return None
    return ReqlogConsumerFact(
        consumed=consumed,
        key_lines=key_lines,
        report_phases=report_phases,
        report_line=report_line,
    )


def _find_store_schema(tree: ast.Module) -> Optional[StoreSchemaFact]:
    columns: dict[str, int] = {}
    query_fields: tuple[str, ...] = ()
    query_line = 0
    meta_fields: tuple[str, ...] = ()
    found = False
    for node in tree.body:
        name, value = _module_assign(node)
        if name is None or value is None:
            continue
        if name == "SWEEP_COLUMNS" and isinstance(value, ast.Dict):
            found = True
            for key in value.keys:
                col = _const_str(key) if key is not None else None
                if col is not None:
                    columns[col] = key.lineno if key is not None else node.lineno
        elif name == "QUERY_FIELDS":
            query_fields = _tuple_strings(value)
            query_line = node.lineno
        elif name == "SWEEP_META_FIELDS":
            meta_fields = _tuple_strings(value)
    if not found:
        return None
    return StoreSchemaFact(
        columns=columns,
        query_fields=query_fields,
        query_line=query_line,
        meta_fields=meta_fields,
    )


def _consumed_events(tree: ast.Module) -> list[tuple[Loc, str]]:
    """``(loc, event)`` of every consumed trace-event name in one file.

    Only files that declare one of :data:`CONSUMER_TABLES` are treated
    as consumers — that keeps ``counts.get(...)`` in unrelated code
    from being misread as a trace-event access.
    """
    consumed: list[tuple[Loc, str]] = []
    is_consumer = False
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Name)
                and target.id in CONSUMER_TABLES
                and isinstance(node.value, ast.Dict)
            ):
                is_consumer = True
                for key in node.value.keys:
                    name = _const_str(key) if key is not None else None
                    if name is not None:
                        consumed.append((_loc(key), name))
    if not is_consumer:
        return []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and _receiver_name(node.func) in _EVENT_COUNT_RECEIVERS
                and node.args
            ):
                name = _const_str(node.args[0])
                if name is not None:
                    consumed.append((_loc(node), name))
        elif isinstance(node, ast.Compare) and isinstance(node.left, ast.Name):
            if node.left.id not in ("kind", "event"):
                continue
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    name = _const_str(comparator)
                    if name is not None:
                        consumed.append((_loc(comparator), name))
                elif isinstance(op, (ast.In, ast.NotIn)):
                    for item in getattr(comparator, "elts", ()):
                        name = _const_str(item)
                        if name is not None:
                            consumed.append((_loc(item), name))
    return consumed


def _produced_metrics(tree: ast.Module) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(exact_names, prefixes)`` of metric-producing call sites."""
    exact: set[str] = set()
    prefixes: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_FACTORIES
        ):
            continue
        arg = node.args[0]
        values = _string_values(arg)
        if values is not None:
            exact |= values
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            prefix = _const_str(head) if isinstance(head, ast.Constant) else None
            if prefix:
                prefixes.add(prefix)
        # Non-literal names (registry plumbing like merge_snapshot
        # re-registering snapshot keys) are skipped, not errors.
    return tuple(sorted(exact)), tuple(sorted(prefixes))


def _consumed_metrics(tree: ast.Module) -> list[tuple[Loc, str]]:
    consumed: list[tuple[Loc, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and _receiver_name(node.func) in _METRIC_RECEIVERS
                and node.args
            ):
                name = _const_str(node.args[0])
                if name is not None:
                    consumed.append((_loc(node), name))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in METRIC_TABLES:
                    for item in getattr(node.value, "elts", ()):
                        name = _const_str(item)
                        if name is not None:
                            consumed.append((_loc(item), name))
    return consumed


def _subscript_receiver(node: ast.Subscript) -> Optional[str]:
    """Terminal name of a subscript's receiver: ``a.b["k"]`` → ``b``."""
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _store_field_reads(
    checked: CheckedFile,
) -> tuple[list[tuple[Loc, str]], list[tuple[Loc, str]]]:
    """``(segment_reads, row_reads)`` if the file is a store participant.

    Only files under :data:`_STORE_MODULE_PREFIX` or importing from
    ``repro.store`` count — that keeps ``row["count"]`` in unrelated
    code (the span profiler's table rows) from being misread as a
    query-row access.
    """
    is_store = checked.mod.startswith(_STORE_MODULE_PREFIX) or any(
        isinstance(node, ast.ImportFrom)
        and (node.module or "").startswith("repro.store")
        for node in ast.walk(checked.tree)
    )
    if not is_store:
        return [], []
    segment_reads: list[tuple[Loc, str]] = []
    row_reads: list[tuple[Loc, str]] = []
    for node in ast.walk(checked.tree):
        if not isinstance(node, ast.Subscript):
            continue
        name = _const_str(node.slice)
        if name is None:
            continue
        receiver = _subscript_receiver(node)
        if receiver in _SEGMENT_RECEIVERS:
            segment_reads.append((_loc(node), name))
        elif receiver in _ROW_RECEIVERS:
            row_reads.append((_loc(node), name))
    return segment_reads, row_reads


def _first(
    facts: dict[str, SchemaDriftFacts], attr: str
) -> tuple[Optional[str], Optional[object]]:
    """First (by path) file whose facts carry ``attr``, plus the value."""
    for rel in sorted(facts):
        value = getattr(facts[rel], attr)
        if value is not None:
            return rel, value
    return None, None


class SchemaDriftRule(FactRule):
    id = "schema-drift"
    description = (
        "trace events/metrics drifting from the versioned schema and "
        "its consumers (checked in both directions)"
    )

    def extract(self, checked: CheckedFile) -> Optional[SchemaDriftFacts]:
        # The analyzer's own modules quote schema names in rule tables
        # and tests; they are not schema participants.
        if checked.mod.startswith("repro/check/"):
            return None
        emit_sites, log_sites = _collect_call_sites(checked.tree)
        segment_reads, row_reads = _store_field_reads(checked)
        exact, prefixes = _produced_metrics(checked.tree)
        facts = SchemaDriftFacts(
            emit_sites=emit_sites,
            log_sites=log_sites,
            trace_schema=_find_trace_schema(checked.tree),
            consumed_events=_consumed_events(checked.tree),
            produced_exact=exact,
            produced_prefixes=prefixes,
            consumed_metrics=_consumed_metrics(checked.tree),
            telemetry=_find_telemetry_tables(checked.tree),
            reqlog=_find_reqlog_consumers(checked.tree),
            store=_find_store_schema(checked.tree),
            segment_reads=segment_reads,
            row_reads=row_reads,
        )
        return None if facts.empty() else facts

    def check_facts(self, ctx: ProgramContext) -> Iterable[Diagnostic]:
        facts: dict[str, SchemaDriftFacts] = ctx.facts(self.id)
        yield from self._check_store(facts)
        yield from self._check_telemetry(facts)
        yield from self._check_trace(facts)
        yield from self._check_metrics(facts)

    # -- trace events -----------------------------------------------------

    def _check_trace(
        self, facts: dict[str, SchemaDriftFacts]
    ) -> Iterable[Diagnostic]:
        schema_rel, schema = _first(facts, "trace_schema")
        if schema_rel is None or not isinstance(schema, TraceSchemaFact):
            return  # nothing to check against (e.g. a fixture subset)

        emitted: set[str] = set()
        any_unresolved = False
        for rel in sorted(facts):
            for site in facts[rel].emit_sites:
                if site.events is None:
                    any_unresolved = True
                    yield self.diag_at(
                        rel,
                        site.loc,
                        "emit() event name could not be resolved statically; "
                        "use a string literal, a conditional over literals, "
                        "or a single local assignment of those",
                    )
                    continue
                emitted |= set(site.events)
                for event in site.events:
                    required = schema.event_fields.get(event)
                    if required is None:
                        yield self.diag_at(
                            rel,
                            site.loc,
                            f"emits event {event!r} which is not in the trace "
                            "schema (EVENT_FIELDS); add it to the schema or "
                            "fix the name",
                        )
                        continue
                    overridden = set(site.fields) & set(schema.common)
                    for name in sorted(overridden):
                        yield self.diag_at(
                            rel,
                            site.loc,
                            f"emit({event!r}) passes common field {name!r} as "
                            "a keyword; Instrumentation.emit stamps it",
                        )
                    if not site.has_star_kwargs:
                        missing = set(required) - set(site.fields)
                        for name in sorted(missing):
                            yield self.diag_at(
                                rel,
                                site.loc,
                                f"emit({event!r}) is missing required field "
                                f"{name!r} (schema: {required})",
                            )

        if not any_unresolved:
            for event in sorted(set(schema.event_fields) - emitted):
                yield self.diag_at(
                    schema_rel,
                    Loc(lineno=schema.key_lines.get(event, 0)),
                    f"schema event {event!r} is never emitted by any "
                    "Instrumentation.emit site; dead schema entries "
                    "hide drift — remove it or emit it",
                )

        for rel in sorted(facts):
            for loc, name in facts[rel].consumed_events:
                if name not in schema.event_fields:
                    yield self.diag_at(
                        rel,
                        loc,
                        f"consumes event {name!r} which is not in the trace "
                        "schema (EVENT_FIELDS); nothing can ever produce it",
                    )

    def _check_metrics(
        self, facts: dict[str, SchemaDriftFacts]
    ) -> Iterable[Diagnostic]:
        # Metric checks only make sense where trace schema checks do —
        # the metrics registry lives in the same observability layer.
        schema_rel, _ = _first(facts, "trace_schema")
        if schema_rel is None:
            return
        produced: set[str] = set()
        prefixes: set[str] = set()
        for rel in sorted(facts):
            produced |= set(facts[rel].produced_exact)
            prefixes |= set(facts[rel].produced_prefixes)
        for rel in sorted(facts):
            for loc, name in facts[rel].consumed_metrics:
                if name in produced:
                    continue
                if any(name.startswith(prefix) for prefix in prefixes):
                    continue
                yield self.diag_at(
                    rel,
                    loc,
                    f"reads metric {name!r} which no MetricsRegistry "
                    "counter/gauge/histogram call site produces",
                )

    # -- request log ------------------------------------------------------

    def _check_telemetry(
        self, facts: dict[str, SchemaDriftFacts]
    ) -> Iterable[Diagnostic]:
        schema_rel, tables = _first(facts, "telemetry")
        if schema_rel is None or not isinstance(tables, TelemetryTablesFact):
            return  # no request-log schema in this file set

        emitted: set[str] = set()
        any_unresolved = False
        for rel in sorted(facts):
            for site in facts[rel].log_sites:
                if site.events is None:
                    any_unresolved = True
                    yield self.diag_at(
                        rel,
                        site.loc,
                        "log_event() event name could not be resolved "
                        "statically; use a string literal, a conditional over "
                        "literals, or a single local assignment of those",
                    )
                    continue
                emitted |= set(site.events)
                for event in site.events:
                    required = tables.event_fields.get(event)
                    if required is None:
                        yield self.diag_at(
                            rel,
                            site.loc,
                            f"logs request event {event!r} which is not in the "
                            "request-log schema (REQUEST_EVENT_FIELDS); add it "
                            "to the schema or fix the name",
                        )
                        continue
                    for name in sorted(set(site.fields) & set(tables.common)):
                        yield self.diag_at(
                            rel,
                            site.loc,
                            f"log_event({event!r}) passes common field {name!r} "
                            "as a keyword; RequestLog stamps it",
                        )
                    if not site.has_star_kwargs:
                        for name in sorted(set(required) - set(site.fields)):
                            yield self.diag_at(
                                rel,
                                site.loc,
                                f"log_event({event!r}) is missing required "
                                f"field {name!r} (schema: {required})",
                            )

        if not any_unresolved:
            for event in sorted(set(tables.event_fields) - emitted):
                yield self.diag_at(
                    schema_rel,
                    Loc(lineno=tables.key_lines.get(event, 0)),
                    f"request-log schema event {event!r} is never "
                    "logged by any log_event site; dead schema entries "
                    "hide drift — remove it or emit it",
                )

        consumer_rel, consumer = _first(facts, "reqlog")
        if consumer_rel is None or not isinstance(consumer, ReqlogConsumerFact):
            return  # no serve-report in this file set

        for event in sorted(consumer.consumed):
            if event not in tables.event_fields:
                yield self.diag_at(
                    consumer_rel,
                    Loc(lineno=consumer.key_lines.get(event, 0)),
                    f"REQLOG_CONSUMED_EVENTS entry {event!r} is not in "
                    "the request-log schema (REQUEST_EVENT_FIELDS); "
                    "nothing can ever produce it",
                )
            elif consumer.consumed[event] != tables.event_fields[event]:
                yield self.diag_at(
                    consumer_rel,
                    Loc(lineno=consumer.key_lines.get(event, 0)),
                    f"REQLOG_CONSUMED_EVENTS[{event!r}] lists fields "
                    f"{consumer.consumed[event]} but the schema requires "
                    f"{tables.event_fields[event]}",
                )
        for event in sorted(set(tables.event_fields) - set(consumer.consumed)):
            yield self.diag_at(
                schema_rel,
                Loc(lineno=tables.key_lines.get(event, 0)),
                f"request-log schema event {event!r} is missing from "
                "REQLOG_CONSUMED_EVENTS; serve-report would silently "
                "drop it",
            )

        for phase in consumer.report_phases:
            if phase not in tables.phases:
                yield self.diag_at(
                    consumer_rel,
                    Loc(lineno=consumer.report_line),
                    f"REPORT_LATENCY_PHASES entry {phase!r} is not in "
                    "LATENCY_PHASES; no serve.latency gauge or phase "
                    "span can ever carry it",
                )
        for phase in tables.phases:
            if phase not in consumer.report_phases:
                yield self.diag_at(
                    schema_rel,
                    Loc(lineno=tables.phases_line),
                    f"latency phase {phase!r} is missing from "
                    "REPORT_LATENCY_PHASES; serve-report would never "
                    "render its percentiles",
                )

    # -- sweep store ------------------------------------------------------

    def _check_store(
        self, facts: dict[str, SchemaDriftFacts]
    ) -> Iterable[Diagnostic]:
        store_rel, store = _first(facts, "store")
        if store_rel is None or not isinstance(store, StoreSchemaFact):
            return  # no sweep store in this file set

        known_query = set(store.columns) | set(store.meta_fields)
        for field_name in store.query_fields:
            if field_name not in known_query:
                yield self.diag_at(
                    store_rel,
                    Loc(lineno=store.query_line),
                    f"QUERY_FIELDS entry {field_name!r} is neither a "
                    "SWEEP_COLUMNS column nor a SWEEP_META_FIELDS "
                    "field; no query row can ever carry it",
                )
        for column, line in store.columns.items():
            if column not in store.query_fields:
                yield self.diag_at(
                    store_rel,
                    Loc(lineno=line),
                    f"segment column {column!r} is missing from "
                    "QUERY_FIELDS; it would be stored but never "
                    "queryable or exported",
                )

        consumed_columns: set[str] = set()
        any_segment_reads = False
        for rel in sorted(facts):
            for loc, name in facts[rel].segment_reads:
                any_segment_reads = True
                consumed_columns.add(name)
                if name not in store.columns:
                    yield self.diag_at(
                        rel,
                        loc,
                        f"reads segment column {name!r} which is not in "
                        "SWEEP_COLUMNS; no segment ever stores it",
                    )
            for loc, name in facts[rel].row_reads:
                if name not in store.query_fields:
                    yield self.diag_at(
                        rel,
                        loc,
                        f"reads query-row field {name!r} which is not in "
                        "QUERY_FIELDS; no query row ever carries it",
                    )
        if any_segment_reads:
            for column in sorted(set(store.columns) - consumed_columns):
                yield self.diag_at(
                    store_rel,
                    Loc(lineno=store.columns[column]),
                    f"segment column {column!r} is never read by any "
                    "segment/_buffer subscript; dead columns hide "
                    "drift — remove it or consume it",
                )
