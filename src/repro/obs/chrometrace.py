"""Chrome trace-event export: spans and traces, viewable in Perfetto.

Two sources, two kinds of track:

* **Host spans** (:mod:`repro.obs.spans`) become complete ``"X"``
  events on one track per recorder.  Spans obey a stack discipline, so
  slices on a track are strictly nested and never partially overlap —
  exactly what the trace viewer's flame layout expects.
* **Simulator events** (:mod:`repro.obs.trace` JSONL) become instant
  ``"i"`` events plus ``"C"`` counter tracks (in-flight µops, lanes per
  issued op), with one simulated cycle mapped to one microsecond of
  viewer time.

Load the written file at https://ui.perfetto.dev (or
``chrome://tracing``).  The format is the Trace Event Format's JSON
object form: ``{"traceEvents": [...]}``.
"""

from __future__ import annotations

import json
from typing import Any, Optional
from collections.abc import Iterable, Sequence

from repro.obs.spans import SpanRecord

__all__ = [
    "chrome_trace",
    "sim_trace_events",
    "span_trace_events",
    "write_chrome_trace",
]

#: pid for host-side (span) tracks and for simulator tracks.
HOST_PID = 1
SIM_PID = 2

#: tids within the simulator pid.
SIM_TID_PIPELINE = 1
SIM_TID_VPU = 2
SIM_TID_SAVE = 3
SIM_TID_BCACHE = 4

#: Which instant-event track each simulator event kind lands on.
_EVENT_TID = {
    "dispatch": SIM_TID_PIPELINE,
    "retire": SIM_TID_PIPELINE,
    "issue": SIM_TID_VPU,
    "merge": SIM_TID_VPU,
    "elm": SIM_TID_SAVE,
    "bs_skip": SIM_TID_SAVE,
    "lwd_stall": SIM_TID_SAVE,
    "chain_append": SIM_TID_SAVE,
    "bcache_hit": SIM_TID_BCACHE,
    "bcache_miss": SIM_TID_BCACHE,
}


def _meta(pid: int, tid: Optional[int], name: str) -> dict[str, Any]:
    event: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def span_trace_events(
    records: Sequence[SpanRecord], pid: int = HOST_PID, tid: int = 1
) -> list[dict[str, Any]]:
    """Complete (``"X"``) events for one recorder's spans, one track.

    Timestamps are microseconds from the recorder's epoch.  Records
    come from a stack discipline, so the produced slices are properly
    nested per track.
    """
    events: list[dict[str, Any]] = []
    for record in records:
        events.append(
            {
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": max(0.0, record.duration) * 1e6,
                "pid": pid,
                "tid": tid,
                "cat": "host",
                "args": dict(record.attrs),
            }
        )
    return events


def sim_trace_events(
    events: Iterable[dict[str, Any]], pid: int = SIM_PID
) -> list[dict[str, Any]]:
    """Instant + counter events for a simulator event stream.

    One simulated cycle maps to 1 µs of viewer time.  Emits an
    ``inflight`` counter (dispatched-not-retired µops, stepped at every
    change) and a ``lanes`` counter sampled at each issue.  Back-to-back
    simulations in one trace (cycle counter restarting at zero) are
    laid out sequentially, the same concatenation
    :func:`repro.obs.analyze.analyze_events` uses.
    """
    out: list[dict[str, Any]] = []
    inflight = 0
    offset = 0
    last_raw = -1
    for event in events:
        kind = event["event"]
        raw_cycle = event["cycle"]
        if raw_cycle < last_raw:
            offset += last_raw + 1
        last_raw = raw_cycle
        cycle = offset + raw_cycle
        tid = _EVENT_TID.get(kind)
        if tid is None:
            continue
        args = {
            key: value
            for key, value in event.items()
            if key not in ("event", "cycle", "kernel", "v")
        }
        out.append(
            {
                "name": kind,
                "ph": "i",
                "s": "t",
                "ts": float(cycle),
                "pid": pid,
                "tid": tid,
                "cat": "sim",
                "args": args,
            }
        )
        if kind == "issue":
            out.append(
                {
                    "name": "lanes_per_op",
                    "ph": "C",
                    "ts": float(cycle),
                    "pid": pid,
                    "args": {"lanes": event.get("lanes", 0)},
                }
            )
        elif kind in ("dispatch", "retire"):
            inflight += 1 if kind == "dispatch" else -1
            out.append(
                {
                    "name": "inflight_uops",
                    "ph": "C",
                    "ts": float(cycle),
                    "pid": pid,
                    "args": {"uops": inflight},
                }
            )
    return out


def chrome_trace(
    spans: Optional[Sequence[SpanRecord]] = None,
    events: Optional[Iterable[dict[str, Any]]] = None,
) -> dict[str, Any]:
    """Assemble the Trace Event Format JSON-object document."""
    trace_events: list[dict[str, Any]] = []
    if spans:
        trace_events.append(_meta(HOST_PID, None, "host (repro pipeline)"))
        trace_events.append(_meta(HOST_PID, 1, "phases"))
        trace_events.extend(span_trace_events(spans))
    if events is not None:
        trace_events.append(_meta(SIM_PID, None, "simulator (1 cycle = 1us)"))
        trace_events.append(_meta(SIM_PID, SIM_TID_PIPELINE, "pipeline"))
        trace_events.append(_meta(SIM_PID, SIM_TID_VPU, "vpu issue/merge"))
        trace_events.append(_meta(SIM_PID, SIM_TID_SAVE, "save engine"))
        trace_events.append(_meta(SIM_PID, SIM_TID_BCACHE, "broadcast cache"))
        trace_events.extend(sim_trace_events(events))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    spans: Optional[Sequence[SpanRecord]] = None,
    events: Optional[Iterable[dict[str, Any]]] = None,
) -> str:
    """Write the trace document to ``path``; returns the path."""
    document = chrome_trace(spans=spans, events=events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return path
