"""Metrics primitives: counters, gauges and histograms.

A :class:`MetricsRegistry` is the write side of the observability
layer: simulator components record into named instruments, and the
registry renders a plain-``dict`` :func:`MetricsRegistry.snapshot`
that is picklable (it crosses process boundaries in parallel runs),
JSON-serialisable, and mergeable.

Two properties drive the design:

* **Near-zero cost when disabled.** Nothing here is consulted unless a
  registry was explicitly passed in; the simulator guards every record
  site behind a single ``obs is not None`` check, so the default run
  pays one pointer comparison per site.
* **Deterministic merging.** Snapshots merge with pure integer/float
  addition (counters, histogram bins), ``max`` (gauges: peak
  semantics), and ``min``/``max`` (histogram extrema).  Callers merge
  in job-index order, so a parallel run's merged snapshot is
  bit-identical to a serial run's — the same contract the execution
  layer gives for simulation results.
"""

from __future__ import annotations

from typing import Any, Optional
from collections.abc import Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_metrics",
    "hist_stats",
    "log2_bucket",
]


def log2_bucket(value: int) -> int:
    """Bucket a non-negative integer: exact below 16, power-of-two above.

    Keeps duration histograms (cycle counts spanning 0..10^6) at a
    bounded number of bins while preserving exact small values, which
    is where scheduling distinctions live.
    """
    if value <= 16:
        return int(value)
    return 1 << int(value - 1).bit_length()


class Counter:
    """Monotonic event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time level with peak-tracking merge semantics."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def add(self, delta: float) -> None:
        """Adjust the level by ``delta`` (queue-depth style gauges)."""
        self.value += delta


class Histogram:
    """Distribution of recorded values over exact (or bucketed) bins.

    The paper's analysis sections need *distributions* — CW occupancy,
    lanes per VPU op, time-in-stage — not just means; a dict-of-bins
    histogram keeps every recorded level distinguishable while staying
    picklable and mergeable.
    """

    __slots__ = ("bins", "count", "total", "min", "max", "bucket")

    def __init__(self, bucket: Optional[Callable[[int], int]] = None) -> None:
        self.bins: dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.bucket = bucket

    def record(self, value: int) -> None:
        key = self.bucket(value) if self.bucket is not None else value
        self.bins[key] = self.bins.get(key, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[int]:
        """Bin value at quantile ``q`` (bucket granularity)."""
        if not self.count:
            return None
        threshold = q * self.count
        seen = 0
        for key in sorted(self.bins):
            seen += self.bins[key]
            if seen >= threshold:
                return key
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "bins": {int(k): self.bins[k] for k in sorted(self.bins)},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


def hist_stats(snapshot: dict[str, Any]) -> dict[str, Any]:
    """Derived summary (mean/p50/p95/extrema) of a histogram snapshot."""
    count = snapshot.get("count", 0)
    if not count:
        return {"count": 0, "mean": 0.0, "p50": None, "p95": None,
                "min": None, "max": None}
    bins = snapshot["bins"]

    def pct(q: float) -> int:
        threshold = q * count
        seen = 0
        for key in sorted(bins):
            seen += bins[key]
            if seen >= threshold:
                return key
        return snapshot["max"]

    return {
        "count": count,
        "mean": snapshot["total"] / count,
        "p50": pct(0.50),
        "p95": pct(0.95),
        "min": snapshot["min"],
        "max": snapshot["max"],
    }


class MetricsRegistry:
    """Named counters, gauges and histograms with get-or-create access."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, bucket: Optional[Callable[[int], int]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(bucket)
        return instrument

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # -- snapshot / merge -------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view: picklable, JSON-safe, deterministically keyed."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold one snapshot into this registry.

        Merging is additive for counters and histogram bins, peak for
        gauges.  Call in a fixed (job-index) order: histogram ``total``
        sums are floats in general, and float addition is
        order-sensitive — ordered merging is what makes a parallel
        run's metrics bit-identical to a serial run's.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, hist_snap in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            for key, count in hist_snap["bins"].items():
                key = int(key)
                hist.bins[key] = hist.bins.get(key, 0) + count
            hist.count += hist_snap["count"]
            hist.total += hist_snap["total"]
            for bound, pick in (("min", min), ("max", max)):
                other = hist_snap[bound]
                if other is not None:
                    ours = getattr(hist, bound)
                    setattr(hist, bound, other if ours is None else pick(ours, other))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def format_metrics(snapshot: dict[str, Any]) -> str:
    """Human-readable metrics summary (the CLI's ``--metrics`` output)."""
    lines: list[str] = ["== metrics =="]
    counters: dict[str, int] = snapshot.get("counters", {})
    gauges: dict[str, float] = snapshot.get("gauges", {})
    histograms: dict[str, Any] = snapshot.get("histograms", {})
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name.ljust(width)}  {counters[name]}")
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges (peak):")
        for name in sorted(gauges):
            lines.append(f"  {name.ljust(width)}  {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            stats = hist_stats(histograms[name])
            if not stats["count"]:
                continue
            lines.append(
                f"  {name.ljust(width)}  n={stats['count']} "
                f"mean={stats['mean']:.2f} p50={stats['p50']} "
                f"p95={stats['p95']} max={stats['max']}"
            )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def merge_ordered(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Merge snapshots in list order into one snapshot."""
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()
