"""Host-side span profiling: where does the *wall clock* go?

The metrics/trace layer explains the simulated machine; this module
explains the reproduction pipeline itself.  A :class:`SpanRecorder`
hands out nestable context-manager spans (monotonic host time via
``time.perf_counter``) that the execution layer opens around its
phases — surface build, simulation batches, snapshot merging, report
rendering — so one run answers "which phase is slow" without a
sampling profiler.

Spans are strictly nested (a stack discipline enforced by the context
manager), which is what lets :mod:`repro.obs.chrometrace` lay them out
as non-overlapping slices per track, and what makes
:meth:`SpanRecorder.summary` able to attribute *self* time (span time
minus child time) exactly.

Cost model: a span is two ``perf_counter`` calls and one list append.
Spans wrap *batches* (hundreds of thousands of simulated cycles), never
per-cycle work, so the instrumentation-off hot path is untouched — call
sites guard with :func:`maybe_span`, which returns a shared no-op
context when no recorder is present.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Optional
from collections.abc import Iterator

__all__ = [
    "SpanRecord",
    "SpanRecorder",
    "maybe_span",
    "phase_table",
]


@dataclass
class SpanRecord:
    """One closed span: a named interval on the host clock.

    ``start`` / ``end`` are ``perf_counter`` readings relative to the
    recorder's epoch (its construction time), so records from one
    recorder share a timeline.  ``parent`` is the index of the
    enclosing span in :attr:`SpanRecorder.records`, or ``-1``.
    """

    name: str
    start: float
    end: float
    depth: int
    parent: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanRecorder:
    """Collects nested spans; the pipeline's wall-clock ledger.

    Usage::

        rec = SpanRecorder()
        with rec.span("simulate", jobs=64):
            ...
        print(phase_table(rec))

    Spans close in LIFO order by construction (``with`` blocks cannot
    interleave), so the record list is a valid serialisation of a call
    tree.  A recorder is single-threaded by design: the pipeline's
    parallelism lives in worker *processes*, and spans measure the
    coordinating process only.
    """

    def __init__(self) -> None:
        self.records: list[SpanRecord] = []
        self._stack: list[int] = []
        self.epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self.records)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Open a named span; closes (and timestamps) on exit, even on error."""
        record = SpanRecord(
            name=name,
            start=time.perf_counter() - self.epoch,
            end=0.0,
            depth=len(self._stack),
            parent=self._stack[-1] if self._stack else -1,
            attrs=dict(attrs),
        )
        index = len(self.records)
        self.records.append(record)
        self._stack.append(index)
        try:
            yield record
        finally:
            record.end = time.perf_counter() - self.epoch
            self._stack.pop()

    # -- analysis ---------------------------------------------------------

    def children(self, index: int) -> list[SpanRecord]:
        return [r for r in self.records if r.parent == index]

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-name totals: count, total time, and self (exclusive) time.

        Self time subtracts direct children's durations, so a phase
        that spends all its time inside sub-spans shows near-zero self
        time — the sub-spans carry the attribution.
        """
        child_time = [0.0] * len(self.records)
        for record in self.records:
            if record.parent >= 0:
                child_time[record.parent] += record.duration
        out: dict[str, dict[str, float]] = {}
        for index, record in enumerate(self.records):
            row = out.setdefault(
                record.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += record.duration
            row["self_s"] += max(0.0, record.duration - child_time[index])
        return out

    def total_time(self) -> float:
        """Wall time covered by top-level spans."""
        return sum(r.duration for r in self.records if r.parent == -1)


def phase_table(recorder: SpanRecorder) -> str:
    """Render the recorder's summary as an aligned text table."""
    summary = recorder.summary()
    if not summary:
        return "== phases ==\n(no spans recorded)"
    total = recorder.total_time() or 1.0
    names = sorted(summary, key=lambda n: -summary[n]["total_s"])
    width = max(len(name) for name in names)
    lines = ["== phases ==", f"{'phase'.ljust(width)}  count  total_s   self_s    %"]
    for name in names:
        row = summary[name]
        lines.append(
            f"{name.ljust(width)}  {int(row['count']):5d}  "
            f"{row['total_s']:7.3f}  {row['self_s']:7.3f}  "
            f"{100.0 * row['total_s'] / total:4.0f}"
        )
    return "\n".join(lines)


class _NoopSpan:
    """Shared no-op context for uninstrumented call sites."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def maybe_span(recorder: Optional[SpanRecorder], name: str, **attrs: Any):
    """A span on ``recorder``, or a shared no-op when ``recorder`` is None.

    The call-site idiom::

        with maybe_span(executor.spans, "surface.build", label=label):
            ...
    """
    if recorder is None:
        return _NOOP_SPAN
    return recorder.span(name, **attrs)
