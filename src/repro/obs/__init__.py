"""Observability layer: metrics, tracing, spans, analytics, ledger.

The simulator answers *how fast*; this package answers *why*.  The raw
layer (see ``docs/architecture.md`` § Observability):

* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  :class:`MetricsRegistry`, with picklable snapshots that merge
  deterministically across worker processes.
* :mod:`repro.obs.trace` — per-cycle structured events (dispatch, ELM
  generation, BS skip, VC/RVC merges with rotation state, LWD stalls,
  B$ hits/misses, retire) through a pluggable :class:`TraceSink`;
  :class:`JsonlTraceSink` writes schema-validated JSONL.
* :class:`Instrumentation` — the bundle a simulation carries.  Pass
  one to :func:`repro.core.pipeline.simulate` (or set ``metrics`` /
  ``trace_sink`` on a :class:`repro.experiments.executor.SimExecutor`)
  to turn observation on; when absent, every hook in the hot path
  reduces to a single ``is None`` check.

And the analysis-and-ledger layer on top of it:

* :mod:`repro.obs.spans` — nestable host wall-clock spans attributing
  pipeline time to build / simulate / merge / report phases.
* :mod:`repro.obs.analyze` — offline trace analytics (timelines,
  distributions, bottleneck attribution); ``repro trace-report``.
* :mod:`repro.obs.chrometrace` — Chrome trace-event export (Perfetto).
* :mod:`repro.obs.bench` — the ``BENCH_<seq>.json`` performance ledger
  behind ``repro bench``.
* :mod:`repro.obs.telemetry` — serve-path request-lifecycle telemetry:
  the versioned request log (trace IDs from HTTP ingress through the
  process-pool boundary), exact latency percentiles, the bounded
  on-disk metrics ring, and Prometheus text exposition.
* :mod:`repro.obs.servereport` — offline request-log analytics
  (per-phase percentiles, coalescing effectiveness, backpressure
  episodes, bottleneck verdict); ``repro serve-report``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics,
    hist_stats,
    log2_bucket,
)
from repro.obs.spans import SpanRecord, SpanRecorder, maybe_span, phase_table
from repro.obs.telemetry import (
    LATENCY_PHASES,
    LATENCY_QUANTILES,
    NULL_REQUEST_LOG,
    REQLOG_SCHEMA_VERSION,
    REQUEST_EVENT_FIELDS,
    LatencyRecorder,
    NullRequestLog,
    RequestLog,
    ServeTelemetry,
    exact_percentile,
    new_trace_id,
    read_request_log,
    render_prometheus,
    validate_request_event,
    wants_prometheus,
)
from repro.obs.trace import (
    EVENT_FIELDS,
    NULL_SINK,
    TRACE_SCHEMA_VERSION,
    JsonlTraceSink,
    ListSink,
    NullSink,
    TraceFormatError,
    TraceSink,
    read_jsonl,
    validate_event,
)

__all__ = [
    "Counter",
    "EVENT_FIELDS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonlTraceSink",
    "LATENCY_PHASES",
    "LATENCY_QUANTILES",
    "LatencyRecorder",
    "ListSink",
    "MetricsRegistry",
    "NULL_REQUEST_LOG",
    "NULL_SINK",
    "NullRequestLog",
    "NullSink",
    "REQLOG_SCHEMA_VERSION",
    "REQUEST_EVENT_FIELDS",
    "RequestLog",
    "ServeTelemetry",
    "SpanRecord",
    "SpanRecorder",
    "TRACE_SCHEMA_VERSION",
    "TraceFormatError",
    "TraceSink",
    "exact_percentile",
    "format_metrics",
    "hist_stats",
    "log2_bucket",
    "maybe_span",
    "new_trace_id",
    "phase_table",
    "read_jsonl",
    "read_request_log",
    "render_prometheus",
    "validate_event",
    "validate_request_event",
    "wants_prometheus",
]


class Instrumentation:
    """Everything one simulation records into.

    Attributes:
        metrics: the registry counters/histograms go to.
        sink: structured-event consumer.
        tracing: precomputed "is the sink real" flag — the pipeline
            guards event assembly behind it so a metrics-only run never
            pays event-dict construction.
        kernel: label stamped on every emitted event (set by the
            pipeline to the trace name).
        mechanism: skip-mechanism label stamped on every emitted event
            (set by the caller that knows the mechanism axis, e.g.
            :meth:`repro.experiments.executor.PointJob.run_instrumented`).
    """

    __slots__ = ("metrics", "sink", "tracing", "kernel", "mechanism")

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        sink: Optional[TraceSink] = None,
        kernel: str = "",
        mechanism: str = "save",
    ) -> None:
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.sink = NULL_SINK if sink is None else sink
        self.tracing = not isinstance(self.sink, NullSink)
        self.kernel = kernel
        self.mechanism = mechanism

    def emit(self, cycle: int, event: str, **fields: Any) -> None:
        """Stamp the common fields and forward one event to the sink."""
        fields["cycle"] = cycle
        fields["event"] = event
        fields["kernel"] = self.kernel
        fields["mechanism"] = self.mechanism
        self.sink.emit(fields)

    def snapshot(self) -> dict[str, Any]:
        """The metrics snapshot (picklable plain dict)."""
        return self.metrics.snapshot()
