"""Offline request-log analytics: from the serve telemetry stream to
"which phase is eating the latency".

Sibling of :mod:`repro.obs.analyze` (which does the same job for
per-cycle simulator traces): consume a request log written by
``repro serve --request-log`` and derive the signals an operator needs —

* per-phase latency percentiles (exact p50/p95/p99 over raw samples),
* dedup / cache / batch-coalescing effectiveness (how many requests
  were answered without simulating, and how wide the micro-batches ran),
* a backpressure episode timeline (bursts of rejected submits grouped
  by time gap),
* wall-time attribution: what share of completed requests' end-to-end
  time is explained by a named phase, and a bottleneck verdict.

``repro serve-report REQLOG`` renders the whole thing as markdown.

The tables below double as the telemetry schema's *consumer
declaration*: the ``schema-drift`` check rule cross-checks
:data:`REQLOG_CONSUMED_EVENTS` and :data:`REPORT_LATENCY_PHASES`
against the emit sites and field tables in
:mod:`repro.obs.telemetry` — both directions.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Optional
from collections.abc import Iterable, Sequence

from repro.obs.telemetry import (
    exact_percentile,
    read_request_log,
    validate_request_event,
)

__all__ = [
    "BACKPRESSURE_GAP_S",
    "REPORT_LATENCY_PHASES",
    "REQLOG_CONSUMED_EVENTS",
    "ServeReportAnalysis",
    "analyze_request_events",
    "analyze_request_log",
    "render_serve_markdown",
    "serve_report_main",
]

#: Request-log fields this report reads, per event type.  Every event
#: type the service emits must be consumed here (and every consumed
#: field must exist in the schema) — enforced by the ``schema-drift``
#: rule, so the report can never silently ignore a new event type.
REQLOG_CONSUMED_EVENTS: dict[str, tuple] = {
    "ingress": ("trace_id", "key", "outcome"),
    "phase": ("trace_id", "phase", "wall_s"),
    "sim": ("trace_ids", "point", "wall_s", "engine"),
    "complete": ("trace_id", "key", "status", "wall_s"),
    "access": ("trace_id", "method", "path", "status", "wall_s"),
    "snapshot": ("queue_depth", "active", "oldest_age_s", "counters"),
}

#: The latency phases this report tabulates; must equal
#: :data:`repro.obs.telemetry.LATENCY_PHASES` (checked both ways by
#: the ``schema-drift`` rule).
REPORT_LATENCY_PHASES = (
    "queue_wait",
    "batch_form",
    "simulate",
    "store_write",
    "e2e",
)

#: Rejected submits closer together than this belong to one
#: backpressure episode.
BACKPRESSURE_GAP_S = 1.0


@dataclass
class BackpressureEpisode:
    """One burst of rejected submits."""

    start_ts: float
    end_ts: float
    rejections: int

    @property
    def duration_s(self) -> float:
        return self.end_ts - self.start_ts


@dataclass
class ServeReportAnalysis:
    """Everything derived from one request-log stream."""

    #: Submit outcomes (accepted / dedup / cached / rejected / draining).
    ingress_outcomes: dict[str, int]
    #: Raw wall-clock samples per lifecycle phase; ``e2e`` comes from
    #: terminal ``complete`` events, the rest from ``phase`` spans.
    phase_samples: dict[str, list[float]]
    #: Terminal statuses (done / cached / failed).
    complete_statuses: dict[str, int]
    #: Owning-request count per worker-side simulation span (a width
    #: of 2+ means micro-batching coalesced that point across requests).
    sim_span_widths: dict[int, int]
    #: Total worker-side simulation seconds.
    sim_wall_s: float
    #: Simulated points per engine tier.
    sim_engines: dict[str, int]
    #: HTTP access counts per status code.
    access_statuses: dict[int, int]
    #: Bursts of rejected submits.
    backpressure_episodes: list[BackpressureEpisode]
    #: Peaks seen by the sampler ring (0 when no ring was recorded).
    peak_queue_depth: int = 0
    peak_oldest_age_s: float = 0.0
    snapshots: int = 0
    notes: list[str] = field(default_factory=list)

    # -- headline rates ---------------------------------------------------

    @property
    def submits(self) -> int:
        return sum(self.ingress_outcomes.values())

    @property
    def simulated_free(self) -> int:
        """Submits answered without running a simulation."""
        return self.ingress_outcomes.get("dedup", 0) + self.ingress_outcomes.get(
            "cached", 0
        )

    @property
    def dedup_rate(self) -> Optional[float]:
        return self.simulated_free / self.submits if self.submits else None

    @property
    def rejected(self) -> int:
        return self.ingress_outcomes.get("rejected", 0)

    @property
    def coalesced_points(self) -> int:
        """Simulation spans owned by more than one request."""
        return sum(n for width, n in self.sim_span_widths.items() if width > 1)

    @property
    def sim_points(self) -> int:
        return sum(self.sim_span_widths.values())

    @property
    def mean_span_width(self) -> Optional[float]:
        if not self.sim_points:
            return None
        owners = sum(width * n for width, n in self.sim_span_widths.items())
        return owners / self.sim_points

    def percentiles(self, phase: str) -> Optional[dict[str, float]]:
        """Exact p50/p95/p99 for one phase, in milliseconds."""
        samples = self.phase_samples.get(phase)
        if not samples:
            return None
        ordered = sorted(samples)
        return {
            "p50": round(1000.0 * _rank(ordered, 0.50), 3),
            "p95": round(1000.0 * _rank(ordered, 0.95), 3),
            "p99": round(1000.0 * _rank(ordered, 0.99), 3),
        }

    @property
    def attributed_fraction(self) -> Optional[float]:
        """Share of end-to-end wall time explained by a named phase.

        The denominator is the sum of terminal ``complete`` walls; the
        numerator sums every non-e2e ``phase`` span.  Within a batch a
        later job's end-to-end time includes earlier jobs' store
        writes, which no phase claims — the gap this ratio reports.
        """
        e2e = sum(self.phase_samples.get("e2e", ()))
        if e2e <= 0:
            return None
        named = sum(
            sum(samples)
            for phase, samples in self.phase_samples.items()
            if phase != "e2e"
        )
        return named / e2e

    def bottleneck(self) -> dict[str, Any]:
        """Phase shares of named wall time, and a one-line verdict."""
        totals = {
            phase: sum(self.phase_samples.get(phase, ()))
            for phase in REPORT_LATENCY_PHASES
            if phase != "e2e"
        }
        named = sum(totals.values())
        if named <= 0:
            return {"verdict": "no phase spans recorded", "shares": {}}
        shares = {phase: wall / named for phase, wall in totals.items()}
        top_phase = max(shares, key=lambda p: shares[p])
        verdicts = {
            "queue_wait": (
                "queue wait dominates — requests back up before the "
                "dispatcher; more executor workers or a wider batch "
                "window would help"
            ),
            "batch_form": (
                "batch formation dominates — the dispatcher lingers "
                "longer than it simulates; shrink batch_window_s"
            ),
            "simulate": (
                "simulation dominates — the healthy regime; scale "
                "executor workers or move to a faster engine tier for "
                "more throughput"
            ),
            "store_write": (
                "store writes dominate — result persistence is the "
                "bottleneck, not simulation"
            ),
        }
        return {
            "verdict": f"{verdicts[top_phase]} ({shares[top_phase]:.0%} of named time)",
            "shares": shares,
        }


def _rank(ordered: Sequence[float], q: float) -> float:
    value = exact_percentile(ordered, q)
    assert value is not None  # callers pass non-empty samples
    return value


def analyze_request_events(
    events: Iterable[dict[str, Any]]
) -> ServeReportAnalysis:
    """Derive a :class:`ServeReportAnalysis` from validated events."""
    ingress_outcomes: dict[str, int] = {}
    phase_samples: dict[str, list[float]] = {p: [] for p in REPORT_LATENCY_PHASES}
    complete_statuses: dict[str, int] = {}
    sim_span_widths: dict[int, int] = {}
    sim_engines: dict[str, int] = {}
    access_statuses: dict[int, int] = {}
    rejected_ts: list[float] = []
    sim_wall = 0.0
    peak_queue = 0
    peak_oldest = 0.0
    snapshots = 0
    notes: list[str] = []
    unknown_phases: set[str] = set()

    for event in events:
        kind = event["event"]
        if kind == "ingress":
            outcome = event["outcome"]
            ingress_outcomes[outcome] = ingress_outcomes.get(outcome, 0) + 1
            if outcome == "rejected":
                rejected_ts.append(float(event["ts"]))
        elif kind == "phase":
            phase = event["phase"]
            if phase in phase_samples:
                phase_samples[phase].append(float(event["wall_s"]))
            else:
                unknown_phases.add(phase)
        elif kind == "complete":
            status = event["status"]
            complete_statuses[status] = complete_statuses.get(status, 0) + 1
            phase_samples["e2e"].append(float(event["wall_s"]))
        elif kind == "sim":
            width = len(event["trace_ids"])
            sim_span_widths[width] = sim_span_widths.get(width, 0) + 1
            sim_wall += float(event["wall_s"])
            engine = event["engine"]
            sim_engines[engine] = sim_engines.get(engine, 0) + 1
        elif kind == "access":
            status = int(event["status"])
            access_statuses[status] = access_statuses.get(status, 0) + 1
        elif kind == "snapshot":
            snapshots += 1
            peak_queue = max(peak_queue, int(event["queue_depth"]))
            peak_oldest = max(peak_oldest, float(event["oldest_age_s"]))

    if unknown_phases:
        notes.append(
            "unrecognised phase names skipped: "
            + ", ".join(sorted(unknown_phases))
        )

    episodes: list[BackpressureEpisode] = []
    for ts in sorted(rejected_ts):
        if episodes and ts - episodes[-1].end_ts <= BACKPRESSURE_GAP_S:
            episodes[-1].end_ts = ts
            episodes[-1].rejections += 1
        else:
            episodes.append(BackpressureEpisode(ts, ts, 1))

    return ServeReportAnalysis(
        ingress_outcomes=ingress_outcomes,
        phase_samples=phase_samples,
        complete_statuses=complete_statuses,
        sim_span_widths=sim_span_widths,
        sim_wall_s=sim_wall,
        sim_engines=sim_engines,
        access_statuses=access_statuses,
        backpressure_episodes=episodes,
        peak_queue_depth=peak_queue,
        peak_oldest_age_s=peak_oldest,
        snapshots=snapshots,
        notes=notes,
    )


def analyze_request_log(path: str) -> ServeReportAnalysis:
    """Read, validate and analyze an on-disk request log."""

    def validated() -> Iterable[dict[str, Any]]:
        for event in read_request_log(path):
            validate_request_event(event)
            yield event

    return analyze_request_events(validated())


# ---------------------------------------------------------------------------
# Markdown rendering
# ---------------------------------------------------------------------------


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> list[str]:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _fmt_opt(value: Optional[float], as_pct: bool = False) -> str:
    if value is None:
        return "n/a"
    return f"{value:.1%}" if as_pct else f"{value:.2f}"


def render_serve_markdown(
    analysis: ServeReportAnalysis, source: str = ""
) -> str:
    """The ``repro serve-report`` document."""
    a = analysis
    lines: list[str] = ["# Serve report"]
    if source:
        lines.append(f"\nSource: `{source}`")
    lines += ["", "## Summary", ""]
    lines += _md_table(
        ("signal", "value"),
        [
            ("submits", a.submits),
            ("completed", sum(a.complete_statuses.values())),
            ("served without simulating (dedup+cached)", a.simulated_free),
            ("dedup/cache rate", _fmt_opt(a.dedup_rate, as_pct=True)),
            ("rejected (backpressure)", a.rejected),
            ("simulated points", a.sim_points),
            ("cross-request coalesced points", a.coalesced_points),
            ("mean owners per simulated point", _fmt_opt(a.mean_span_width)),
            ("worker-side simulation wall", f"{a.sim_wall_s:.3f}s"),
            (
                "phase-attributed share of e2e time",
                _fmt_opt(a.attributed_fraction, as_pct=True),
            ),
        ],
    )

    lines += ["", "## Latency percentiles (ms)", ""]
    rows = []
    for phase in REPORT_LATENCY_PHASES:
        pcts = a.percentiles(phase)
        samples = a.phase_samples.get(phase, [])
        if pcts is None:
            rows.append((phase, 0, "n/a", "n/a", "n/a"))
        else:
            rows.append(
                (phase, len(samples), pcts["p50"], pcts["p95"], pcts["p99"])
            )
    lines += _md_table(("phase", "samples", "p50", "p95", "p99"), rows)

    bottleneck = a.bottleneck()
    lines += [
        "",
        "## Bottleneck attribution",
        "",
        f"**Verdict:** {bottleneck['verdict']}",
        "",
    ]
    if bottleneck["shares"]:
        lines += _md_table(
            ("phase", "share of named time"),
            [
                (phase, f"{share:.1%}")
                for phase, share in sorted(
                    bottleneck["shares"].items(), key=lambda kv: -kv[1]
                )
            ],
        )

    if a.ingress_outcomes:
        lines += ["", "## Submit outcomes", ""]
        lines += _md_table(
            ("outcome", "count"), sorted(a.ingress_outcomes.items())
        )
    if a.complete_statuses:
        lines += ["", "## Terminal statuses", ""]
        lines += _md_table(
            ("status", "count"), sorted(a.complete_statuses.items())
        )
    if a.sim_engines:
        lines += ["", "## Engine tiers", ""]
        lines += _md_table(("engine", "points"), sorted(a.sim_engines.items()))
    if a.access_statuses:
        lines += ["", "## HTTP access", ""]
        lines += _md_table(
            ("status", "responses"), sorted(a.access_statuses.items())
        )

    lines += ["", "## Backpressure episodes", ""]
    if a.backpressure_episodes:
        lines += _md_table(
            ("start ts", "duration", "rejections"),
            [
                (f"{ep.start_ts:.3f}", f"{ep.duration_s:.3f}s", ep.rejections)
                for ep in a.backpressure_episodes
            ],
        )
    else:
        lines.append("none — no submit was rejected.")

    if a.snapshots:
        lines += [
            "",
            "## Sampler ring",
            "",
        ]
        lines += _md_table(
            ("signal", "value"),
            [
                ("snapshots", a.snapshots),
                ("peak queue depth", a.peak_queue_depth),
                ("peak oldest-request age", f"{a.peak_oldest_age_s:.3f}s"),
            ],
        )

    for note in a.notes:
        lines += ["", f"> note: {note}"]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# CLI: ``repro serve-report``
# ---------------------------------------------------------------------------


def serve_report_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro serve-report REQLOG``."""
    parser = argparse.ArgumentParser(
        prog="save-repro serve-report",
        description=(
            "Analyse a serve request log (written by repro serve "
            "--request-log) into a markdown report: per-phase latency "
            "percentiles, dedup/coalescing effectiveness, backpressure "
            "episodes, bottleneck attribution."
        ),
    )
    parser.add_argument(
        "reqlog",
        help="request-log JSONL file (also reads a rotated .old segment)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the markdown report to FILE instead of stdout",
    )
    args = parser.parse_args(argv)
    try:
        analysis = analyze_request_log(args.reqlog)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = render_serve_markdown(analysis, source=args.reqlog)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report -> {args.out}")
    else:
        print(report, end="")
    return 0
