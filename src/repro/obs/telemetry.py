"""Request-lifecycle telemetry for the serving layer.

The simulator side of the observability stack (:mod:`repro.obs.trace`)
answers "where do the *cycles* go"; this module answers the same
question for the *service*: where does a request's wall time go between
``POST /v1/submit`` and the stored payload?  Three pieces:

* **The request log** — a structured, versioned JSONL stream with the
  same ``validate_event`` discipline as the cycle trace.  Every request
  gets a trace ID at HTTP ingress; the service stamps it on ``ingress``
  / ``phase`` / ``sim`` / ``complete`` events as the request moves
  through dedup, the bounded queue, micro-batch formation, the executor
  (worker-side spans carry the originating trace IDs across the
  process-pool boundary) and the result-store write.  HTTP access lines
  (``access``) ride the same stream.
* **The latency recorder** — exact p50/p95/p99 percentiles per phase
  and end-to-end, computed over a bounded window of the most recent
  samples and exported as ``serve.latency.<phase>.<q>_ms`` gauges on
  ``/metrics`` (JSON and Prometheus text exposition alike).
* **The metrics ring** — a bounded on-disk ring of periodic
  ``snapshot`` events (queue depth, oldest-request age, ``serve.*``
  counters) written by the service's sampler thread.  Retention is
  two-segment: the live segment plus one rotated ``.old`` segment, so
  disk usage is bounded at ~2x the configured capacity regardless of
  uptime.

Wall-clock reads are legitimate here (this *is* the wall-clock layer),
so the file sits on the ``no-wallclock`` rule's exclude list next to
``spans.py`` and ``bench.py``.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
import time
import uuid
from collections import deque
from typing import Any, Optional, TextIO, Union
from collections.abc import Iterator, Sequence

from repro.obs.trace import read_jsonl

__all__ = [
    "LATENCY_PHASES",
    "LATENCY_QUANTILES",
    "NULL_REQUEST_LOG",
    "REQLOG_COMMON_FIELDS",
    "REQLOG_SCHEMA_VERSION",
    "REQUEST_EVENT_FIELDS",
    "LatencyRecorder",
    "NullRequestLog",
    "RequestLog",
    "ServeTelemetry",
    "exact_percentile",
    "new_trace_id",
    "read_request_log",
    "render_prometheus",
    "run_chunk_timed",
    "validate_request_event",
    "wants_prometheus",
]

#: Bump on incompatible request-log schema changes; stamped per line.
REQLOG_SCHEMA_VERSION = 1

#: Required event-specific fields, per request-log event type.
REQUEST_EVENT_FIELDS: dict[str, tuple] = {
    # One per submit, at service ingress.  ``outcome`` is accepted /
    # dedup / cached / rejected / draining.
    "ingress": ("trace_id", "key", "outcome"),
    # One wall-clock span per lifecycle phase (see LATENCY_PHASES).
    "phase": ("trace_id", "phase", "wall_s"),
    # One per simulated grid point, measured *inside* the executor
    # worker; ``trace_ids`` lists every request that owns the point
    # (micro-batching coalesces overlapping points into one span).
    "sim": ("trace_ids", "point", "wall_s", "engine"),
    # Terminal record per job: status is done / cached / failed.
    "complete": ("trace_id", "key", "status", "wall_s"),
    # One per HTTP response (the access log, ex-``log_message``).
    "access": ("trace_id", "method", "path", "status", "wall_s"),
    # Periodic sampler output into the bounded metrics ring.
    "snapshot": ("queue_depth", "active", "oldest_age_s", "counters"),
}

#: Fields common to every request-log event (stamped by the writer).
REQLOG_COMMON_FIELDS = ("ts", "event")

#: Request lifecycle phases with latency percentiles; ``e2e`` is
#: submit-to-finish.  Consumers (serve-report, the Prometheus
#: exposition) must agree with this list — the ``schema-drift`` rule
#: cross-checks any ``REPORT_LATENCY_PHASES`` declaration against it.
LATENCY_PHASES = ("queue_wait", "batch_form", "simulate", "store_write", "e2e")

#: Exact quantiles exported per phase.
LATENCY_QUANTILES = ("p50", "p95", "p99")


def new_trace_id() -> str:
    """A fresh request trace ID (16 hex chars, collision-safe enough)."""
    return uuid.uuid4().hex[:16]


def validate_request_event(event: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``event`` matches the request-log schema."""
    for name in REQLOG_COMMON_FIELDS:
        if name not in event:
            raise ValueError(
                f"request-log event missing common field {name!r}: {event}"
            )
    kind = event["event"]
    required = REQUEST_EVENT_FIELDS.get(kind)
    if required is None:
        raise ValueError(f"unknown request-log event type {kind!r}")
    ts = event["ts"]
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        raise ValueError(
            f"request-log event ts must be a non-negative number: {event}"
        )
    for name in required:
        if name not in event:
            raise ValueError(
                f"request-log event {kind!r} missing required field "
                f"{name!r}: {event}"
            )


class RequestLog:
    """Thread-safe JSONL writer for request-lifecycle events.

    Every line carries a ``v`` schema stamp and a wall-clock ``ts``.
    With ``ring_limit`` set the log becomes a bounded on-disk ring:
    after ``ring_limit`` records the live segment rotates to
    ``<path>.old`` (replacing the previous rotation), so at most
    ``2 * ring_limit`` records exist on disk at any time.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        ring_limit: Optional[int] = None,
    ) -> None:
        if ring_limit is not None and ring_limit <= 0:
            raise ValueError("ring_limit must be positive")
        self.path = str(path)
        self.ring_limit = ring_limit
        self.events_written = 0
        self._segment_count = 0
        self._lock = threading.Lock()
        # The log outlives __init__ and owns the handle; callers close
        # via close() or the context-manager protocol.
        self._file: TextIO = open(self.path, "w", encoding="utf-8")  # noqa: SIM115

    @property
    def enabled(self) -> bool:
        return True

    @property
    def rotated_path(self) -> str:
        """Where the previous ring segment lives after a rotation."""
        return self.path + ".old"

    def log_event(self, event: str, **fields: Any) -> None:
        """Stamp ``v``/``ts``/``event`` and append one JSONL line."""
        record: dict[str, Any] = {
            "v": REQLOG_SCHEMA_VERSION,
            "ts": round(time.time(), 6),
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._file.closed:
                return
            # One write call per line: a crash mid-run must not leave a
            # line without its terminator for readers to choke on.
            self._file.write(line)
            self.events_written += 1
            self._segment_count += 1
            if self.ring_limit is not None and self._segment_count >= self.ring_limit:
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        self._file.flush()
        self._file.close()
        os.replace(self.path, self.rotated_path)
        self._file = open(self.path, "w", encoding="utf-8")  # noqa: SIM115
        self._segment_count = 0

    def flush(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()

    def __enter__(self) -> RequestLog:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullRequestLog(RequestLog):
    """Discards everything; the default when request logging is off."""

    def __init__(self) -> None:  # noqa: B027 - deliberately no super()
        self.path = ""
        self.ring_limit = None
        self.events_written = 0

    @property
    def enabled(self) -> bool:
        return False

    def log_event(self, event: str, **fields: Any) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared no-op log; identity-compared to detect "logging off" cheaply.
NULL_REQUEST_LOG = NullRequestLog()


def read_request_log(path: str) -> Iterator[dict[str, Any]]:
    """Yield events from a request log (rotated ring segment first).

    Raises :class:`repro.obs.trace.TraceFormatError` on unparseable
    lines or a ``v`` stamp that is not :data:`REQLOG_SCHEMA_VERSION`.
    """
    rotated = str(path) + ".old"
    if os.path.exists(rotated):
        yield from read_jsonl(rotated, expected_version=REQLOG_SCHEMA_VERSION)
    yield from read_jsonl(str(path), expected_version=REQLOG_SCHEMA_VERSION)


# ---------------------------------------------------------------------------
# Exact latency percentiles
# ---------------------------------------------------------------------------


def exact_percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over raw samples (no bucketing).

    Unlike :class:`repro.obs.metrics.Histogram` (whose log2 buckets
    trade resolution for bounded bins), latency SLOs need the exact
    sample value at the rank — a p99 of 130ms and 250ms land in the
    same log2 bucket but are different promises.
    """
    if not samples:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class LatencyRecorder:
    """Per-phase latency samples with exact percentile readout.

    Retention: the most recent ``max_samples`` observations per phase
    (a bounded deque) — percentiles describe recent behaviour, and
    memory stays bounded over unbounded uptime.  Thread-safe: the
    dispatcher records while HTTP threads read.
    """

    _QUANTILE_VALUES = {"p50": 0.50, "p95": 0.95, "p99": 0.99}

    def __init__(self, max_samples: int = 65536) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: dict[str, deque] = {
            phase: deque(maxlen=max_samples) for phase in LATENCY_PHASES
        }

    def record(self, phase: str, wall_s: float) -> None:
        bucket = self._samples.get(phase)
        if bucket is None:
            raise ValueError(
                f"unknown latency phase {phase!r} (phases: {LATENCY_PHASES})"
            )
        with self._lock:
            bucket.append(float(wall_s))

    def count(self, phase: str) -> int:
        with self._lock:
            return len(self._samples.get(phase, ()))

    def percentiles(self, phase: str) -> Optional[dict[str, float]]:
        """``{"p50": ms, "p95": ms, "p99": ms}`` or ``None`` when empty."""
        with self._lock:
            samples = list(self._samples.get(phase, ()))
        if not samples:
            return None
        ordered = sorted(samples)
        out: dict[str, float] = {}
        for name in LATENCY_QUANTILES:
            value = exact_percentile(ordered, self._QUANTILE_VALUES[name])
            assert value is not None  # samples is non-empty
            out[name] = round(value * 1000.0, 3)
        return out

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Percentiles for every phase that has samples."""
        out: dict[str, dict[str, float]] = {}
        for phase in LATENCY_PHASES:
            pcts = self.percentiles(phase)
            if pcts is not None:
                out[phase] = pcts
        return out

    def update_gauges(self, metrics: Any) -> None:
        """Publish ``serve.latency.<phase>.<q>_ms`` gauges into a registry."""
        for phase, pcts in self.snapshot().items():
            for name, value in pcts.items():
                metrics.gauge(f"serve.latency.{phase}.{name}_ms").set(value)


# ---------------------------------------------------------------------------
# The bundle the service carries
# ---------------------------------------------------------------------------


class ServeTelemetry:
    """Request log + bounded metrics ring + latency recorder, as one unit.

    The default construction (no arguments) is the "off" configuration:
    a :data:`NULL_REQUEST_LOG`, no ring, but a live latency recorder —
    percentile gauges on ``/metrics`` cost a few floats per request and
    are always worth having.
    """

    def __init__(
        self,
        log: Optional[RequestLog] = None,
        ring: Optional[RequestLog] = None,
        latency: Optional[LatencyRecorder] = None,
    ) -> None:
        self.log = NULL_REQUEST_LOG if log is None else log
        self.ring = ring
        self.latency = latency if latency is not None else LatencyRecorder()

    @property
    def enabled(self) -> bool:
        """Whether any on-disk output (log or ring) is configured."""
        return self.log.enabled or self.ring is not None

    def record_phase(self, trace_id: str, phase: str, wall_s: float) -> None:
        """One lifecycle span: feed the recorder, append a log event."""
        wall_s = max(0.0, wall_s)
        self.latency.record(phase, wall_s)
        self.log.log_event(
            "phase", trace_id=trace_id, phase=phase, wall_s=round(wall_s, 6)
        )

    def close(self) -> None:
        self.log.close()
        if self.ring is not None:
            self.ring.close()

    def __enter__(self) -> ServeTelemetry:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Worker-side timed runners (imported lazily by SimExecutor.map_timed)
# ---------------------------------------------------------------------------


def run_chunk_timed(chunk: list) -> list:
    """Worker entry point: run (index, job) pairs with per-job wall spans.

    Returns ``[(index, (value, wall_s)), ...]``.  The span is measured
    *inside* the worker process, so a parallel service batch gets true
    per-point simulation time rather than pool round-trip time; the
    dispatcher joins the spans back to request trace IDs when it emits
    ``sim`` events.
    """
    results = []
    for index, job in chunk:
        start = time.perf_counter()
        value = job.run()
        results.append((index, (value, time.perf_counter() - start)))
    return results


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_BAD_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def wants_prometheus(accept: Optional[str]) -> bool:
    """Content negotiation for ``/metrics``: text exposition iff the
    client asks for ``text/plain`` explicitly (``*/*`` and absent
    headers keep the JSON default — existing consumers parse JSON)."""
    return bool(accept) and "text/plain" in str(accept)


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """A :meth:`MetricsRegistry.snapshot` as Prometheus text exposition.

    Counters render as ``counter``, gauges as ``gauge``, and the
    dict-of-bins histograms as cumulative ``_bucket{le=...}`` series
    plus ``_sum``/``_count`` — the standard histogram layout, with each
    bin's upper bound as its ``le`` label.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = _prom_name(name)
        hist = snapshot["histograms"][name]
        bins = hist.get("bins", {})
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for key in sorted(int(k) for k in bins):
            cumulative += bins[key] if key in bins else bins[str(key)]
            lines.append(f'{metric}_bucket{{le="{key}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.get("count", 0)}')
        lines.append(f"{metric}_sum {hist.get('total', 0)}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"
