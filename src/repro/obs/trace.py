"""Structured event tracing: per-cycle pipeline events as JSONL.

The simulator emits one event per interesting micro-architectural
occurrence — dispatch, ELM generation, BS skip, (rotate-)vertical or
chain merge, issue, retire, LWD lane-order stall, B$ hit/miss — into a
pluggable :class:`TraceSink`.  The default sink is a no-op singleton,
so tracing costs one boolean check per site when off.

Every event is a flat dict with three common fields — ``cycle``,
``event``, ``kernel`` — plus event-specific fields listed in
:data:`EVENT_FIELDS`.  :func:`validate_event` enforces the schema (the
test suite validates every line a :class:`JsonlTraceSink` writes).
"""

from __future__ import annotations

import json
import os
from typing import Any, Union
from collections.abc import Iterator

__all__ = [
    "EVENT_FIELDS",
    "TRACE_SCHEMA_VERSION",
    "JsonlTraceSink",
    "ListSink",
    "NullSink",
    "NULL_SINK",
    "TraceFormatError",
    "TraceSink",
    "read_jsonl",
    "validate_event",
]

#: Bump on incompatible schema changes; stamped on every JSONL line.
#: v2: ``mechanism`` joined the common fields.
TRACE_SCHEMA_VERSION = 2

#: Required event-specific fields, per event type.
EVENT_FIELDS: dict[str, tuple] = {
    # Front-end and retirement.
    "dispatch": ("seq", "kind"),
    "retire": ("seq",),
    # SAVE: ELM generation and BS instruction skipping (Sec. III).
    "elm": ("seq", "elm"),
    "bs_skip": ("seq",),
    # VPU issue; "merge" details a coalesced op's constituents
    # (Sec. IV: VC/RVC with rotation state; Sec. V: chain slots).
    "issue": ("kind", "lanes"),
    "merge": ("scheme", "entries"),
    # Mixed-precision accumulator chains (Sec. V-B).
    "chain_append": ("seq", "root", "lane", "mls"),
    # Lane-wise dependence stall: a lane attempted dispatch but its
    # accumulator input lane was not yet available.
    "lwd_stall": ("seq", "lane"),
    # Broadcast-cache behaviour (Sec. IV-A).
    "bcache_hit": ("addr",),
    "bcache_miss": ("addr",),
}

#: Fields common to every event.  ``mechanism`` names the skip
#: mechanism the simulation ran under ("save", "sparce", "indexmac"),
#: so merged trace files from a comparison run stay attributable.
COMMON_FIELDS = ("cycle", "event", "kernel", "mechanism")


def validate_event(event: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``event`` matches the trace schema."""
    for name in COMMON_FIELDS:
        if name not in event:
            raise ValueError(f"trace event missing common field {name!r}: {event}")
    kind = event["event"]
    required = EVENT_FIELDS.get(kind)
    if required is None:
        raise ValueError(f"unknown trace event type {kind!r}")
    if not isinstance(event["cycle"], int) or event["cycle"] < 0:
        raise ValueError(f"trace event cycle must be a non-negative int: {event}")
    for name in required:
        if name not in event:
            raise ValueError(
                f"trace event {kind!r} missing required field {name!r}: {event}"
            )


class TraceSink:
    """Event consumer interface; subclass and override :meth:`emit`."""

    def emit(self, event: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class NullSink(TraceSink):
    """Discards everything; the default when tracing is off."""

    __slots__ = ()

    def emit(self, event: dict[str, Any]) -> None:
        pass


#: Shared no-op sink; identity-compared to detect "tracing off" cheaply.
NULL_SINK = NullSink()


class ListSink(TraceSink):
    """Buffers events in memory (tests and programmatic analysis)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        self.events.append(dict(event))

    def of_type(self, kind: str) -> list[dict[str, Any]]:
        return [e for e in self.events if e["event"] == kind]


class JsonlTraceSink(TraceSink):
    """Writes one JSON object per line to a file.

    Lines carry a ``v`` schema-version field.  The sink owns the file
    handle; call :meth:`close` (or use as a context manager).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = str(path)
        # The sink outlives __init__ and owns the handle; callers close
        # via close() or the context-manager protocol.
        self._file = open(self.path, "w", encoding="utf-8")  # noqa: SIM115
        self.events_written = 0

    def emit(self, event: dict[str, Any]) -> None:
        record = {"v": TRACE_SCHEMA_VERSION}
        record.update(event)
        # One write call per line: an exception between two writes (or a
        # crash mid-run with the file left open) must not leave a line
        # without its terminator for readers to choke on.
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> JsonlTraceSink:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceFormatError(ValueError):
    """A trace file line could not be understood.

    Carries enough context (path, 1-based line number, reason) for the
    CLI to print one clear sentence instead of a stack trace.
    """

    def __init__(self, path: str, line_no: int, reason: str) -> None:
        super().__init__(f"{path}:{line_no}: {reason}")
        self.path = path
        self.line_no = line_no
        self.reason = reason


def read_jsonl(
    path: str, expected_version: int = TRACE_SCHEMA_VERSION
) -> Iterator[dict[str, Any]]:
    """Yield events from a JSONL trace file.

    Raises :class:`TraceFormatError` (a ``ValueError``) with the file
    and line number on unparseable lines — including the truncated last
    line a killed writer leaves behind — and on lines whose ``v``
    schema-version stamp does not match ``expected_version`` (the cycle
    trace's :data:`TRACE_SCHEMA_VERSION` by default; other JSONL
    schemas, like the serve request log, pass their own).
    """
    with open(path, encoding="utf-8") as handle:
        saw_newline = True
        for line_no, raw in enumerate(handle, start=1):
            saw_newline = raw.endswith("\n")
            line = raw.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                reason = (
                    "truncated trailing line (writer was interrupted "
                    "mid-event?)"
                    if not saw_newline
                    else f"not valid JSON ({error.msg})"
                )
                raise TraceFormatError(path, line_no, reason) from None
            if not isinstance(event, dict):
                raise TraceFormatError(
                    path, line_no, f"expected a JSON object, got {type(event).__name__}"
                )
            version = event.get("v")
            if version is not None and version != expected_version:
                raise TraceFormatError(
                    path,
                    line_no,
                    f"trace schema version {version!r} is not the supported "
                    f"version {expected_version}",
                )
            yield event
