"""Offline trace analytics: from raw JSONL events to "why is it slow".

The paper argues its case through *derived* signals — combination-window
occupancy, coalescing width, broadcast-cache hit rate, per-component
attribution (Figs. 14-19) — not raw event dumps.  This module rebuilds
those signals from a :class:`repro.obs.trace.JsonlTraceSink` file (or
any iterable of schema-valid events):

* totals and rates (B$ hit rate, BS-skip fraction, LWD stalls/FMA),
* a windowed timeline (per N-cycle interval: dispatch/issue/retire
  throughput, lanes, stalls, B$ traffic, in-flight µops),
* distributions (coalescing width per merged op, rotation states,
  ELM popcounts, merge widths),
* a bottleneck-attribution summary with a one-line verdict.

``repro trace-report FILE`` renders the whole thing as markdown.

The mean coalescing width and B$ hit rate computed here agree with the
live :class:`repro.obs.metrics.MetricsRegistry` counters of the same
run (cross-checked by the test suite) — the two views are derived from
the same event stream, one online, one offline.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Optional
from collections.abc import Iterable, Sequence

from repro.isa.datatypes import FP32_LANES
from repro.obs.trace import read_jsonl

__all__ = [
    "TraceAnalysis",
    "WindowStats",
    "analyze_events",
    "analyze_file",
    "render_markdown",
    "trace_report_main",
]

#: Default cap on timeline rows; the window size is derived from it.
DEFAULT_MAX_WINDOWS = 40


@dataclass
class WindowStats:
    """Event throughput over one ``[start, start + size)`` cycle window."""

    start: int
    size: int
    dispatches: int = 0
    retires: int = 0
    issue_ops: int = 0
    issue_lanes: int = 0
    merges: int = 0
    bs_skips: int = 0
    lwd_stalls: int = 0
    bcache_hits: int = 0
    bcache_misses: int = 0
    #: µops dispatched but not yet retired at the window's end.
    inflight_end: int = 0

    @property
    def issue_rate(self) -> float:
        """VPU ops issued per cycle (issue-slot utilisation proxy)."""
        return self.issue_ops / self.size if self.size else 0.0

    @property
    def lane_occupancy(self) -> float:
        """Mean occupied lanes per issued op (coalescing width)."""
        return self.issue_lanes / self.issue_ops if self.issue_ops else 0.0

    @property
    def bcache_hit_rate(self) -> Optional[float]:
        total = self.bcache_hits + self.bcache_misses
        return self.bcache_hits / total if total else None


@dataclass
class TraceAnalysis:
    """Everything derived from one event stream.

    A trace file may hold several back-to-back simulations (a sweep
    emits one per grid point); each restarts its cycle counter at zero.
    Runs are detected by the cycle going backwards and concatenated
    onto one timeline, so ``cycles`` is the total across runs and the
    windowed timeline shows run after run, not runs stacked on top of
    each other.
    """

    cycles: int
    runs: int
    kernels: list[str]
    event_counts: dict[str, int]
    #: Coalescing width: occupied lanes per issued VPU op.
    lanes_per_op: dict[int, int]
    #: Entries per ``merge`` event (instructions coalesced per op).
    merge_widths: dict[int, int]
    #: Rotation-state name → lane-entry count (RVC only; empty for VC).
    rotation_states: dict[str, int]
    #: ELM popcount distribution (effectual lanes per VFMA).
    elm_popcounts: dict[int, int]
    schemes: dict[str, int]
    windows: list[WindowStats]
    window_size: int
    busy_cycles: int
    notes: list[str] = field(default_factory=list)

    # -- headline rates ---------------------------------------------------

    @property
    def issue_ops(self) -> int:
        return self.event_counts.get("issue", 0)

    @property
    def issue_lanes(self) -> int:
        return sum(width * n for width, n in self.lanes_per_op.items())

    @property
    def mean_coalescing_width(self) -> float:
        """Mean occupied lanes per issued VPU op (== lanes_per_op mean)."""
        return self.issue_lanes / self.issue_ops if self.issue_ops else 0.0

    @property
    def bcache_hits(self) -> int:
        return self.event_counts.get("bcache_hit", 0)

    @property
    def bcache_misses(self) -> int:
        return self.event_counts.get("bcache_miss", 0)

    @property
    def bcache_hit_rate(self) -> Optional[float]:
        total = self.bcache_hits + self.bcache_misses
        return self.bcache_hits / total if total else None

    @property
    def fma_count(self) -> int:
        return self.event_counts.get("elm", 0)

    @property
    def bs_skip_fraction(self) -> Optional[float]:
        return (
            self.event_counts.get("bs_skip", 0) / self.fma_count
            if self.fma_count
            else None
        )

    @property
    def lwd_stalls_per_fma(self) -> Optional[float]:
        return (
            self.event_counts.get("lwd_stall", 0) / self.fma_count
            if self.fma_count
            else None
        )

    @property
    def busy_fraction(self) -> float:
        """Fraction of simulated cycles with at least one VPU issue."""
        return self.busy_cycles / self.cycles if self.cycles else 0.0

    # -- attribution ------------------------------------------------------

    def bottleneck(self) -> dict[str, Any]:
        """Heuristic attribution: which signal dominates the slow cycles.

        Deterministic rules over the derived rates; the verdict names
        the strongest signal, the ``signals`` dict shows all of them so
        a reader can disagree with the ranking.
        """
        signals: dict[str, float] = {
            "vpu_idle_fraction": 1.0 - self.busy_fraction,
            "coalescing_headroom": (
                1.0 - self.mean_coalescing_width / FP32_LANES
                if self.issue_ops
                else 0.0
            ),
            "bcache_miss_rate": (
                1.0 - self.bcache_hit_rate
                if self.bcache_hit_rate is not None
                else 0.0
            ),
            "lwd_stall_rate": min(1.0, self.lwd_stalls_per_fma or 0.0),
            "bs_skip_fraction": self.bs_skip_fraction or 0.0,
        }
        if self.busy_fraction < 0.5:
            verdict = (
                "VPU idle most cycles: front-end, memory, or dependence "
                "bound — not VPU throughput bound"
            )
        elif signals["lwd_stall_rate"] > 0.5:
            verdict = (
                "lane-order dependence stalls dominate: accumulator "
                "chains serialise lane dispatch"
            )
        elif signals["coalescing_headroom"] > 0.5:
            verdict = (
                "VPU busy but ops issue under half full: sparsity too "
                "low/unstructured for the coalescing window to fill ops"
            )
        elif signals["bcache_miss_rate"] > 0.5:
            verdict = "broadcast-cache misses dominate the L1 port budget"
        else:
            verdict = (
                "VPU throughput bound: issue slots busy and ops well "
                "coalesced — compute is the limiter"
            )
        return {"verdict": verdict, "signals": signals}


def _dist_add(dist: dict, key, n: int = 1) -> None:
    dist[key] = dist.get(key, 0) + n


def analyze_events(
    events: Iterable[dict[str, Any]], window: Optional[int] = None
) -> TraceAnalysis:
    """Analyse one event stream (one pass, bounded memory).

    Args:
        events: schema-valid trace events (``read_jsonl`` output or a
            :class:`repro.obs.trace.ListSink`'s buffer).
        window: timeline interval in cycles.  Default: the smallest
            round size giving at most :data:`DEFAULT_MAX_WINDOWS` rows.
    """
    counts: dict[str, int] = {}
    lanes_per_op: dict[int, int] = {}
    merge_widths: dict[int, int] = {}
    rotation_states: dict[str, int] = {}
    elm_popcounts: dict[int, int] = {}
    schemes: dict[str, int] = {}
    kernels: dict[str, None] = {}
    busy_cycles_seen: set = set()
    #: (timeline-cycle, event-kind, lanes) triples for the windowing pass.
    slim: list = []
    max_cycle = -1
    # Run concatenation: within one simulation, events arrive in
    # nondecreasing cycle order; a backwards jump means a new run.
    offset = 0
    last_raw = -1
    runs = 0

    for event in events:
        kind = event["event"]
        raw_cycle = event["cycle"]
        if last_raw < 0:
            runs = 1
        elif raw_cycle < last_raw:
            offset += last_raw + 1
            runs += 1
        last_raw = raw_cycle
        cycle = offset + raw_cycle
        if cycle > max_cycle:
            max_cycle = cycle
        _dist_add(counts, kind)
        kernels.setdefault(event.get("kernel", ""), None)
        lanes = 0
        if kind == "issue":
            lanes = event.get("lanes", 0)
            _dist_add(lanes_per_op, lanes)
            busy_cycles_seen.add(cycle)
        elif kind == "merge":
            entries = event.get("entries", ())
            _dist_add(merge_widths, len(entries))
            _dist_add(schemes, event.get("scheme", "?"))
            for entry in entries:
                state = entry.get("rstate")
                if state is not None:
                    _dist_add(rotation_states, state)
        elif kind == "elm":
            _dist_add(elm_popcounts, bin(event.get("elm", 0)).count("1"))
        slim.append((cycle, kind, lanes))

    cycles = max_cycle + 1
    if window is None:
        window = max(1, -(-cycles // DEFAULT_MAX_WINDOWS)) if cycles else 1
    if window <= 0:
        raise ValueError("window must be a positive cycle count")

    n_windows = -(-cycles // window) if cycles else 0
    windows = [WindowStats(start=i * window, size=window) for i in range(n_windows)]
    if windows:
        windows[-1].size = cycles - windows[-1].start
    _WINDOW_FIELD = {
        "dispatch": "dispatches",
        "retire": "retires",
        "merge": "merges",
        "bs_skip": "bs_skips",
        "lwd_stall": "lwd_stalls",
        "bcache_hit": "bcache_hits",
        "bcache_miss": "bcache_misses",
    }
    for cycle, kind, lanes in slim:
        stats = windows[cycle // window]
        if kind == "issue":
            stats.issue_ops += 1
            stats.issue_lanes += lanes
        else:
            name = _WINDOW_FIELD.get(kind)
            if name is not None:
                setattr(stats, name, getattr(stats, name) + 1)
    inflight = 0
    for stats in windows:
        inflight += stats.dispatches - stats.retires
        stats.inflight_end = inflight

    notes: list[str] = []
    if counts.get("dispatch", 0) and not counts.get("retire", 0):
        notes.append("no retire events: trace looks truncated mid-run")
    return TraceAnalysis(
        cycles=cycles,
        runs=runs,
        kernels=sorted(k for k in kernels if k),
        event_counts=dict(sorted(counts.items())),
        lanes_per_op=dict(sorted(lanes_per_op.items())),
        merge_widths=dict(sorted(merge_widths.items())),
        rotation_states=dict(sorted(rotation_states.items())),
        elm_popcounts=dict(sorted(elm_popcounts.items())),
        schemes=dict(sorted(schemes.items())),
        windows=windows,
        window_size=window,
        busy_cycles=len(busy_cycles_seen),
        notes=notes,
    )


def analyze_file(path: str, window: Optional[int] = None) -> TraceAnalysis:
    """Analyse a JSONL trace file (see :func:`repro.obs.trace.read_jsonl`)."""
    return analyze_events(read_jsonl(path), window=window)


# ---------------------------------------------------------------------------
# Markdown rendering
# ---------------------------------------------------------------------------


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> list[str]:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _fmt_opt(value: Optional[float], as_pct: bool = False) -> str:
    if value is None:
        return "n/a"
    return f"{value:.1%}" if as_pct else f"{value:.2f}"


def _dist_rows(dist: dict, total: Optional[int] = None) -> list[list[Any]]:
    total = total if total is not None else sum(dist.values()) or 1
    return [[key, n, f"{n / total:.1%}"] for key, n in dist.items()]


def render_markdown(analysis: TraceAnalysis, source: str = "") -> str:
    """The ``repro trace-report`` document."""
    a = analysis
    lines: list[str] = ["# Trace report"]
    if source:
        lines.append(f"\nSource: `{source}`")
    lines += [
        "",
        "## Summary",
        "",
    ]
    lines += _md_table(
        ("signal", "value"),
        [
            ("kernels", ", ".join(a.kernels) or "?"),
            ("simulation runs", a.runs),
            ("simulated cycles (all runs)", a.cycles),
            ("events", sum(a.event_counts.values())),
            ("VPU ops issued", a.issue_ops),
            ("VPU busy cycles", f"{a.busy_cycles} ({a.busy_fraction:.1%})"),
            ("mean coalescing width (lanes/op)", _fmt_opt(a.mean_coalescing_width)),
            ("B$ hit rate", _fmt_opt(a.bcache_hit_rate, as_pct=True)),
            ("BS-skipped VFMAs", _fmt_opt(a.bs_skip_fraction, as_pct=True)),
            ("LWD stalls per VFMA", _fmt_opt(a.lwd_stalls_per_fma)),
        ],
    )
    lines += ["", "### Event counts", ""]
    lines += _md_table(
        ("event", "count"), sorted(a.event_counts.items())
    )

    bottleneck = a.bottleneck()
    lines += [
        "",
        "## Bottleneck attribution",
        "",
        f"**Verdict:** {bottleneck['verdict']}",
        "",
    ]
    lines += _md_table(
        ("signal", "strength"),
        [(name, f"{value:.2f}") for name, value in bottleneck["signals"].items()],
    )

    if a.lanes_per_op:
        lines += ["", "## Coalescing width (occupied lanes per issued op)", ""]
        lines += _md_table(
            ("lanes", "ops", "share"), _dist_rows(a.lanes_per_op)
        )
    if a.merge_widths:
        lines += ["", "## Merge width (instructions coalesced per op)", ""]
        lines += _md_table(
            ("entries", "merges", "share"), _dist_rows(a.merge_widths)
        )
    if a.rotation_states:
        lines += ["", "## Rotation states (RVC lane entries)", ""]
        lines += _md_table(
            ("state", "entries", "share"), _dist_rows(a.rotation_states)
        )
    if a.elm_popcounts:
        lines += ["", "## ELM popcount (effectual lanes per VFMA)", ""]
        lines += _md_table(
            ("effectual lanes", "VFMAs", "share"), _dist_rows(a.elm_popcounts)
        )

    lines += [
        "",
        f"## Timeline ({a.window_size}-cycle windows)",
        "",
    ]
    lines += _md_table(
        (
            "cycle",
            "disp",
            "issue",
            "lanes/op",
            "ops/cyc",
            "retire",
            "in-flight",
            "bs_skip",
            "lwd",
            "B$ hit%",
        ),
        [
            (
                w.start,
                w.dispatches,
                w.issue_ops,
                f"{w.lane_occupancy:.1f}",
                f"{w.issue_rate:.2f}",
                w.retires,
                w.inflight_end,
                w.bs_skips,
                w.lwd_stalls,
                _fmt_opt(w.bcache_hit_rate, as_pct=True),
            )
            for w in a.windows
        ],
    )
    for note in a.notes:
        lines += ["", f"> note: {note}"]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# CLI: ``repro trace-report``
# ---------------------------------------------------------------------------


def trace_report_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro trace-report FILE``."""
    parser = argparse.ArgumentParser(
        prog="save-repro trace-report",
        description=(
            "Analyse a JSONL event trace (written by --trace) into a "
            "markdown report: timelines, distributions, bottleneck "
            "attribution."
        ),
    )
    parser.add_argument("file", help="JSONL trace file (from --trace)")
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="timeline interval in cycles (default: auto, <= 40 rows)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the markdown report to FILE instead of stdout",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="FILE",
        default=None,
        help="also export the events as Chrome trace-event JSON (Perfetto)",
    )
    args = parser.parse_args(argv)
    try:
        analysis = analyze_file(args.file, window=args.window)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = render_markdown(analysis, source=args.file)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"report -> {args.out}")
    else:
        print(report, end="")
    if args.chrome_trace:
        from repro.obs.chrometrace import write_chrome_trace

        try:
            events = list(read_jsonl(args.file))
        except ValueError as error:  # pragma: no cover - already read once
            print(f"error: {error}", file=sys.stderr)
            return 2
        write_chrome_trace(args.chrome_trace, events=events)
        print(f"chrome trace -> {args.chrome_trace}")
    return 0
