"""The performance ledger: ``repro bench`` and ``BENCH_<seq>.json``.

PR 1 made the simulator 4.5-7.5x faster; nothing since would notice if
a change gave that back.  This module closes the loop: a *fixed* suite
of simulator workloads (one SAVE point, a coarse sweep, the same sweep
through a 2-worker pool) is timed and appended to an on-disk ledger of
``BENCH_0001.json``, ``BENCH_0002.json``, ... entries.  Every run
compares itself against the previous entry and **exits non-zero when
wall time regresses beyond the threshold** — the CI ``bench-smoke``
job runs ``repro bench --quick`` on every PR.

Each workload records three things:

* ``wall_s`` — best-of-``repeats`` wall time of the *uninstrumented*
  run (what users feel; instrumentation is off so the hot path is the
  one being guarded),
* ``cycles_per_sec`` — simulated cycles per host second, the
  scale-free throughput number that survives workload renames,
* ``counters`` — key metric counters from one separately-run
  *instrumented* pass (never timed).  Counter drift between entries
  means the simulated machine itself changed — reported as a warning,
  not a regression, since model changes are sometimes the point.

The ``fastsim_sweep`` workload times the same coarse sweep on the
exact and fast engine tiers and records ``speedup_over_exact`` — the
ledger is where the fast tier's headline speedup is demonstrated and
guarded.  ``repro bench report`` renders the committed entries as a
per-workload trajectory so the repo's perf history reads at a glance.

The ``sweep_throughput`` workload is the out-of-core scale guard: it
runs a large fast-tier sweep through :func:`repro.experiments.\
streamsweep.stream_sweep` into a throwaway columnar store — each sweep
in its own subprocess so ``ru_maxrss`` measures that sweep alone — and
records points/second plus peak RSS next to the peak RSS of a 1k-point
reference sweep.  ``rss_ratio`` staying small (the CI streaming-smoke
job pins it under 2x) is the evidence that sweep memory is bounded by
the batch and segment sizes, not the grid.

The ``serve_roundtrip`` workload guards the *service* path: it boots a
full self-hosted server (HTTP stack, dedup, bounded queue, micro-batch
dispatcher, 2-worker pool, result store) against a cold store and
replays the three :mod:`repro.serve.loadgen` traffic mixes through it,
recording per-mix throughput and exact p50/p95/p99 end-to-end latency.
``sim_cycles`` is recomputed deterministically from the unique request
fingerprints (cold store + dedup means each is simulated exactly once),
so cycle drift still means the simulated machine changed, not the
serving layer.

The ``check_wall`` workload guards the static-analysis engine itself:
``repro check`` over the shipped source tree, cold then warm against
the same cache directory.  ``warm_speedup`` is the incremental
engine's headline number — the CI check job pins it at >= 3x.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import sys
import time
from collections.abc import Callable
from pathlib import Path
from typing import Any, Optional

from repro._version import __version__

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_LEDGER_DIR",
    "DEFAULT_THRESHOLD",
    "MIX_P95_THRESHOLD",
    "bench_main",
    "compare_entries",
    "format_report",
    "ledger_paths",
    "next_seq",
    "report_main",
    "run_suite",
    "validate_entry",
    "write_entry",
]

BENCH_SCHEMA_VERSION = 1

#: Wall-time increase (fractional) that counts as a regression.
DEFAULT_THRESHOLD = 0.25

#: Per-mix p95 latency increase (fractional) that counts as a
#: regression for workloads carrying ``mixes`` (``serve_roundtrip``).
#: Tighter than the wall-time gate: summed wall time can hide one mix's
#: tail latency blowing up while the others absorb the average.
MIX_P95_THRESHOLD = 0.20

#: Ledger location, relative to the invoking directory.
DEFAULT_LEDGER_DIR = Path("benchmarks") / "ledger"

_ENTRY_NAME = re.compile(r"^BENCH_(\d{4,})\.json$")

#: Counters copied into the ledger when the instrumented pass saw them.
KEY_COUNTERS = (
    "sim_cycles",
    "sim_runs",
    "bs_skips",
    "lwd_stalls",
    "effectual_lanes",
    "pass_through_lanes",
    "bcache_hits",
    "bcache_misses",
)


# ---------------------------------------------------------------------------
# Workload suite
# ---------------------------------------------------------------------------


def _suite(quick: bool) -> list[tuple[str, int, Any]]:
    """(name, jobs, job-list builder) triples — fixed order, fixed seeds."""
    from repro.core.config import SAVE_2VPU
    from repro.experiments.executor import METRIC_TIME_NS, PointJob
    from repro.kernels.library import get_kernel

    spec = get_kernel("resnet2_2_fwd")

    def point_jobs(levels, k_steps):
        return [
            PointJob(
                config=spec.config(
                    broadcast_sparsity=bs,
                    nonbroadcast_sparsity=nbs,
                    k_steps=k_steps,
                    seed=0,
                ),
                machine=SAVE_2VPU,
                metric=METRIC_TIME_NS,
            )
            for bs in levels
            for nbs in levels
        ]

    if quick:
        single = point_jobs((0.6,), 6)
        sweep = point_jobs((0.0, 0.9), 4)
    else:
        single = point_jobs((0.6,), 24)
        sweep = point_jobs((0.0, 0.3, 0.6, 0.9), 8)
    return [
        ("single_save_point", 1, single),
        ("coarse_sweep", 1, sweep),
        ("parallel_sweep", 2, sweep),
        ("fastsim_sweep", 1, sweep),
        ("sweep_throughput", 1, None),
        ("serve_roundtrip", 2, None),
        ("check_wall", 1, None),
    ]


def _run_workload(
    name: str, jobs: int, point_jobs: list[Any], repeats: int
) -> dict[str, Any]:
    """Time one workload and collect its instrumented counters."""
    from repro.experiments.executor import SimExecutor
    from repro.obs import MetricsRegistry

    # Timed passes: uninstrumented, best-of-N (the guard on the
    # obs=None hot path the observability layer promises not to touch).
    executor = SimExecutor(jobs=jobs)
    best: Optional[float] = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        executor.map(point_jobs)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert best is not None  # the range above is never empty

    # Counter pass: instrumented, never timed.
    registry = MetricsRegistry()
    SimExecutor(jobs=1, metrics=registry).map(point_jobs)
    counters = registry.snapshot()["counters"]
    sim_cycles = int(counters.get("sim_cycles", 0))
    return {
        "wall_s": round(best, 6),
        "jobs": jobs,
        "points": len(point_jobs),
        "sim_cycles": sim_cycles,
        "cycles_per_sec": round(sim_cycles / best, 1) if best else 0.0,
        "counters": {
            key: int(counters[key]) for key in KEY_COUNTERS if key in counters
        },
    }


def _run_fastsim_workload(point_jobs: list[Any], repeats: int) -> dict[str, Any]:
    """Time the same sweep on the exact and fast engine tiers.

    ``wall_s`` is the *fast* tier's wall time — the number the
    regression gate guards — while ``exact_wall_s`` and
    ``speedup_over_exact`` record how far the fast tier stays ahead of
    the cycle-level pipeline on identical points.  Counters come from
    the fast results themselves: the fast tier computes them
    statically, so a separate instrumented pass would add nothing.
    """
    from dataclasses import replace

    from repro.experiments.executor import SimExecutor
    from repro.fastsim import simulate_config

    fast_jobs = [replace(job, engine="fast") for job in point_jobs]
    executor = SimExecutor(jobs=1)

    def best_of(jobs: list[Any]) -> float:
        best: Optional[float] = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            executor.map(jobs)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        assert best is not None  # the range above is never empty
        return best

    # Warm-up: the first fast call pays the one-time calibration-table
    # load; charge neither tier for it.
    executor.map(fast_jobs[:1])
    fast_wall = best_of(fast_jobs)
    exact_wall = best_of(point_jobs)

    sim_cycles = sim_runs = effectual = pass_through = 0
    for job in fast_jobs:
        result = simulate_config(job.config, job.machine, job.engine)
        sim_cycles += result.cycles
        sim_runs += 1
        effectual += result.effectual_lanes
        pass_through += result.pass_through_lanes
    return {
        "wall_s": round(fast_wall, 6),
        "exact_wall_s": round(exact_wall, 6),
        "speedup_over_exact": (
            round(exact_wall / fast_wall, 2) if fast_wall else 0.0
        ),
        "jobs": 1,
        "points": len(point_jobs),
        "sim_cycles": sim_cycles,
        "cycles_per_sec": round(sim_cycles / fast_wall, 1) if fast_wall else 0.0,
        "counters": {
            "sim_cycles": sim_cycles,
            "sim_runs": sim_runs,
            "effectual_lanes": effectual,
            "pass_through_lanes": pass_through,
        },
    }


#: Child script for one isolated streaming sweep.  Runs in its own
#: interpreter so ``ru_maxrss`` (monotone over a process's lifetime)
#: measures exactly one sweep; prints a single JSON line.
_SWEEP_CHILD = """\
import json, resource, sys
spec = json.loads(sys.argv[1])
from repro.core.config import SAVE_2VPU
from repro.experiments.streamsweep import stream_sweep
from repro.store import SweepStore
step = 0.9 / max(spec["grid"] - 1, 1)
levels = [round(i * step, 6) for i in range(spec["grid"])]
summary = stream_sweep(
    "resnet2_2_fwd", SAVE_2VPU, levels, levels, spec["store"],
    engine="fast", metric="time_ns", k_steps=spec["k_steps"],
    overwrite=True,
)
total_ns = sum(
    row["value"]
    for row in SweepStore(spec["store"]).query(
        fingerprint=summary["fingerprint"]
    )
)
rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "points": summary["points"],
    "total_ns": total_ns,
    "ru_maxrss_kb": rss_kb,
}))
"""


def _sweep_child(grid: int, k_steps: int, store: str) -> dict[str, Any]:
    """Run one streaming sweep in a subprocess; returns its JSON report."""
    import os
    import subprocess

    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_root, env.get("PYTHONPATH")) if p
    )
    spec = json.dumps({"grid": grid, "k_steps": k_steps, "store": store})
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _SWEEP_CHILD, spec],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    report: dict[str, Any] = json.loads(proc.stdout.strip().splitlines()[-1])
    report["wall_s"] = time.perf_counter() - start
    return report


def _run_sweep_throughput(quick: bool) -> dict[str, Any]:
    """Time one large out-of-core sweep and bound its memory.

    Unlike the ms-scale workloads this one is timed once, not
    best-of-``repeats`` — throughput variance amortises over the grid.
    The 1k-point reference sweep runs first (its own subprocess) so
    ``rss_ratio`` compares two independent peak-RSS readings; on Linux
    ``ru_maxrss`` is in kilobytes.
    """
    import tempfile

    from repro.core.config import SAVE_2VPU  # the swept machine

    grid, k_steps = (100, 6) if quick else (317, 8)
    with tempfile.TemporaryDirectory(prefix="sweepbench-") as tmp:
        small = _sweep_child(32, k_steps, str(Path(tmp) / "small"))
        big = _sweep_child(grid, k_steps, str(Path(tmp) / "big"))
    freq_ghz = SAVE_2VPU.core.freq_ghz
    sim_cycles = int(round(big["total_ns"] * freq_ghz))
    wall = big["wall_s"]
    return {
        "wall_s": round(wall, 6),
        "jobs": 1,
        "points": int(big["points"]),
        "points_per_sec": round(big["points"] / wall, 1) if wall else 0.0,
        "peak_rss_mb": round(big["ru_maxrss_kb"] / 1024.0, 1),
        "small_points": int(small["points"]),
        "small_rss_mb": round(small["ru_maxrss_kb"] / 1024.0, 1),
        "rss_ratio": (
            round(big["ru_maxrss_kb"] / small["ru_maxrss_kb"], 3)
            if small["ru_maxrss_kb"]
            else 0.0
        ),
        "sim_cycles": sim_cycles,
        "cycles_per_sec": round(sim_cycles / wall, 1) if wall else 0.0,
        "counters": {
            "sim_cycles": sim_cycles,
            "sim_runs": int(big["points"]),
        },
    }


def _run_serve_roundtrip(quick: bool) -> dict[str, Any]:
    """Round-trip the loadgen traffic mixes through a self-hosted server.

    Timed once (like ``sweep_throughput``): per-request latency variance
    amortises over the mixes, and re-running against a warm store would
    measure the cache, not the service.  ``wall_s`` — the regression
    gate's number — is the summed wall time of the three mixes.
    """
    import tempfile

    from repro.fastsim import simulate_config
    from repro.serve.loadgen import (
        MIXES,
        build_requests,
        run_loadgen,
        self_hosted_server,
    )
    from repro.serve.schema import parse_request

    requests_per_mix, concurrency, k_steps = (
        (16, 4, 2) if quick else (40, 8, 3)
    )
    with tempfile.TemporaryDirectory(prefix="servebench-") as tmp:
        store = str(Path(tmp) / "store")
        with self_hosted_server(store, jobs=2) as base_url:
            stats = run_loadgen(
                base_url,
                mixes=MIXES,
                requests_per_mix=requests_per_mix,
                concurrency=concurrency,
                k_steps=k_steps,
                engine="fast",
            )
    errors = sum(mix["errors"] for mix in stats.values())
    if errors:
        first = next(
            mix["first_error"] for mix in stats.values() if mix["errors"]
        )
        raise RuntimeError(
            f"serve_roundtrip: {errors} request(s) failed ({first})"
        )

    # Deterministic cycle count: against a cold store with dedup, each
    # unique request fingerprint is simulated exactly once.
    unique: dict[str, Any] = {}
    for mix in MIXES:
        for body in build_requests(mix, requests_per_mix, k_steps, "fast"):
            request = parse_request(body)
            unique[request.fingerprint()] = request
    sim_cycles = sim_runs = 0
    for request in unique.values():
        for job in request.jobs():
            sim_cycles += simulate_config(
                job.config, job.machine, job.engine
            ).cycles
            sim_runs += 1

    wall = sum(mix["wall_s"] for mix in stats.values())
    return {
        "wall_s": round(wall, 6),
        "jobs": 2,
        "points": sim_runs,
        "requests": sum(mix["requests"] for mix in stats.values()),
        "mixes": {
            name: {
                key: mix[key]
                for key in (
                    "requests", "throughput_rps", "p50_ms", "p95_ms", "p99_ms"
                )
            }
            for name, mix in stats.items()
        },
        "sim_cycles": sim_cycles,
        "cycles_per_sec": round(sim_cycles / wall, 1) if wall else 0.0,
        "counters": {"sim_cycles": sim_cycles, "sim_runs": sim_runs},
    }


def _run_check_wall(quick: bool) -> dict[str, Any]:
    """Time ``repro check`` over the shipped source tree, cold then warm.

    The static-analysis engine promises incrementality: a warm run
    against an unchanged tree replays the memoised result instead of
    re-parsing anything.  This workload is where that promise is
    guarded — ``wall_s`` (the regression gate's number) is the cold
    wall, and ``warm_speedup`` records how far the cache keeps warm
    re-runs ahead (the CI check job pins it at >= 3x).  There is no
    simulator in the loop, so ``sim_cycles`` is fixed at 0; counter
    drift here means the *checked tree* changed size, which is
    expected, not a model change.
    """
    import tempfile

    import repro
    from repro.check import run_checks

    src_root = Path(repro.__file__).resolve().parents[1]
    with tempfile.TemporaryDirectory(prefix="checkbench-") as tmp:
        cache_dir = Path(tmp) / "cache"
        start = time.perf_counter()
        cold = run_checks(src_root, cache_dir=cache_dir)
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_checks(src_root, cache_dir=cache_dir)
        warm_wall = time.perf_counter() - start
    if warm.files_checked != cold.files_checked:
        raise RuntimeError(
            "check_wall: warm run saw a different tree "
            f"({warm.files_checked} vs {cold.files_checked} files)"
        )
    return {
        "wall_s": round(cold_wall, 6),
        "warm_wall_s": round(warm_wall, 6),
        "warm_speedup": round(cold_wall / warm_wall, 2) if warm_wall else 0.0,
        "jobs": 1,
        "files": cold.files_checked,
        "diagnostics": len(cold.diagnostics),
        "sim_cycles": 0,
        "cycles_per_sec": 0.0,
        "counters": {
            "files_checked": cold.files_checked,
            "diagnostics": len(cold.diagnostics),
            "suppressed": cold.suppressed,
        },
    }


def run_suite(
    quick: bool = False,
    repeats: int = 2,
    echo: Optional[Callable[[str], Any]] = None,
) -> dict[str, Any]:
    """Run the fixed suite; returns a schema-valid (seq-less) entry."""
    workloads: dict[str, Any] = {}
    for name, jobs, point_jobs in _suite(quick):
        if name == "fastsim_sweep":
            result = _run_fastsim_workload(point_jobs, repeats)
        elif name == "sweep_throughput":
            result = _run_sweep_throughput(quick)
        elif name == "serve_roundtrip":
            result = _run_serve_roundtrip(quick)
        elif name == "check_wall":
            result = _run_check_wall(quick)
        else:
            result = _run_workload(name, jobs, point_jobs, repeats)
        workloads[name] = result
        if echo is not None:
            extra = ""
            if "speedup_over_exact" in result:
                extra = f", {result['speedup_over_exact']:.1f}x vs exact"
            if "points_per_sec" in result:
                extra = (
                    f", {result['points_per_sec']:.0f} pts/s, "
                    f"rss {result['peak_rss_mb']:.0f}MB "
                    f"({result['rss_ratio']:.2f}x vs "
                    f"{result['small_points']}-pt sweep)"
                )
            if "mixes" in result:
                extra = ", " + "  ".join(
                    f"{mix} p99 {record['p99_ms']:.0f}ms"
                    for mix, record in result["mixes"].items()
                )
            if "warm_speedup" in result:
                extra = (
                    f", {result['files']} files, warm "
                    f"{result['warm_wall_s']:.3f}s "
                    f"({result['warm_speedup']:.0f}x)"
                )
            echo(
                f"  {name}: {result['wall_s']:.3f}s wall, "
                f"{result['sim_cycles']} cycles "
                f"({result['cycles_per_sec']:.0f} cyc/s, jobs={jobs}{extra})"
            )
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "created_unix": round(time.time(), 3),
        "quick": bool(quick),
        "repeats": int(repeats),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "version": __version__,
        "workloads": workloads,
    }


# ---------------------------------------------------------------------------
# Ledger on disk
# ---------------------------------------------------------------------------


def ledger_paths(directory: Path) -> list[tuple[int, Path]]:
    """All ``BENCH_<seq>.json`` entries under ``directory``, seq order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        match = _ENTRY_NAME.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def next_seq(directory: Path) -> int:
    entries = ledger_paths(directory)
    return entries[-1][0] + 1 if entries else 1


def write_entry(
    directory: Path, entry: dict[str, Any], seq: Optional[int] = None
) -> Path:
    """Persist one entry under ``seq`` (default: next in sequence).

    An explicit ``seq`` pins the entry number — the committed per-PR
    entries use the PR number — and refuses to overwrite an existing
    entry rather than silently rewriting history.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if seq is None:
        seq = next_seq(directory)
    elif any(existing == seq for existing, _ in ledger_paths(directory)):
        raise ValueError(f"ledger entry with seq {seq} already exists")
    entry = dict(entry, seq=int(seq))
    validate_entry(entry)
    path = directory / f"BENCH_{seq:04d}.json"
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def validate_entry(entry: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``entry`` matches the ledger schema."""
    if not isinstance(entry, dict):
        raise ValueError("ledger entry must be a JSON object")
    if entry.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"ledger entry schema {entry.get('schema')!r} is not the "
            f"supported version {BENCH_SCHEMA_VERSION}"
        )
    for key, kind in (
        ("seq", int),
        ("quick", bool),
        ("python", str),
        ("workloads", dict),
    ):
        if not isinstance(entry.get(key), kind):
            raise ValueError(f"ledger entry field {key!r} must be {kind.__name__}")
    if not entry["workloads"]:
        raise ValueError("ledger entry has no workloads")
    for name, workload in entry["workloads"].items():
        for key in ("wall_s", "sim_cycles", "cycles_per_sec", "counters"):
            if key not in workload:
                raise ValueError(f"workload {name!r} missing field {key!r}")
        if workload["wall_s"] <= 0:
            raise ValueError(f"workload {name!r} wall_s must be positive")


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _compare_mixes(
    prior: dict[str, Any],
    workload: dict[str, Any],
    threshold: float,
) -> list[dict[str, Any]]:
    """Per-mix p95 deltas for workloads that carry ``mixes``."""
    deltas: list[dict[str, Any]] = []
    prev_mixes = prior.get("mixes") or {}
    for mix, record in (workload.get("mixes") or {}).items():
        prev = prev_mixes.get(mix)
        if prev is None or not prev.get("p95_ms"):
            continue
        change = (record["p95_ms"] - prev["p95_ms"]) / prev["p95_ms"]
        deltas.append(
            {
                "mix": mix,
                "prev_p95_ms": prev["p95_ms"],
                "p95_ms": record["p95_ms"],
                "change": round(change, 4),
                "regressed": change > threshold,
            }
        )
    return deltas


def compare_entries(
    previous: dict[str, Any],
    current: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    mix_threshold: float = MIX_P95_THRESHOLD,
) -> list[dict[str, Any]]:
    """Per-workload deltas of ``current`` vs ``previous``.

    A workload regresses when its wall time grew by more than
    ``threshold`` (fractional), or — for workloads recording per-mix
    latency (``serve_roundtrip``) — when any single mix's p95 grew by
    more than ``mix_threshold``.  Comparing a ``--quick`` entry against
    a full one would be meaningless; callers should compare entries of
    the same flavour (``bench_main`` compares against the latest entry
    with matching ``quick``).
    """
    deltas: list[dict[str, Any]] = []
    prev_workloads = previous.get("workloads", {})
    for name, workload in current.get("workloads", {}).items():
        prior = prev_workloads.get(name)
        if prior is None:
            deltas.append({"workload": name, "status": "new", "regressed": False})
            continue
        prev_wall, cur_wall = prior["wall_s"], workload["wall_s"]
        change = (cur_wall - prev_wall) / prev_wall if prev_wall else 0.0
        drift = prior.get("sim_cycles") != workload.get("sim_cycles")
        mixes = _compare_mixes(prior, workload, mix_threshold)
        regressed = change > threshold or any(m["regressed"] for m in mixes)
        delta = {
            "workload": name,
            "status": "regressed" if regressed else "ok",
            "regressed": regressed,
            "prev_wall_s": prev_wall,
            "wall_s": cur_wall,
            "change": round(change, 4),
            "sim_drift": drift,
        }
        if mixes:
            delta["mixes"] = mixes
        deltas.append(delta)
    return deltas


def _latest_comparable(
    directory: Path, quick: bool
) -> Optional[tuple[Path, dict[str, Any]]]:
    """The newest existing entry with the same quick/full flavour."""
    for _seq, path in reversed(ledger_paths(directory)):
        try:
            entry = json.loads(path.read_text())
            validate_entry(entry)
        except ValueError as error:
            print(f"warning: skipping unreadable ledger entry {path}: {error}",
                  file=sys.stderr)
            continue
        if entry.get("quick") == quick:
            return path, entry
    return None


# ---------------------------------------------------------------------------
# CLI: ``repro bench`` and ``repro bench report``
# ---------------------------------------------------------------------------


def format_report(
    entries: list[dict[str, Any]], workload: Optional[str] = None
) -> str:
    """Per-workload wall-time trajectory over ledger entries.

    Change is computed against the previous entry of the *same*
    flavour — comparing a ``--quick`` run against a full one would be
    meaningless.
    """
    names: list[str] = []
    for entry in entries:
        for name in entry["workloads"]:
            if name not in names:
                names.append(name)
    if workload is not None:
        if workload not in names:
            raise ValueError(
                f"unknown workload {workload!r}; ledger has: {', '.join(names)}"
            )
        names = [workload]

    lines: list[str] = []
    for name in names:
        lines.append(f"{name}:")
        lines.append(
            f"  {'seq':>4} {'flavour':>7} {'wall_s':>9} "
            f"{'cyc/s':>12} {'change':>8}"
        )
        previous: dict[str, float] = {}
        for entry in entries:
            record = entry["workloads"].get(name)
            if record is None:
                continue
            flavour = "quick" if entry.get("quick") else "full"
            prior = previous.get(flavour)
            change = (
                ""
                if prior is None
                else f"{(record['wall_s'] - prior) / prior:+.1%}"
            )
            previous[flavour] = record["wall_s"]
            extra = ""
            if "speedup_over_exact" in record:
                extra = f"  {record['speedup_over_exact']:.1f}x vs exact"
            lines.append(
                f"  {entry['seq']:>4} {flavour:>7} {record['wall_s']:>9.3f} "
                f"{record['cycles_per_sec']:>12.0f} {change:>8}{extra}".rstrip()
            )
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def report_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro bench report``."""
    parser = argparse.ArgumentParser(
        prog="save-repro bench report",
        description=(
            "Render the ledger's committed BENCH_<seq>.json entries as "
            "a per-workload wall-time trajectory."
        ),
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        default=str(DEFAULT_LEDGER_DIR),
        help=f"ledger directory (default: {DEFAULT_LEDGER_DIR})",
    )
    parser.add_argument(
        "--workload",
        default=None,
        help="limit the report to one workload",
    )
    args = parser.parse_args(argv)

    directory = Path(args.ledger)
    entries: list[dict[str, Any]] = []
    for _seq, path in ledger_paths(directory):
        try:
            entry = json.loads(path.read_text())
            validate_entry(entry)
        except ValueError as error:
            print(
                f"warning: skipping unreadable ledger entry {path}: {error}",
                file=sys.stderr,
            )
            continue
        entries.append(entry)
    if not entries:
        print(f"no ledger entries under {directory}", file=sys.stderr)
        return 1
    try:
        print(format_report(entries, workload=args.workload))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def bench_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro bench``."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="save-repro bench",
        description=(
            "Run the fixed simulator benchmark suite, append a "
            "BENCH_<seq>.json entry to the ledger, and compare against "
            "the previous entry; exits 1 on a wall-time regression."
        ),
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        default=str(DEFAULT_LEDGER_DIR),
        help=f"ledger directory (default: {DEFAULT_LEDGER_DIR})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads for CI smoke runs (compared only against "
        "other --quick entries)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="FRAC",
        help="fractional wall-time increase that fails the run "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--mix-threshold",
        type=float,
        default=MIX_P95_THRESHOLD,
        metavar="FRAC",
        help="fractional per-mix p95 latency increase that fails "
        f"serve_roundtrip (default: {MIX_P95_THRESHOLD})",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        metavar="N",
        help="timed repetitions per workload; best is recorded (default: 2)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="run and compare but do not append a ledger entry",
    )
    parser.add_argument(
        "--seq",
        type=int,
        default=None,
        metavar="N",
        help="pin the written entry's sequence number instead of taking "
        "the next one (refuses to overwrite an existing entry)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")
    if args.mix_threshold < 0:
        parser.error("--mix-threshold must be non-negative")
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    directory = Path(args.ledger)
    print(f"bench: running {'quick ' if args.quick else ''}suite "
          f"(repeats={args.repeats})")
    entry = run_suite(quick=args.quick, repeats=args.repeats, echo=print)

    previous = _latest_comparable(directory, args.quick)
    exit_code = 0
    if previous is None:
        print("bench: no previous comparable entry; baseline recorded")
    else:
        prev_path, prev_entry = previous
        print(f"bench: comparing against {prev_path.name}")
        deltas = compare_entries(
            prev_entry,
            dict(entry, seq=0),
            threshold=args.threshold,
            mix_threshold=args.mix_threshold,
        )
        for delta in deltas:
            if delta["status"] == "new":
                print(f"  {delta['workload']}: new workload (no baseline)")
                continue
            drift = "  [sim-cycle drift: simulated machine changed]" \
                if delta["sim_drift"] else ""
            print(
                f"  {delta['workload']}: {delta['prev_wall_s']:.3f}s -> "
                f"{delta['wall_s']:.3f}s ({delta['change']:+.1%}) "
                f"{delta['status']}{drift}"
            )
            for mix in delta.get("mixes", ()):
                verdict = "REGRESSED" if mix["regressed"] else "ok"
                print(
                    f"    {mix['mix']} p95: {mix['prev_p95_ms']:.1f}ms -> "
                    f"{mix['p95_ms']:.1f}ms ({mix['change']:+.1%}) {verdict}"
                )
        if any(delta["regressed"] for delta in deltas):
            print(
                f"bench: REGRESSION beyond +{args.threshold:.0%} threshold",
                file=sys.stderr,
            )
            exit_code = 1

    if not args.no_write:
        path = write_entry(directory, entry, seq=args.seq)
        print(f"bench: ledger entry -> {path}")
    return exit_code
