"""``repro.serve`` — the long-lived simulation service.

The evaluation methodology is thousands of independent grid-point
simulations; one-shot CLI processes re-pay process startup, duplicate
concurrent work and race on shared caches.  This package turns the
execution layer into a *service*:

* :mod:`repro.serve.schema` — canonical requests, content-address
  fingerprints, :data:`~repro.serve.schema.SERVE_SCHEMA_VERSION`.
* :mod:`repro.serve.store` — content-addressed, atomically written,
  advisory-locked on-disk result store.
* :mod:`repro.serve.service` — :class:`SimService`: bounded job queue
  with dedup of identical in-flight requests, micro-batching of
  same-kernel requests into single executor batches, backpressure and
  graceful drain.
* :mod:`repro.serve.http` — the stdlib HTTP JSON API.
* :mod:`repro.serve.client` — :class:`ServeClient` (``submit`` /
  ``poll`` / ``result`` / blocking ``run``).
* :mod:`repro.serve.cli` — ``repro serve`` / ``repro submit`` /
  ``repro store``.
"""

from repro.serve.client import Backpressure, ClientError, JobFailed, ServeClient
from repro.serve.schema import (
    MACHINE_PRESETS,
    SERVE_SCHEMA_VERSION,
    RequestError,
    SimRequest,
    parse_request,
)
from repro.serve.service import (
    Job,
    QueueFull,
    ServeConfig,
    ServiceDraining,
    SimService,
)
from repro.serve.store import ResultStore

__all__ = [
    "Backpressure",
    "ClientError",
    "Job",
    "JobFailed",
    "MACHINE_PRESETS",
    "QueueFull",
    "RequestError",
    "ResultStore",
    "SERVE_SCHEMA_VERSION",
    "ServeClient",
    "ServeConfig",
    "ServiceDraining",
    "SimRequest",
    "SimService",
    "parse_request",
]
