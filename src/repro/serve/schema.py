"""Request model of the simulation service.

A :class:`SimRequest` names a batch of grid-point simulations — one
kernel (tile geometry, precision, reduction depth, seed) on one machine
configuration, evaluated at one ``(bs, nbs)`` point or over a sparsity
sweep grid.  Everything the service does hangs off two derived
identities:

* :meth:`SimRequest.fingerprint` — a content address over the full
  canonical request (including :data:`SERVE_SCHEMA_VERSION`).  Equal
  fingerprints ⇒ bit-identical results, so the fingerprint is the
  dedup key, the job id, and the result-store key all at once.
* :meth:`SimRequest.batch_key` — the fingerprint *minus* the sparsity
  points.  Requests sharing a batch key differ only in which grid
  points they evaluate, so the service coalesces them into a single
  :meth:`repro.experiments.executor.SimExecutor.map` call.

Requests arrive as JSON; :func:`parse_request` validates and
canonicalises (unknown fields are rejected — silent typos would
fragment the content address space).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace as dc_replace
from enum import Enum
from typing import Any, Optional
from collections.abc import Sequence

from repro.core.config import (
    BASELINE_2VPU,
    SAVE_1VPU,
    SAVE_2VPU,
    CoalescingScheme,
    MachineConfig,
)
from repro.experiments.executor import (
    METRIC_NS_PER_FMA,
    METRIC_TIME_NS,
    PointJob,
)
from repro.fastsim import ENGINES
from repro.fsio import canonical_fingerprint
from repro.kernels.tiling import BroadcastPattern, Precision, RegisterTile
from repro.memory.broadcast_cache import BroadcastCacheKind
from repro.model.surface import point_config

__all__ = [
    "MACHINE_PRESETS",
    "SERVE_SCHEMA_VERSION",
    "RequestError",
    "SimRequest",
    "parse_request",
]

#: Code/schema version of the service protocol *and* the result store.
#: Part of every fingerprint, so entries persisted by an older build
#: are never served to a newer one.  Bump on any change to the request
#: canonical form, the result payload layout, or the simulator itself.
#: v2: per-request ``engine`` tier (exact/fast/analytic) in the
#: canonical form — results from different tiers never share a
#: fingerprint, so they never collide in the result store.
#: v3: per-request ``mechanism`` (save/sparce) in the canonical form —
#: mechanism variants never share a fingerprint or a dedup batch.
SERVE_SCHEMA_VERSION = 3

#: Machine configurations clients can name (Table I presets).
MACHINE_PRESETS: dict[str, MachineConfig] = {
    "baseline": BASELINE_2VPU,
    "save": SAVE_2VPU,
    "save_1vpu": SAVE_1VPU,
}

_METRICS = (METRIC_NS_PER_FMA, METRIC_TIME_NS)

_REQUEST_FIELDS = {
    "kind", "kernel", "machine", "metric", "point", "levels", "engine",
    "mechanism",
}

#: Mechanisms the service accepts.  ``indexmac`` is excluded: the serve
#: kernel spec describes dense register tiles, and indexed-MAC requires
#: an N:M structured kernel (use ``repro compare`` for those).
_SERVE_MECHANISMS = ("save", "sparce")
_KERNEL_FIELDS = {"rows", "cols", "pattern", "precision", "k_steps", "seed"}
_MACHINE_FIELDS = {"preset", "core", "save"}

#: ``save`` override fields whose JSON value names an enum member.
_SAVE_ENUMS: dict[str, type[Enum]] = {
    "coalescing": CoalescingScheme,
    "broadcast_cache": BroadcastCacheKind,
}


class RequestError(ValueError):
    """A malformed or out-of-range request (HTTP 400)."""


def _enum_value(enum_cls: type[Enum], raw: Any, field: str) -> Any:
    """Resolve a JSON string to an enum member, by value then by name."""
    for member in enum_cls:
        if raw == member.value or (
            isinstance(raw, str) and raw.upper() == member.name
        ):
            return member
    choices = ", ".join(
        str(m.value) if not isinstance(m.value, int) else m.name.lower()
        for m in enum_cls
    )
    raise RequestError(f"{field}: unknown value {raw!r} (choices: {choices})")


def _check_fields(payload: dict[str, Any], allowed: set, where: str) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise RequestError(
            f"{where}: unknown field(s) {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )


def _canonical_machine(spec: dict[str, Any]) -> dict[str, Any]:
    """Validate a machine spec and return its canonical form."""
    if not isinstance(spec, dict):
        raise RequestError("machine: must be an object")
    _check_fields(spec, _MACHINE_FIELDS, "machine")
    preset = spec.get("preset", "save")
    if preset not in MACHINE_PRESETS:
        raise RequestError(
            f"machine.preset: unknown preset {preset!r} "
            f"(choices: {sorted(MACHINE_PRESETS)})"
        )
    canonical: dict[str, Any] = {"preset": preset}
    base = MACHINE_PRESETS[preset]
    for section, target in (("core", base.core), ("save", base.save)):
        overrides = spec.get(section)
        if overrides is None:
            continue
        if not isinstance(overrides, dict):
            raise RequestError(f"machine.{section}: must be an object")
        clean: dict[str, Any] = {}
        for name in sorted(overrides):
            if not hasattr(target, name):
                raise RequestError(
                    f"machine.{section}: unknown field {name!r}"
                )
            value = overrides[name]
            if section == "save" and name in _SAVE_ENUMS:
                # Validate now; keep the canonical string in the spec.
                member = _enum_value(
                    _SAVE_ENUMS[name], value, f"machine.save.{name}"
                )
                value = (
                    member.value
                    if not isinstance(member.value, int)
                    else member.name.lower()
                )
            clean[name] = value
        if clean:
            canonical[section] = clean
    # Construct once to surface dataclass validation errors as 400s.
    _resolve_machine(canonical)
    return canonical


def _resolve_machine(canonical: dict[str, Any]) -> MachineConfig:
    machine = MACHINE_PRESETS[canonical["preset"]]
    core = canonical.get("core")
    if core:
        try:
            machine = machine.with_core(**core)
        except (TypeError, ValueError) as error:
            raise RequestError(f"machine.core: {error}") from None
    save = canonical.get("save")
    if save:
        kwargs = dict(save)
        for name, enum_cls in _SAVE_ENUMS.items():
            if name in kwargs:
                kwargs[name] = _enum_value(
                    enum_cls, kwargs[name], f"machine.save.{name}"
                )
        try:
            machine = machine.with_save(**kwargs)
        except (TypeError, ValueError) as error:
            raise RequestError(f"machine.save: {error}") from None
    return machine


def _sparsity(raw: Any, field: str) -> float:
    if not isinstance(raw, (int, float)) or isinstance(raw, bool):
        raise RequestError(f"{field}: must be a number, got {raw!r}")
    value = round(float(raw), 6)
    if not 0.0 <= value <= 1.0:
        raise RequestError(f"{field}: sparsity {value} outside [0, 1]")
    return value


@dataclass(frozen=True)
class SimRequest:
    """One validated, canonical simulation request.

    ``points`` is the expanded evaluation set: a single pair for
    ``kind="point"``, the full ``levels × levels`` cross product (in
    row-major ``(bs, nbs)`` order, matching
    :meth:`repro.model.surface.SparsitySurface.build`) for sweeps.
    """

    kind: str
    rows: int
    cols: int
    pattern: BroadcastPattern
    precision: Precision
    k_steps: int
    seed: int
    metric: str
    machine_spec: str  # canonical JSON (dataclasses must stay hashable)
    points: tuple[tuple[float, float], ...]
    levels: Optional[tuple[float, ...]] = None
    engine: str = "exact"
    mechanism: str = "save"

    # -- identity ---------------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        """The canonical dict the fingerprint is computed over."""
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "kind": self.kind,
            "kernel": {
                "rows": self.rows,
                "cols": self.cols,
                "pattern": self.pattern.value,
                "precision": self.precision.value,
                "k_steps": self.k_steps,
                "seed": self.seed,
            },
            "machine": json.loads(self.machine_spec),
            "metric": self.metric,
            "engine": self.engine,
            "mechanism": self.mechanism,
            "points": [list(p) for p in self.points],
            "levels": list(self.levels) if self.levels is not None else None,
        }

    def _digest(self, payload: dict[str, Any]) -> str:
        # Shared content-address convention (same algorithm as before
        # the store unification, so fingerprints are unchanged).
        return canonical_fingerprint(payload)

    def fingerprint(self) -> str:
        """Content address: dedup key, job id and store key in one."""
        return self._digest(self.canonical())

    def batch_key(self) -> str:
        """Identity minus the evaluation points: the coalescing key."""
        payload = self.canonical()
        payload.pop("points")
        payload.pop("levels")
        payload.pop("kind")
        return self._digest(payload)

    # -- resolution -------------------------------------------------------

    def tile(self) -> RegisterTile:
        return RegisterTile(self.rows, self.cols, self.pattern)

    def machine(self) -> MachineConfig:
        return _resolve_machine(json.loads(self.machine_spec))

    def jobs(self) -> list[PointJob]:
        """The executor work units, one per evaluation point."""
        tile = self.tile()
        machine = self.machine()
        return [
            PointJob(
                config=point_config(
                    tile, self.precision, bs, nbs, self.k_steps, self.seed
                ),
                machine=machine,
                metric=self.metric,
                engine=self.engine,
                mechanism=self.mechanism,
            )
            for bs, nbs in self.points
        ]

    def with_points(
        self, points: Sequence[tuple[float, float]]
    ) -> SimRequest:
        return dc_replace(self, points=tuple(points))


def parse_request(payload: Any) -> SimRequest:
    """Validate a JSON request body into a :class:`SimRequest`.

    Raises:
        RequestError: on any malformed, unknown or out-of-range field.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    _check_fields(payload, _REQUEST_FIELDS, "request")
    kind = payload.get("kind", "point")
    if kind not in ("point", "sweep"):
        raise RequestError(f"kind: must be 'point' or 'sweep', got {kind!r}")

    kernel = payload.get("kernel")
    if not isinstance(kernel, dict):
        raise RequestError("kernel: must be an object")
    _check_fields(kernel, _KERNEL_FIELDS, "kernel")
    rows = kernel.get("rows", 2)
    cols = kernel.get("cols", 2)
    k_steps = kernel.get("k_steps", 24)
    seed = kernel.get("seed", 0)
    for name, value in (("rows", rows), ("cols", cols),
                        ("k_steps", k_steps), ("seed", seed)):
        if not isinstance(value, int) or isinstance(value, bool):
            raise RequestError(f"kernel.{name}: must be an integer")
    pattern = _enum_value(
        BroadcastPattern, kernel.get("pattern", "explicit"), "kernel.pattern"
    )
    precision = _enum_value(
        Precision, kernel.get("precision", "fp32"), "kernel.precision"
    )
    try:
        RegisterTile(rows, cols, pattern)
    except ValueError as error:
        raise RequestError(f"kernel: {error}") from None
    if k_steps <= 0:
        raise RequestError("kernel.k_steps: must be positive")

    machine_spec = _canonical_machine(payload.get("machine", {"preset": "save"}))

    metric = payload.get("metric", METRIC_NS_PER_FMA)
    if metric not in _METRICS:
        raise RequestError(
            f"metric: must be one of {list(_METRICS)}, got {metric!r}"
        )

    engine = payload.get("engine", "exact")
    if engine not in ENGINES:
        raise RequestError(
            f"engine: must be one of {list(ENGINES)}, got {engine!r}"
        )

    mechanism = payload.get("mechanism", "save")
    if mechanism not in _SERVE_MECHANISMS:
        raise RequestError(
            f"mechanism: must be one of {list(_SERVE_MECHANISMS)}, "
            f"got {mechanism!r}"
        )
    if mechanism != "save" and engine != "exact":
        raise RequestError(
            f"mechanism: {mechanism!r} supports only engine='exact' "
            "(the fast tier is calibrated against SAVE only)"
        )

    levels: Optional[tuple[float, ...]] = None
    if kind == "point":
        if "levels" in payload:
            raise RequestError("levels: only valid for kind='sweep'")
        point = payload.get("point")
        if (
            not isinstance(point, (list, tuple))
            or len(point) != 2
        ):
            raise RequestError("point: must be a [bs, nbs] pair")
        points = (
            (_sparsity(point[0], "point[0]"), _sparsity(point[1], "point[1]")),
        )
    else:
        if "point" in payload:
            raise RequestError("point: only valid for kind='point'")
        raw_levels = payload.get("levels")
        if not isinstance(raw_levels, (list, tuple)) or not raw_levels:
            raise RequestError("levels: must be a non-empty list of sparsities")
        levels = tuple(
            _sparsity(level, f"levels[{i}]") for i, level in enumerate(raw_levels)
        )
        if len(set(levels)) != len(levels):
            raise RequestError("levels: must not contain duplicates")
        points = tuple((bs, nbs) for bs in levels for nbs in levels)

    return SimRequest(
        kind=kind,
        rows=rows,
        cols=cols,
        pattern=pattern,
        precision=precision,
        k_steps=k_steps,
        seed=seed,
        metric=metric,
        machine_spec=json.dumps(machine_spec, sort_keys=True),
        points=points,
        levels=levels,
        engine=engine,
        mechanism=mechanism,
    )
