"""The simulation service core: queue, dedup, micro-batching, drain.

A :class:`SimService` is the long-lived engine behind ``repro serve``.
Requests flow::

    submit ─► [store hit? ── serve cached]
              [in-flight twin? ── share its job]        (deduplication)
              [queue full? ── backpressure (retry later)]
              bounded queue ─► dispatcher thread
                              groups by batch_key       (micro-batching)
                              one SimExecutor.map per group
                              payloads ─► ResultStore ─► waiters

Identical concurrent requests (equal fingerprints) share one
:class:`Job` — the simulation runs once and every waiter gets the same
payload object.  Requests that differ only in their sparsity points
(equal :meth:`~repro.serve.schema.SimRequest.batch_key`) coalesce into
a single executor batch, with overlapping points simulated once.

The dispatcher is a single thread; parallelism lives below it, in the
:class:`~repro.experiments.executor.SimExecutor` worker pool — so the
service inherits the executor's determinism contract (results depend
only on the request, never on arrival order or worker count).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from repro.experiments.executor import SimExecutor
from repro.model.surface import machine_label
from repro.obs import MetricsRegistry, log2_bucket
from repro.obs.telemetry import ServeTelemetry, new_trace_id
from repro.serve.schema import SERVE_SCHEMA_VERSION, SimRequest
from repro.serve.store import ResultStore

__all__ = [
    "Job",
    "QueueFull",
    "ServeConfig",
    "ServiceDraining",
    "SimService",
]


class QueueFull(RuntimeError):
    """Backpressure: the job queue is at capacity (HTTP 429)."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__("job queue is full")
        self.retry_after_s = retry_after_s


class ServiceDraining(RuntimeError):
    """The service is shutting down and accepts no new work (HTTP 503)."""


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs of a :class:`SimService` / ``repro serve``."""

    host: str = "127.0.0.1"
    port: int = 8731
    #: Executor worker processes (``None``: ``REPRO_JOBS``, else serial).
    jobs: Optional[int] = None
    #: Result-store directory (``None``: the repo-level ``.serve_store``).
    store_dir: Optional[Union[str, Path]] = None
    #: Bounded queue capacity; submits beyond it get backpressure.
    queue_limit: int = 64
    #: ``Retry-After`` hint handed to backpressured clients.
    retry_after_s: float = 1.0
    #: Dispatcher linger after the first pending job, letting closely
    #: spaced requests coalesce into one batch.  ``0`` batches only
    #: what is already queued.
    batch_window_s: float = 0.0
    #: Upper bound on requests drained into one dispatch round.
    max_batch_requests: int = 32
    #: Seconds :meth:`SimService.close` waits for in-flight work.
    drain_timeout_s: float = 60.0
    #: Cadence of the telemetry sampler thread (queue depth,
    #: oldest-request age, counters into the metrics ring).
    telemetry_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if self.max_batch_requests <= 0:
            raise ValueError("max_batch_requests must be positive")
        if self.batch_window_s < 0 or self.retry_after_s < 0:
            raise ValueError("windows and delays must be non-negative")
        if self.telemetry_interval_s <= 0:
            raise ValueError("telemetry_interval_s must be positive")


@dataclass
class Job:
    """One in-flight unit of work, shared by every duplicate submitter."""

    key: str
    request: SimRequest
    state: str = "pending"  # pending | running | done | failed
    payload: Optional[dict[str, Any]] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.monotonic)
    #: Request-log trace IDs: the submitting request's first, dedup
    #: joiners appended in arrival order.  Phase/complete telemetry is
    #: attributed to the primary (first) ID.
    trace_ids: list[str] = field(default_factory=list)
    #: Stamped when the dispatcher drains the job from the queue.
    dequeued_at: Optional[float] = None
    _event: threading.Event = field(default_factory=threading.Event)

    @property
    def trace_id(self) -> str:
        """The primary trace ID ('' for untraced programmatic jobs)."""
        return self.trace_ids[0] if self.trace_ids else ""

    def finish(self, payload: dict[str, Any]) -> None:
        self.payload = payload
        self.state = "done"
        self._event.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.state = "failed"
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until done/failed; ``False`` on timeout."""
        return self._event.wait(timeout)


class SimService:
    """Queue + dedup + batching on top of a :class:`SimExecutor`.

    Args:
        config: service tuning (queue bound, batching window, ...).
        store: result store (defaults to one at ``config.store_dir``).
        executor: simulation backend; defaults to a *persistent*
            executor sized by ``config.jobs`` so a parallel pool
            survives across micro-batches.
        metrics: registry for service-level metrics (created when
            omitted; rendered by ``/metrics``).
        telemetry: request-lifecycle telemetry bundle (request log +
            metrics ring + latency recorder).  The default records
            latency percentiles in memory but writes nothing to disk;
            pass a :class:`~repro.obs.telemetry.ServeTelemetry` with a
            live log/ring (``repro serve --request-log/--metrics-ring``)
            to persist the request stream.

    Call :meth:`start` before submitting and :meth:`close` when done
    (or use the service as a context manager).
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        store: Optional[ResultStore] = None,
        executor: Optional[SimExecutor] = None,
        metrics: Optional[MetricsRegistry] = None,
        telemetry: Optional[ServeTelemetry] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.store = store or ResultStore(self.config.store_dir)
        self.executor = executor or SimExecutor(
            jobs=self.config.jobs, persistent=True
        )
        self.metrics = metrics or MetricsRegistry()
        self.telemetry = telemetry or ServeTelemetry()
        self.started_at = time.time()
        self._cv = threading.Condition()
        self._queue: deque[Job] = deque()
        self._inflight: OrderedDict[str, Job] = OrderedDict()
        #: Recently failed jobs, kept so pollers see the error instead
        #: of "unknown" (bounded; oldest evicted first).
        self._failed: OrderedDict[str, Job] = OrderedDict()
        self._active = 0  # jobs drained from the queue, not yet finished
        self._paused = False
        self._draining = False
        self._stop = False
        self._thread: Optional[threading.Thread] = None
        self._sampler: Optional[threading.Thread] = None
        self._sampler_stop = threading.Event()

    # -- lifecycle --------------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is live."""
        return self._thread is not None

    def start(self) -> SimService:
        with self._cv:
            if self._thread is not None:
                raise RuntimeError("service already started")
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
            )
            self._thread.start()
            if self.telemetry.ring is not None:
                self._sampler = threading.Thread(
                    target=self._sampler_loop,
                    name="repro-serve-sampler",
                    daemon=True,
                )
                self._sampler.start()
        return self

    def __enter__(self) -> SimService:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def pause(self) -> None:
        """Hold the dispatcher (tests use this to force wide batches)."""
        with self._cv:
            self._paused = True

    def resume(self) -> None:
        with self._cv:
            self._paused = False
            self._cv.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting work; wait for the queue to empty.

        Returns ``True`` when everything in flight completed.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        deadline = time.monotonic() + timeout
        with self._cv:
            self._draining = True
            self._paused = False
            self._cv.notify_all()
            while self._queue or self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(min(remaining, 0.05))
        return True

    def close(self) -> bool:
        """Drain, stop the dispatcher, flush the store, free the pool."""
        drained = self.drain()
        with self._cv:
            self._stop = True
            self._cv.notify_all()
            thread = self._thread
            sampler = self._sampler
        self._sampler_stop.set()
        if sampler is not None:
            sampler.join(timeout=self.config.drain_timeout_s)
            with self._cv:
                self._sampler = None
        if thread is not None:
            thread.join(timeout=self.config.drain_timeout_s)
            with self._cv:
                self._thread = None
        # Anything still queued after a failed drain must not hang its
        # waiters forever.
        with self._cv:
            leftovers = list(self._queue)
            self._queue.clear()
        for job in leftovers:
            job.fail("service stopped before the job ran")
            with self._cv:
                self._inflight.pop(job.key, None)
        self.store.flush()
        self.executor.close()
        self.telemetry.close()
        return drained

    # -- submission -------------------------------------------------------

    def submit(
        self, request: SimRequest, trace_id: Optional[str] = None
    ) -> tuple[Job, str]:
        """Enqueue (or join, or short-circuit) one request.

        Returns ``(job, outcome)`` with outcome one of ``"accepted"``
        (queued fresh), ``"dedup"`` (joined an identical in-flight
        job) or ``"cached"`` (served from the result store — the job
        comes back already done).

        ``trace_id`` identifies the request in the telemetry stream
        (HTTP ingress passes the ID it minted and echoed to the
        client); one is generated for programmatic submitters.  Dedup
        joiners append their ID to the shared job's ``trace_ids``, so
        worker-side simulation spans list every owning request.

        Raises:
            QueueFull: the bounded queue is at capacity.
            ServiceDraining: the service is shutting down.
        """
        if trace_id is None:
            trace_id = new_trace_id()
        key = request.fingerprint()
        started = time.monotonic()
        self.metrics.counter("serve.requests").inc()
        with self._cv:
            twin = self._inflight.get(key)
            if twin is not None:
                self.metrics.counter("serve.dedup_hits").inc()
                twin.trace_ids.append(trace_id)
                self._log_ingress(trace_id, key, "dedup")
                return twin, "dedup"
        cached = self.store.get(key)
        if cached is not None:
            self.metrics.counter("serve.cache_hits").inc()
            job = Job(key=key, request=request)
            job.trace_ids.append(trace_id)
            job.finish(cached)
            wall = time.monotonic() - started
            self.telemetry.latency.record("e2e", wall)
            self._log_ingress(trace_id, key, "cached")
            self.telemetry.log.log_event(
                "complete",
                trace_id=trace_id,
                key=key,
                status="cached",
                wall_s=round(wall, 6),
            )
            return job, "cached"
        with self._cv:
            # Re-check under the lock: the store probe dropped it.
            twin = self._inflight.get(key)
            if twin is not None:
                self.metrics.counter("serve.dedup_hits").inc()
                twin.trace_ids.append(trace_id)
                self._log_ingress(trace_id, key, "dedup")
                return twin, "dedup"
            if self._draining or self._stop:
                self._log_ingress(trace_id, key, "draining")
                raise ServiceDraining("service is draining")
            if len(self._queue) >= self.config.queue_limit:
                self.metrics.counter("serve.rejected").inc()
                self._log_ingress(trace_id, key, "rejected")
                raise QueueFull(self.config.retry_after_s)
            job = Job(key=key, request=request)
            job.trace_ids.append(trace_id)
            self._inflight[key] = job
            self._queue.append(job)
            self.metrics.gauge("serve.queue_depth").set(len(self._queue))
            self._cv.notify_all()
        self._log_ingress(trace_id, key, "accepted")
        return job, "accepted"

    def _log_ingress(self, trace_id: str, key: str, outcome: str) -> None:
        self.telemetry.log.log_event(
            "ingress", trace_id=trace_id, key=key, outcome=outcome
        )

    def status(self, key: str) -> dict[str, Any]:
        """Poll view of one job key (in-flight, done-on-disk or unknown)."""
        with self._cv:
            job = self._inflight.get(key) or self._failed.get(key)
            if job is not None:
                return {"job": key, "status": job.state, "error": job.error}
        if self.store.get(key) is not None:
            return {"job": key, "status": "done", "error": None}
        return {"job": key, "status": "unknown", "error": None}

    def result(self, key: str) -> Optional[dict[str, Any]]:
        """The stored payload for a completed key, else ``None``."""
        return self.store.get(key)

    def metrics_snapshot(self) -> dict[str, Any]:
        """The metrics snapshot with latency-percentile gauges current.

        The envelope is exactly :meth:`MetricsRegistry.snapshot` — the
        JSON ``/metrics`` contract existing consumers parse — with the
        ``serve.latency.<phase>.<p50|p95|p99>_ms`` gauges refreshed
        from the recorder immediately before the snapshot is taken.
        """
        self.telemetry.latency.update_gauges(self.metrics)
        return self.metrics.snapshot()

    def health(self) -> dict[str, Any]:
        with self._cv:
            return {
                "status": "draining" if (self._draining or self._stop) else "ok",
                "queue_depth": len(self._queue),
                "active": self._active,
                "inflight": len(self._inflight),
                "uptime_s": round(time.time() - self.started_at, 3),
                "schema": SERVE_SCHEMA_VERSION,
            }

    # -- dispatch ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._stop and (self._paused or not self._queue):
                    self._cv.wait(0.05)
                if self._stop and not self._queue:
                    return
                if self._paused and not self._stop:
                    continue
                batch = self._drain_batch_locked()
            if self.config.batch_window_s > 0:
                # Linger so closely spaced submits join this round.
                time.sleep(self.config.batch_window_s)
                with self._cv:
                    batch.extend(self._drain_batch_locked(
                        self.config.max_batch_requests - len(batch)
                    ))
            if batch:
                self._process(batch)

    def _drain_batch_locked(self, limit: Optional[int] = None) -> list[Job]:
        if limit is None:
            limit = self.config.max_batch_requests
        batch: list[Job] = []
        now = time.monotonic()
        while self._queue and len(batch) < limit:
            job = self._queue.popleft()
            job.state = "running"
            job.dequeued_at = now
            batch.append(job)
        self._active += len(batch)
        self.metrics.gauge("serve.queue_depth").set(len(self._queue))
        return batch

    def _process(self, batch: list[Job]) -> None:
        groups: OrderedDict[str, list[Job]] = OrderedDict()
        for job in batch:
            groups.setdefault(job.request.batch_key(), []).append(job)
        for jobs in groups.values():
            try:
                self._run_group(jobs)
            except Exception as error:  # noqa: BLE001 - service must survive
                self.metrics.counter("serve.failures").inc(len(jobs))
                now = time.monotonic()
                for job in jobs:
                    job.fail(f"{type(error).__name__}: {error}")
                    wall = max(0.0, now - job.submitted_at)
                    self.telemetry.latency.record("e2e", wall)
                    self.telemetry.log.log_event(
                        "complete",
                        trace_id=job.trace_id,
                        key=job.key,
                        status="failed",
                        wall_s=round(wall, 6),
                    )
            finally:
                with self._cv:
                    for job in jobs:
                        self._inflight.pop(job.key, None)
                        if job.state == "failed":
                            self._failed[job.key] = job
                            while len(self._failed) > 128:
                                self._failed.popitem(last=False)
                    self._active -= len(jobs)
                    self._cv.notify_all()

    def _run_group(self, jobs: list[Job]) -> None:
        """Simulate one batch-key group as a single executor batch.

        All jobs in the group share kernel/machine/metric, so their
        union of sparsity points is deduplicated and simulated once;
        each request's payload is then assembled from the shared
        values.
        """
        order: OrderedDict[tuple[float, float], int] = OrderedDict()
        for job in jobs:
            for point in job.request.points:
                if point not in order:
                    order[point] = len(order)
        template = jobs[0].request.with_points(list(order))
        point_jobs = template.jobs()
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_width", log2_bucket).record(
            len(point_jobs)
        )
        sim_start = time.monotonic()
        for job in jobs:
            trace = job.trace_id
            dequeued = job.dequeued_at if job.dequeued_at is not None else sim_start
            self.telemetry.record_phase(
                trace, "queue_wait", dequeued - job.submitted_at
            )
            # batch_form covers dequeue-to-simulation: batch-window
            # linger plus group assembly.
            self.telemetry.record_phase(trace, "batch_form", sim_start - dequeued)
        timed = hasattr(self.executor, "map_timed") and not getattr(
            self.executor, "instrumented", False
        )
        if timed:
            values, walls = self.executor.map_timed(point_jobs)
            map_wall = time.monotonic() - sim_start
        else:
            # Instrumented executors keep their own per-job metric
            # merging (and test fakes may only implement map); fall
            # back to plain map and attribute the batch wall evenly.
            values = self.executor.map(point_jobs)
            map_wall = time.monotonic() - sim_start
            walls = [map_wall / len(point_jobs)] * len(point_jobs)
        self.metrics.counter("serve.simulated_points").inc(len(point_jobs))
        for job in jobs:
            self.telemetry.record_phase(job.trace_id, "simulate", map_wall)
        if self.telemetry.log.enabled:
            # Worker-side spans, joined back to the requests that own
            # each point — the record that trace IDs survived the
            # process-pool boundary.
            owners = {
                point: [
                    trace
                    for j in jobs
                    if point in j.request.points
                    for trace in j.trace_ids
                ]
                for point in order
            }
            for point, index in order.items():
                self.telemetry.log.log_event(
                    "sim",
                    trace_ids=owners[point],
                    point=list(point),
                    wall_s=round(walls[index], 6),
                    engine=template.engine,
                )
        label = machine_label(template.machine())
        for job in jobs:
            write_start = time.monotonic()
            payload = self._payload(job.request, job.key, order, values, label)
            self.store.put(job.key, payload)
            now = time.monotonic()
            self.telemetry.record_phase(
                job.trace_id, "store_write", now - write_start
            )
            self.metrics.histogram("serve.latency_ms", log2_bucket).record(
                max(0, int((now - job.submitted_at) * 1000))
            )
            wall = max(0.0, now - job.submitted_at)
            self.telemetry.latency.record("e2e", wall)
            self.telemetry.log.log_event(
                "complete",
                trace_id=job.trace_id,
                key=job.key,
                status="done",
                wall_s=round(wall, 6),
            )
            job.finish(payload)

    # -- telemetry sampler ------------------------------------------------

    def _sampler_loop(self) -> None:
        """Snapshot queue state into the metrics ring on a fixed cadence."""
        while not self._sampler_stop.wait(self.config.telemetry_interval_s):
            self._sample_once()
        # One final sample on shutdown so the ring's last record
        # reflects the drained state.
        self._sample_once()

    def _sample_once(self) -> None:
        ring = self.telemetry.ring
        if ring is None:
            return
        now = time.monotonic()
        with self._cv:
            queue_depth = len(self._queue)
            active = self._active
            oldest = min(
                (job.submitted_at for job in self._queue), default=None
            )
        oldest_age_s = round(now - oldest, 6) if oldest is not None else 0.0
        self.metrics.gauge("serve.oldest_request_age_s").set(oldest_age_s)
        ring.log_event(
            "snapshot",
            queue_depth=queue_depth,
            active=active,
            oldest_age_s=oldest_age_s,
            counters=self.metrics.snapshot()["counters"],
        )

    @staticmethod
    def _payload(
        request: SimRequest,
        key: str,
        order: dict[tuple[float, float], int],
        values: list[float],
        label: str,
    ) -> dict[str, Any]:
        return {
            "schema": SERVE_SCHEMA_VERSION,
            "key": key,
            "kind": request.kind,
            "metric": request.metric,
            "engine": request.engine,
            "label": label,
            "points": [list(point) for point in request.points],
            "values": [values[order[point]] for point in request.points],
            "levels": list(request.levels) if request.levels is not None else None,
        }
