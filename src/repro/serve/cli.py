"""CLI entry points: ``repro serve``, ``repro submit``, ``repro store``.

``repro serve`` runs the long-lived service; SIGTERM/SIGINT trigger a
graceful drain (finish queued work, flush the store, then exit 0).
Mirroring the one-shot commands' cleanup contract, *every* exit path —
including startup failures — closes the trace sink and flushes the
result store, so no run can leave a truncated trace or an un-synced
store behind.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import Optional

from repro.serve.schema import RequestError

__all__ = ["serve_main", "store_main", "submit_main"]


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the long-lived simulation service (local HTTP JSON API).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8731,
        help="TCP port (0 picks an ephemeral port; default 8731)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="executor worker processes (default: REPRO_JOBS, else serial)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory (default: repo-level .serve_store)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="bounded queue capacity; excess submits get HTTP 429",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="dispatcher linger that coalesces closely spaced requests",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="JSONL event trace of every simulated cycle (forces serial)",
    )
    parser.add_argument(
        "--request-log", metavar="FILE", default=None,
        help=(
            "JSONL request-lifecycle log: trace IDs, per-phase spans, "
            "worker-side simulation spans, HTTP access events "
            "(analyse with 'repro serve-report')"
        ),
    )
    parser.add_argument(
        "--metrics-ring", metavar="FILE", default=None,
        help=(
            "bounded on-disk ring of periodic serve.* metric snapshots "
            "(queue depth, oldest-request age, counters)"
        ),
    )
    parser.add_argument(
        "--ring-capacity", type=int, default=4096, metavar="N",
        help=(
            "records per ring segment; disk holds at most 2 segments "
            "(default: 4096)"
        ),
    )
    parser.add_argument(
        "--telemetry-interval", type=float, default=1.0, metavar="SECONDS",
        help="metrics-ring sampling cadence (default: 1.0)",
    )
    return parser


def serve_main(argv: Optional[list[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    from repro.experiments.executor import SimExecutor
    from repro.serve.http import make_server
    from repro.serve.service import ServeConfig, SimService

    sink = None
    service = None
    server = None
    telemetry = None
    try:
        if args.trace:
            from repro.obs import JsonlTraceSink

            sink = JsonlTraceSink(args.trace)
        if args.request_log or args.metrics_ring:
            from repro.obs.telemetry import RequestLog, ServeTelemetry

            telemetry = ServeTelemetry(
                log=RequestLog(args.request_log) if args.request_log else None,
                ring=(
                    RequestLog(args.metrics_ring, ring_limit=args.ring_capacity)
                    if args.metrics_ring
                    else None
                ),
            )
        config = ServeConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            store_dir=args.store,
            queue_limit=args.queue_limit,
            batch_window_s=args.batch_window,
            telemetry_interval_s=args.telemetry_interval,
        )
        executor = SimExecutor(
            jobs=args.jobs, trace_sink=sink, persistent=True
        )
        service = SimService(
            config, executor=executor, telemetry=telemetry
        ).start()
        server = make_server(service)
        host, port = server.server_address[:2]
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"(store: {service.store.directory}, jobs: {executor.jobs})",
            flush=True,
        )

        stop = threading.Event()

        def _signal(signum, frame) -> None:  # noqa: ANN001 - signal API
            print(
                f"repro serve: caught {signal.Signals(signum).name}, draining",
                flush=True,
            )
            stop.set()

        previous = {
            sig: signal.signal(sig, _signal)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-http", daemon=True
        )
        thread.start()
        try:
            stop.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        drained = service.close()
        server.shutdown()
        thread.join(timeout=10)
        print("repro serve: drained, bye", flush=True)
        return 0 if drained else 1
    except OSError as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 1
    finally:
        # The cleanup contract: every exit path closes the HTTP socket
        # and the trace sink, and flushes the result store.
        if server is not None:
            server.server_close()
        if service is not None and service.running:
            service.close()
        elif service is not None:
            service.store.flush()
            service.executor.close()
        if sink is not None:
            sink.close()
            print(f"trace: {sink.events_written} events -> {args.trace}")
        if telemetry is not None:
            telemetry.close()
            if args.request_log:
                print(
                    f"request log: {telemetry.log.events_written} events "
                    f"-> {args.request_log}"
                )


def _submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description=(
            "Submit one grid-point (or sweep) simulation to a running "
            "'repro serve' instance and print the result payload."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731)
    parser.add_argument(
        "--tile", default="2x2", metavar="RxC",
        help="register tile rows x col_vectors (default 2x2)",
    )
    parser.add_argument(
        "--pattern", default="explicit", choices=("explicit", "embedded")
    )
    parser.add_argument(
        "--precision", default="fp32", choices=("fp32", "bf16")
    )
    parser.add_argument(
        "--machine", default="save", choices=("baseline", "save", "save_1vpu")
    )
    parser.add_argument(
        "--point", default=None, metavar="BS,NBS",
        help="one (broadcast, non-broadcast) sparsity pair, e.g. 0.5,0.3",
    )
    parser.add_argument(
        "--levels", default=None, metavar="L0,L1,...",
        help="sweep the full LxL grid over these sparsity levels",
    )
    parser.add_argument("--k-steps", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--metric", default="ns_per_fma", choices=("ns_per_fma", "time_ns")
    )
    parser.add_argument(
        "--engine", default="exact", choices=("exact", "fast", "analytic"),
        help="simulation tier (fast/analytic estimate; exact is cycle-level)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the result (including 429 retries)",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="submit only; print the job key instead of blocking",
    )
    return parser


def _csv_floats(raw: str, flag: str) -> list[float]:
    try:
        return [float(part) for part in raw.split(",") if part.strip() != ""]
    except ValueError:
        raise RequestError(f"{flag}: expected comma-separated numbers") from None


def build_request(args: argparse.Namespace) -> dict:
    """Translate ``repro submit`` flags into a request body."""
    try:
        rows, cols = (int(part) for part in args.tile.lower().split("x"))
    except ValueError:
        raise RequestError("--tile: expected RxC, e.g. 2x2") from None
    body: dict = {
        "kernel": {
            "rows": rows,
            "cols": cols,
            "pattern": args.pattern,
            "precision": args.precision,
            "k_steps": args.k_steps,
            "seed": args.seed,
        },
        "machine": {"preset": args.machine},
        "metric": args.metric,
        "engine": args.engine,
    }
    if (args.point is None) == (args.levels is None):
        raise RequestError("exactly one of --point or --levels is required")
    if args.point is not None:
        pair = _csv_floats(args.point, "--point")
        if len(pair) != 2:
            raise RequestError("--point: expected BS,NBS")
        body["kind"] = "point"
        body["point"] = pair
    else:
        body["kind"] = "sweep"
        body["levels"] = _csv_floats(args.levels, "--levels")
    return body


def submit_main(argv: Optional[list[str]] = None) -> int:
    args = _submit_parser().parse_args(argv)
    from repro.serve.client import ClientError, JobFailed, ServeClient

    client = ServeClient(f"http://{args.host}:{args.port}")
    try:
        body = build_request(args)
        if args.no_wait:
            print(json.dumps(client.submit(body), sort_keys=True))
            return 0
        payload = client.run(body, timeout=args.timeout)
        print(json.dumps(payload, sort_keys=True))
        return 0
    except RequestError as error:
        print(f"repro submit: {error}", file=sys.stderr)
        return 2
    except (ClientError, JobFailed, TimeoutError, OSError) as error:
        print(f"repro submit: {error}", file=sys.stderr)
        return 1


def _store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Inspect or garbage-collect the serve result store.",
    )
    parser.add_argument("action", choices=("stats", "gc"))
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="store directory (default: repo-level .serve_store)",
    )
    parser.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="gc only: also drop current-schema entries older than this",
    )
    return parser


def store_main(argv: Optional[list[str]] = None) -> int:
    args = _store_parser().parse_args(argv)
    from repro.serve.store import ResultStore

    store = ResultStore(args.store)
    try:
        if args.action == "stats":
            print(json.dumps(store.stats(), indent=2, sort_keys=True))
        else:
            max_age_s = (
                args.max_age_days * 86400.0
                if args.max_age_days is not None
                else None
            )
            print(json.dumps(store.gc(max_age_s), sort_keys=True))
        return 0
    finally:
        store.flush()
