"""Traffic-replay load generator for the simulation service.

``repro loadgen`` drives a live server (or a self-hosted one on an
ephemeral port) with the ROADMAP's three realistic traffic mixes and
reports throughput + exact latency percentiles per mix:

* **hot** — hot-key duplicate bursts: every request is one of a few
  cycling points, so after the first simulations the stream is answered
  by dedup (in-flight twins) and the result store.  Exercises the
  content-addressed cache tier.
* **scan** — grid scans: each request evaluates a *different* sparsity
  point of the same kernel/machine (shared ``batch_key``), so
  closely-spaced submits coalesce into wide micro-batches.  Exercises
  batch formation.
* **cold** — cold misses: every request carries a distinct kernel seed,
  so nothing dedups, nothing batches and nothing is cached.  Exercises
  raw per-request simulation cost.

Workers are threads (the client is I/O-bound; simulations run in the
server's process pool), each popping requests from a shared deque and
timing one full :meth:`repro.serve.client.ServeClient.run` round trip.
Request sets are built deterministically from the mix name, so two runs
against equal servers replay identical traffic.

The same entry points back the ``serve_roundtrip`` workload in the
:mod:`repro.obs.bench` fixed suite (self-hosted server, fixed request
counts), which lands the three mixes' p50/p95/p99 + throughput in the
committed bench ledger.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from collections import deque
from typing import Any, Optional
from collections.abc import Sequence

from repro.obs.telemetry import exact_percentile
from repro.serve.client import ServeClient

__all__ = [
    "MIXES",
    "build_requests",
    "loadgen_main",
    "run_loadgen",
    "self_hosted_server",
]

#: The replayed traffic mixes, in report order.
MIXES = ("hot", "scan", "cold")

#: Cycling sparsity points of the hot mix (a "popular query" working set).
_HOT_POINTS = ((0.1, 0.2), (0.3, 0.6), (0.5, 0.5), (0.7, 0.4))


def _kernel(k_steps: int, seed: int) -> dict[str, Any]:
    return {"rows": 2, "cols": 2, "k_steps": k_steps, "seed": seed}


def build_requests(
    mix: str, count: int, k_steps: int = 3, engine: str = "fast"
) -> list[dict[str, Any]]:
    """The deterministic request list one mix replays.

    Identical arguments always build identical requests (no RNG, no
    clock), so loadgen runs are repeatable traffic replays.
    """
    if count <= 0:
        raise ValueError("count must be positive")
    requests: list[dict[str, Any]] = []
    if mix == "hot":
        # A tiny working set hammered repeatedly: dedup + cache tier.
        for i in range(count):
            point = _HOT_POINTS[i % len(_HOT_POINTS)]
            requests.append(
                {
                    "kind": "point",
                    "kernel": _kernel(k_steps, seed=0),
                    "machine": {"preset": "save"},
                    "point": list(point),
                    "engine": engine,
                }
            )
    elif mix == "scan":
        # Distinct points of one kernel/machine: same batch_key, so
        # closely spaced submits coalesce into wide executor batches.
        for i in range(count):
            bs = round(0.05 + 0.9 * (i % 10) / 10, 6)
            nbs = round(0.05 + 0.9 * (i // 10) / 10, 6)
            requests.append(
                {
                    "kind": "point",
                    "kernel": _kernel(k_steps, seed=1),
                    "machine": {"preset": "save"},
                    "point": [bs, nbs],
                    "engine": engine,
                }
            )
    elif mix == "cold":
        # A distinct seed per request: unique fingerprints *and* unique
        # batch keys — nothing dedups, batches or caches.
        for i in range(count):
            requests.append(
                {
                    "kind": "point",
                    "kernel": _kernel(k_steps, seed=1000 + i),
                    "machine": {"preset": "save"},
                    "point": [0.4, 0.5],
                    "engine": engine,
                }
            )
    else:
        raise ValueError(f"unknown mix {mix!r} (choices: {MIXES})")
    return requests


def _drive(
    base_url: str,
    requests: Sequence[dict[str, Any]],
    concurrency: int,
    timeout: float,
) -> dict[str, Any]:
    """Replay one request list with a worker-thread pool; time each."""
    pending: deque[dict[str, Any]] = deque(requests)
    lock = threading.Lock()
    latencies: list[float] = []
    errors: list[str] = []

    def worker() -> None:
        client = ServeClient(base_url, timeout=timeout)
        while True:
            with lock:
                if not pending:
                    return
                request = pending.popleft()
            start = time.perf_counter()
            try:
                client.run(request, timeout=timeout)
            except Exception as error:  # noqa: BLE001 - tally, keep driving
                with lock:
                    errors.append(f"{type(error).__name__}: {error}")
                continue
            wall = time.perf_counter() - start
            with lock:
                latencies.append(wall)

    workers = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, min(concurrency, len(requests))))
    ]
    started = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    wall_s = time.perf_counter() - started

    ordered = sorted(latencies)
    stats: dict[str, Any] = {
        "requests": len(requests),
        "completed": len(latencies),
        "errors": len(errors),
        "wall_s": round(wall_s, 6),
        "throughput_rps": round(len(latencies) / wall_s, 3) if wall_s else 0.0,
    }
    for name, q in (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99)):
        value = exact_percentile(ordered, q)
        stats[name] = round(value * 1000.0, 3) if value is not None else None
    if errors:
        stats["first_error"] = errors[0]
    return stats


def run_loadgen(
    base_url: str,
    mixes: Sequence[str] = MIXES,
    requests_per_mix: int = 24,
    concurrency: int = 8,
    k_steps: int = 3,
    engine: str = "fast",
    timeout: float = 120.0,
) -> dict[str, Any]:
    """Replay the named mixes against a live server; stats per mix."""
    results: dict[str, Any] = {}
    for mix in mixes:
        requests = build_requests(mix, requests_per_mix, k_steps, engine)
        results[mix] = _drive(base_url, requests, concurrency, timeout)
    return results


# ---------------------------------------------------------------------------
# Self-hosting (bench workload + --self-hosted CLI path)
# ---------------------------------------------------------------------------


class self_hosted_server:  # noqa: N801 - context manager reads like a helper
    """A full service + HTTP stack on an ephemeral port.

    Context manager: enters with the ``base_url`` of a freshly started
    server backed by ``store_dir`` (pass a temp dir for a cold store)
    and tears the whole stack down on exit.  Used by the bench
    ``serve_roundtrip`` workload and by ``repro loadgen`` when no
    ``--url`` is given.
    """

    def __init__(
        self, store_dir: str, jobs: Optional[int] = None,
        batch_window_s: float = 0.01,
    ) -> None:
        self.store_dir = store_dir
        self.jobs = jobs
        self.batch_window_s = batch_window_s
        self._service: Any = None
        self._server: Any = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> str:
        from repro.serve.http import make_server
        from repro.serve.service import ServeConfig, SimService

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        config = ServeConfig(
            host="127.0.0.1",
            port=port,
            jobs=self.jobs,
            store_dir=self.store_dir,
            batch_window_s=self.batch_window_s,
        )
        self._service = SimService(config).start()
        self._server = make_server(self._service)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="loadgen-server", daemon=True
        )
        self._thread.start()
        return f"http://127.0.0.1:{port}"

    def __exit__(self, *exc_info: object) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        if self._service is not None:
            self._service.close()


# ---------------------------------------------------------------------------
# CLI: ``repro loadgen``
# ---------------------------------------------------------------------------


def loadgen_main(argv: Optional[list[str]] = None) -> int:
    """Entry point for ``python -m repro loadgen``."""
    parser = argparse.ArgumentParser(
        prog="save-repro loadgen",
        description=(
            "Replay realistic traffic mixes (hot-key duplicate bursts, "
            "grid scans, cold misses) against a repro serve endpoint "
            "and report throughput + p50/p95/p99 latency per mix."
        ),
    )
    parser.add_argument(
        "--url",
        default=None,
        help=(
            "server base URL (e.g. http://127.0.0.1:8731); when omitted "
            "a throwaway self-hosted server on an ephemeral port is used"
        ),
    )
    parser.add_argument(
        "--mix",
        default="all",
        choices=("all",) + MIXES,
        help="traffic mix to replay (default: all three)",
    )
    parser.add_argument(
        "--requests", type=int, default=24, metavar="N",
        help="requests per mix (default: 24)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="client worker threads (default: 8)",
    )
    parser.add_argument(
        "--k-steps", type=int, default=3, metavar="N",
        help="kernel reduction depth per request (default: 3)",
    )
    parser.add_argument(
        "--engine", default="fast",
        help="engine tier requests ask for (default: fast)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, metavar="S",
        help="per-request end-to-end timeout (default: 120)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="executor workers for the self-hosted server",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the per-mix stats as JSON to FILE",
    )
    args = parser.parse_args(argv)
    if args.requests <= 0 or args.concurrency <= 0:
        print("error: --requests and --concurrency must be positive", file=sys.stderr)
        return 2
    mixes = MIXES if args.mix == "all" else (args.mix,)

    def replay(base_url: str) -> dict[str, Any]:
        _wait_healthy(base_url, timeout=args.timeout)
        return run_loadgen(
            base_url,
            mixes=mixes,
            requests_per_mix=args.requests,
            concurrency=args.concurrency,
            k_steps=args.k_steps,
            engine=args.engine,
            timeout=args.timeout,
        )

    try:
        if args.url:
            results = replay(args.url)
        else:
            import tempfile

            with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp, \
                    self_hosted_server(tmp, jobs=args.jobs) as base_url:
                results = replay(args.url or base_url)
    except (OSError, TimeoutError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    failed = False
    for mix, stats in results.items():
        print(
            f"{mix:>5}: {stats['completed']}/{stats['requests']} ok, "
            f"{stats['throughput_rps']} req/s, "
            f"p50 {stats['p50_ms']}ms  p95 {stats['p95_ms']}ms  "
            f"p99 {stats['p99_ms']}ms"
            + (f"  ({stats['errors']} errors)" if stats["errors"] else "")
        )
        if stats["errors"]:
            failed = True
            print(f"       first error: {stats['first_error']}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"stats -> {args.json}")
    return 1 if failed else 0


def _wait_healthy(base_url: str, timeout: float = 30.0) -> None:
    """Poll ``/healthz`` until the server answers (bounded)."""
    client = ServeClient(base_url, timeout=5.0)
    deadline = time.monotonic() + min(timeout, 30.0)
    while True:
        try:
            if client.healthz().get("status") == "ok":
                return
        except OSError:
            pass
        if time.monotonic() >= deadline:
            raise TimeoutError(f"server at {base_url} never became healthy")
        time.sleep(0.1)
