"""Local HTTP JSON API over a :class:`~repro.serve.service.SimService`.

Stdlib only (:class:`http.server.ThreadingHTTPServer`): the service is
a local/cluster-internal tool, not an internet-facing one.  Endpoints:

==============================  =======================================
``POST /v1/submit``             body: a request (see
                                :func:`repro.serve.schema.parse_request`)
                                → ``202`` ``{"job", "status"}`` or
                                ``200`` with ``"status": "done"`` when
                                served from cache; ``429`` +
                                ``Retry-After`` under backpressure;
                                ``503`` while draining.
``GET /v1/jobs/<key>``          → job status (``pending`` / ``running``
                                / ``done`` / ``failed`` / ``unknown``).
``GET /v1/result/<key>``        → the stored result payload; ``404``
                                unknown, ``409`` still in flight,
                                ``500`` failed.
``GET /healthz``                → liveness + queue depth.
``GET /metrics``                → the service metrics snapshot
                                (:class:`repro.obs.MetricsRegistry`),
                                JSON by default; Prometheus text
                                exposition under ``Accept: text/plain``.
==============================  =======================================

Result payloads come straight from the store, so every client of one
key receives byte-identical JSON bodies.

Every request is assigned a telemetry trace ID at ingress, echoed back
in an ``X-Trace-Id`` response header (and in the submit body), and —
when the service runs with a request log — recorded as a structured
``access`` event with method, path, status and handling duration.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.obs.telemetry import new_trace_id, render_prometheus, wants_prometheus
from repro.serve.schema import RequestError, parse_request
from repro.serve.service import QueueFull, ServiceDraining, SimService

__all__ = ["ServeHTTPServer", "format_retry_after", "make_server"]

#: Request bodies beyond this are rejected (a grid request is tiny).
MAX_BODY_BYTES = 1 << 20

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def format_retry_after(retry_after_s: float) -> str:
    """``Retry-After`` header value preserving fractional hints.

    The header is specified as integer seconds, but sub-second
    backpressure windows would round to ``0`` (retry immediately — a
    stampede) or up to ``1`` (20x the intended wait for a 50ms hint),
    so fractional values are sent as decimals; our client parses them,
    and integer-second values render exactly as before (``3.0`` →
    ``"3"``) for spec-strict intermediaries.
    """
    retry_after_s = max(0.0, retry_after_s)
    if retry_after_s == int(retry_after_s):
        return str(max(1, int(retry_after_s)))
    return f"{retry_after_s:.6f}".rstrip("0").rstrip(".")


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that carries the service reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: SimService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server: ServeHTTPServer

    # -- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route http.server's per-request line into the request log.

        ``BaseHTTPRequestHandler`` calls this (via ``log_request``)
        once per response; instead of printing to stderr — or the old
        behaviour of discarding everything — emit a structured
        ``access`` event carrying the trace ID, so the request log is
        also the access log.  No-op unless ``--request-log`` is live.
        """
        log = self.server.service.telemetry.log
        if not log.enabled:
            return
        log.log_event(
            "access",
            trace_id=getattr(self, "_trace_id", ""),
            method=self.command or "",
            path=self.path or "",
            status=getattr(self, "_status", 0),
            wall_s=round(time.perf_counter() - getattr(self, "_t0", time.perf_counter()), 6),
        )

    def _begin(self) -> None:
        """Stamp per-request telemetry state at ingress."""
        self._t0 = time.perf_counter()
        self._trace_id = new_trace_id()
        self._status = 0

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Trace-Id", getattr(self, "_trace_id", ""))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        raw = body.encode()
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.send_header("X-Trace-Id", getattr(self, "_trace_id", ""))
        self.end_headers()
        self.wfile.write(raw)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("request body required")
        if length > MAX_BODY_BYTES:
            raise RequestError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise RequestError(f"invalid JSON body: {error}") from None

    # -- routes -----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._begin()
        if self.path != "/v1/submit":
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        service = self.server.service
        try:
            request = parse_request(self._read_body())
            job, outcome = service.submit(request, trace_id=self._trace_id)
        except RequestError as error:
            self._send_json(400, {"error": str(error)})
        except QueueFull as error:
            self._send_json(
                429,
                {"error": "queue full", "retry_after_s": error.retry_after_s},
                headers={"Retry-After": format_retry_after(error.retry_after_s)},
            )
        except ServiceDraining as error:
            self._send_json(503, {"error": str(error)})
        else:
            status = 200 if outcome == "cached" else 202
            self._send_json(
                status,
                {
                    "job": job.key,
                    "status": job.state,
                    "outcome": outcome,
                    "trace": self._trace_id,
                },
            )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._begin()
        service = self.server.service
        if self.path == "/healthz":
            health = service.health()
            code = 200 if health["status"] == "ok" else 503
            self._send_json(code, health)
            return
        if self.path == "/metrics":
            snapshot = service.metrics_snapshot()
            if wants_prometheus(self.headers.get("Accept")):
                self._send_text(
                    200, render_prometheus(snapshot), PROMETHEUS_CONTENT_TYPE
                )
            else:
                self._send_json(200, snapshot)
            return
        if self.path.startswith("/v1/jobs/"):
            key = self.path[len("/v1/jobs/"):]
            self._send_json(200, service.status(key))
            return
        if self.path.startswith("/v1/result/"):
            key = self.path[len("/v1/result/"):]
            payload = service.result(key)
            if payload is not None:
                self._send_json(200, payload)
                return
            status = service.status(key)
            if status["status"] in ("pending", "running"):
                self._send_json(409, status)
            elif status["status"] == "failed":
                self._send_json(500, status)
            else:
                self._send_json(404, status)
            return
        self._send_json(404, {"error": f"unknown path {self.path}"})


def make_server(service: SimService) -> ServeHTTPServer:
    """Bind a server for the service (port 0 picks an ephemeral port)."""
    config = service.config
    return ServeHTTPServer((config.host, config.port), service)
