"""Content-addressed result store shared by service processes.

Every completed request persists its result payload under its request
fingerprint (see :mod:`repro.serve.schema`), so repeats — in the same
service process, in a later one, or from a plain CLI run — are served
from disk instead of re-simulating.  The disk format mirrors the
surface cache: one JSON file per entry, published with
:func:`repro.fsio.atomic_write_text` under an advisory
:class:`repro.fsio.FileLock`, stamped with
:data:`~repro.serve.schema.SERVE_SCHEMA_VERSION` so entries written by
an older build read as misses rather than as silently-stale results.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional, Union

from repro.fsio import FileLock, atomic_write_text
from repro.serve.schema import SERVE_SCHEMA_VERSION

__all__ = ["ResultStore", "default_store_dir"]


def default_store_dir() -> Path:
    """Repo-level default, next to the surface cache."""
    return Path(__file__).resolve().parents[3] / ".serve_store"


class ResultStore:
    """Disk-backed, content-addressed result payloads.

    Args:
        directory: store directory (defaults to the repo-level
            ``.serve_store``).
        memo_size: in-memory LRU capacity; repeats within one process
            skip the disk read entirely.

    Thread-safe: the HTTP layer serves ``get`` from many request
    threads while the dispatcher ``put``\\ s.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memo_size: int = 512,
    ) -> None:
        if memo_size <= 0:
            raise ValueError("memo_size must be positive")
        self.directory = Path(directory) if directory else default_store_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memo_size = memo_size
        self._memo: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- read / write -----------------------------------------------------

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """Fetch a payload (memo → disk); ``None`` on miss or damage.

        Torn files, non-envelope JSON, stale schema versions and
        key-mismatched entries all read as misses — a damaged cache
        must cost a re-simulation, never a wrong answer.
        """
        with self._lock:
            memo = self._memo.get(key)
            if memo is not None:
                self._memo.move_to_end(key)
                return memo
        try:
            envelope = json.loads(self.path(key).read_text())
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != SERVE_SCHEMA_VERSION
            or envelope.get("key") != key
            or not isinstance(envelope.get("result"), dict)
        ):
            return None
        payload = envelope["result"]
        self._memo_put(key, payload)
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Persist one payload atomically (and memoise it)."""
        envelope = {
            "schema": SERVE_SCHEMA_VERSION,
            "key": key,
            "created": time.time(),
            "result": payload,
        }
        path = self.path(key)
        with FileLock(path.with_suffix(".lock")):
            atomic_write_text(path, json.dumps(envelope))
        self._memo_put(key, payload)

    def _memo_put(self, key: str, payload: dict[str, Any]) -> None:
        with self._lock:
            self._memo[key] = payload
            self._memo.move_to_end(key)
            while len(self._memo) > self.memo_size:
                self._memo.popitem(last=False)

    def flush(self) -> None:
        """Make published entries durable (directory fsync).

        ``put`` is already atomic per entry; this pins the renames to
        stable storage on shutdown and error paths.
        """
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - directory vanished
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)

    # -- maintenance ------------------------------------------------------

    def _entries(self):
        for path in sorted(self.directory.glob("*.json")):
            try:
                envelope = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                envelope = None
            yield path, envelope if isinstance(envelope, dict) else None

    def stats(self) -> dict[str, Any]:
        """Entry counts, footprint and schema mix of the directory."""
        entries = 0
        size = 0
        stale = 0
        damaged = 0
        by_schema: dict[str, int] = {}
        for path, envelope in self._entries():
            entries += 1
            size += path.stat().st_size
            if envelope is None:
                damaged += 1
                continue
            schema = envelope.get("schema")
            by_schema[str(schema)] = by_schema.get(str(schema), 0) + 1
            if schema != SERVE_SCHEMA_VERSION:
                stale += 1
        return {
            "directory": str(self.directory),
            "schema": SERVE_SCHEMA_VERSION,
            "entries": entries,
            "bytes": size,
            "stale": stale,
            "damaged": damaged,
            "by_schema": by_schema,
        }

    def gc(self, max_age_s: Optional[float] = None) -> dict[str, int]:
        """Remove stale-schema, damaged and (optionally) aged entries.

        Args:
            max_age_s: also drop current-schema entries whose
                ``created`` stamp is older than this many seconds.

        Returns:
            ``{"removed": n, "kept": m}``.
        """
        removed = 0
        kept = 0
        now = time.time()
        for path, envelope in self._entries():
            drop = envelope is None or envelope.get("schema") != SERVE_SCHEMA_VERSION
            if not drop and max_age_s is not None:
                created = envelope.get("created")
                drop = not isinstance(created, (int, float)) or (
                    now - created > max_age_s
                )
            if drop:
                # Suppressed: concurrent removal by another gc run.
                with contextlib.suppress(OSError):
                    path.unlink()
                    removed += 1
            else:
                kept += 1
        with self._lock:
            self._memo.clear()
        return {"removed": removed, "kept": kept}
